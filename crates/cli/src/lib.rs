//! Implementation of the `bear` command-line tool.
//!
//! Subcommands:
//!
//! * `bear preprocess <graph.txt> <index.bear> [--c 0.05] [--xi 0]
//!   [--threads 0]` — read an edge list, run BEAR preprocessing (0
//!   threads = all cores; the index is bit-identical for any thread
//!   count), write the query index and report per-stage timings;
//! * `bear query <index.bear> <seed> [--top 10] [--threads 0]` — answer
//!   one RWR query from a saved index (0 threads = all cores);
//! * `bear batch <index.bear> <seed>... [--top 10] [--threads 0]` —
//!   answer many queries through the persistent [`QueryEngine`] pool;
//! * `bear serve <name=index.bear>... [--addr HOST:PORT]` — serve one or
//!   more saved indexes over HTTP through [`bear_serve`], with
//!   per-request deadlines (`X-Deadline-Ms`), typed fault-to-status
//!   mapping, and zero-downtime hot swap via `POST /admin/load`;
//! * `bear verify-index <index.bear>` — verify an index's checksums and
//!   structure without serving it (exit code 5 on corruption);
//! * `bear stats <graph.txt>` — graph and SlashBurn structure statistics;
//! * `bear generate <dataset> <out.txt>` — materialize a registry dataset
//!   as an edge list.
//!
//! `query` and `batch` both run through [`bear_core::QueryEngine`] and
//! finish by reporting its metrics (query count, cache hit rate, latency
//! percentiles, realized block widths, and fault counters). Both accept
//! the serving flags in [`ServeFlags`] (`--queue-cap`, `--deadline-ms`,
//! `--block-width`, `--fallback-graph`, `--c`); deadline and overload failures exit with
//! dedicated codes (see [`USAGE`] and [`exit_code`]), and with
//! `--fallback-graph` they degrade to a bounded power-method answer
//! instead of failing — including when the index itself cannot load.
//!
//! The library half exists so the command logic is unit-testable without
//! spawning processes; `main.rs` is a thin argv adapter.

use bear_core::topk::top_k_excluding_seed;
use bear_core::{
    Bear, BearConfig, DegradedInfo, EngineConfig, FallbackSolver, MetricsSnapshot, QueryEngine,
    QueryOptions, RwrConfig, Served, DEFAULT_FALLBACK_ITERATIONS,
};
use bear_graph::io::{read_edge_list, write_edge_list};
use bear_graph::{slashburn, SlashBurnConfig};
use bear_sparse::{Error, Result};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Preprocess an edge list into an index file.
    Preprocess {
        /// Input edge-list path.
        graph: String,
        /// Output index path.
        index: String,
        /// Restart probability.
        c: f64,
        /// Drop tolerance (0 = exact).
        xi: f64,
        /// Preprocessing worker threads (0 = all cores). The index is
        /// bit-identical for any thread count.
        threads: usize,
        /// Stream finished spoke blocks to a sharded v3 index
        /// (`--out-of-core`): peak preprocessing memory stays independent
        /// of the total factor size, and the written file is byte-for-byte
        /// identical to an in-memory `save_v3`.
        out_of_core: bool,
    },
    /// Query a saved index.
    Query {
        /// Index path.
        index: String,
        /// Seed node.
        seed: usize,
        /// How many top nodes to print.
        top: usize,
        /// Worker threads for the query engine (0 = all cores).
        threads: usize,
        /// Serving options shared by `query` and `batch`.
        serve: ServeFlags,
    },
    /// Answer a batch of queries through the persistent engine pool.
    Batch {
        /// Index path.
        index: String,
        /// Seed nodes.
        seeds: Vec<usize>,
        /// How many top nodes to print per seed.
        top: usize,
        /// Worker threads for the query engine (0 = all cores).
        threads: usize,
        /// Serving options shared by `query` and `batch`.
        serve: ServeFlags,
    },
    /// Serve one or more saved indexes over HTTP.
    Serve {
        /// `name=index-path` pairs; each becomes a registered graph.
        graphs: Vec<(String, String)>,
        /// Bind address (`host:port`; port 0 picks a free one).
        addr: String,
        /// HTTP connection worker threads (0 = server default).
        http_threads: usize,
        /// Engine worker threads per graph (0 = all cores).
        threads: usize,
        /// Serving options shared with `query` and `batch`.
        serve: ServeFlags,
        /// Run for this many milliseconds then exit cleanly (0 = run
        /// until killed). Used by tests and smoke checks.
        for_ms: u64,
        /// Graceful-drain grace period in milliseconds for shutdown
        /// (0 = server default).
        drain_ms: u64,
    },
    /// Verify a saved index's checksums and structure without loading
    /// it into an engine.
    VerifyIndex {
        /// Index path.
        index: String,
    },
    /// Print graph statistics.
    Stats {
        /// Input edge-list path.
        graph: String,
    },
    /// Generate a registry dataset as an edge list.
    Generate {
        /// Dataset name (see `bear-datasets`).
        dataset: String,
        /// Output path.
        out: String,
    },
    /// Print usage.
    Help,
}

/// Fault-tolerance flags shared by `query` and `batch`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeFlags {
    /// Admission-control bound on queued jobs (`--queue-cap`; 0 keeps
    /// the engine default).
    pub queue_cap: usize,
    /// Per-query deadline budget in milliseconds (`--deadline-ms`; 0
    /// means no deadline).
    pub deadline_ms: u64,
    /// How many queued queries a worker may coalesce into one blocked
    /// multi-RHS solve (`--block-width`; 0 keeps the engine default,
    /// 1 disables coalescing). Answers are bit-identical at any width.
    pub block_width: usize,
    /// Edge-list path for the degraded fallback path
    /// (`--fallback-graph`). With it, deadline/overload/panic faults
    /// degrade to a bounded power-method answer, and a failed index load
    /// serves degraded-only instead of exiting.
    pub fallback_graph: Option<String>,
    /// Restart probability for the fallback solver when the index (and
    /// its stored `c`) could not be loaded (`--c`).
    pub c: f64,
    /// Resident-set cap in MiB for the spoke-block pager of an
    /// out-of-core (v3) index (`--resident-mb`; 0 keeps the load-time
    /// budget, i.e. unlimited). Ignored for fully resident indexes.
    pub resident_mb: u64,
}

impl Default for ServeFlags {
    fn default() -> Self {
        ServeFlags {
            queue_cap: 0,
            deadline_ms: 0,
            block_width: 0,
            fallback_graph: None,
            c: 0.05,
            resident_mb: 0,
        }
    }
}

/// Parses a float-valued flag (`--c`, `--xi`).
fn float_flag(args: &[String], name: &str, default: f64) -> Result<f64> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| Error::InvalidStructure(format!("{name} needs a numeric value"))),
        None => Ok(default),
    }
}

/// Parses an integer-valued flag (`--top`, `--threads`, `--queue-cap`,
/// `--deadline-ms`). Unlike a float parse followed by a cast, fractional
/// or negative values (`--top 3.9`, `--threads -1`) are usage errors
/// rather than silent truncations.
fn int_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T> {
    match args.iter().position(|a| a == name) {
        Some(i) => args.get(i + 1).and_then(|v| v.parse().ok()).ok_or_else(|| {
            Error::InvalidStructure(format!("{name} needs a non-negative integer value"))
        }),
        None => Ok(default),
    }
}

fn parse_serve_flags(args: &[String]) -> Result<ServeFlags> {
    Ok(ServeFlags {
        queue_cap: int_flag(args, "--queue-cap", 0usize)?,
        deadline_ms: int_flag(args, "--deadline-ms", 0u64)?,
        block_width: int_flag(args, "--block-width", 0usize)?,
        fallback_graph: args
            .iter()
            .position(|a| a == "--fallback-graph")
            .and_then(|i| args.get(i + 1))
            .cloned(),
        c: float_flag(args, "--c", 0.05)?,
        resident_mb: int_flag(args, "--resident-mb", 0u64)?,
    })
}

/// Parses an argv-style token list (without the binary name).
pub fn parse_command(args: &[String]) -> Result<Command> {
    match args.first().map(|s| s.as_str()) {
        Some("preprocess") => {
            let graph = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| Error::InvalidStructure("preprocess needs <graph> <index>".into()))?
                .clone();
            let index = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| Error::InvalidStructure("preprocess needs <graph> <index>".into()))?
                .clone();
            Ok(Command::Preprocess {
                graph,
                index,
                c: float_flag(args, "--c", 0.05)?,
                xi: float_flag(args, "--xi", 0.0)?,
                threads: int_flag(args, "--threads", 0usize)?,
                out_of_core: args.iter().any(|a| a == "--out-of-core"),
            })
        }
        Some("query") => {
            let index = args
                .get(1)
                .ok_or_else(|| Error::InvalidStructure("query needs <index> <seed>".into()))?
                .clone();
            let seed: usize = args
                .get(2)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| Error::InvalidStructure("query needs a numeric seed".into()))?;
            let top = int_flag(args, "--top", 10usize)?;
            let threads = int_flag(args, "--threads", 0usize)?;
            Ok(Command::Query { index, seed, top, threads, serve: parse_serve_flags(args)? })
        }
        Some("batch") => {
            let index = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| Error::InvalidStructure("batch needs <index> <seed>...".into()))?
                .clone();
            // Positional seeds: everything after the index that is not a
            // flag or a flag's value.
            let mut seeds = Vec::new();
            let mut i = 2;
            while i < args.len() {
                if args[i].starts_with("--") {
                    i += 2; // skip the flag and its value
                    continue;
                }
                let seed: usize = args[i].parse().map_err(|_| {
                    Error::InvalidStructure(format!("batch seed '{}' is not a node id", args[i]))
                })?;
                seeds.push(seed);
                i += 1;
            }
            if seeds.is_empty() {
                return Err(Error::InvalidStructure("batch needs at least one seed".into()));
            }
            let top = int_flag(args, "--top", 10usize)?;
            let threads = int_flag(args, "--threads", 0usize)?;
            Ok(Command::Batch { index, seeds, top, threads, serve: parse_serve_flags(args)? })
        }
        Some("serve") => {
            // Positional graphs: `name=path` pairs anywhere before/among
            // the flags (same scan discipline as batch's seeds).
            let mut graphs = Vec::new();
            let mut i = 1;
            while i < args.len() {
                if args[i].starts_with("--") {
                    i += 2; // skip the flag and its value
                    continue;
                }
                let (name, path) = args[i].split_once('=').ok_or_else(|| {
                    Error::InvalidStructure(format!(
                        "serve graph '{}' must be name=index-path",
                        args[i]
                    ))
                })?;
                if name.is_empty() || path.is_empty() {
                    return Err(Error::InvalidStructure(format!(
                        "serve graph '{}' must be name=index-path",
                        args[i]
                    )));
                }
                graphs.push((name.to_string(), path.to_string()));
                i += 1;
            }
            if graphs.is_empty() {
                return Err(Error::InvalidStructure(
                    "serve needs at least one name=index-path graph".into(),
                ));
            }
            let addr = args
                .iter()
                .position(|a| a == "--addr")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7171".to_string());
            Ok(Command::Serve {
                graphs,
                addr,
                http_threads: int_flag(args, "--http-threads", 0usize)?,
                threads: int_flag(args, "--threads", 0usize)?,
                serve: parse_serve_flags(args)?,
                for_ms: int_flag(args, "--for-ms", 0u64)?,
                drain_ms: int_flag(args, "--drain-ms", 0u64)?,
            })
        }
        Some("verify-index") => Ok(Command::VerifyIndex {
            index: args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| Error::InvalidStructure("verify-index needs <index>".into()))?
                .clone(),
        }),
        Some("stats") => Ok(Command::Stats {
            graph: args
                .get(1)
                .ok_or_else(|| Error::InvalidStructure("stats needs <graph>".into()))?
                .clone(),
        }),
        Some("generate") => Ok(Command::Generate {
            dataset: args
                .get(1)
                .ok_or_else(|| Error::InvalidStructure("generate needs <dataset> <out>".into()))?
                .clone(),
            out: args
                .get(2)
                .ok_or_else(|| Error::InvalidStructure("generate needs <dataset> <out>".into()))?
                .clone(),
        }),
        Some("help") | Some("--help") | Some("-h") | None => Ok(Command::Help),
        Some(other) => Err(Error::InvalidStructure(format!("unknown command '{other}'"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
bear — block elimination approach for random walk with restart

USAGE:
  bear preprocess <graph.txt> <index.bear> [--c 0.05] [--xi 0] [--threads 0]
                  [--out-of-core]
  bear query <index.bear> <seed> [--top 10] [--threads 0] [serving flags]
  bear batch <index.bear> <seed>... [--top 10] [--threads 0] [serving flags]
  bear serve <name=index.bear>... [--addr 127.0.0.1:7171] [--http-threads 0]
             [--threads 0] [--for-ms 0] [--drain-ms 0] [serving flags]
  bear verify-index <index.bear>
  bear stats <graph.txt>
  bear generate <dataset> <out.txt>

PREPROCESS FLAGS:
  --c F                restart probability (default 0.05)
  --xi F               drop tolerance; 0 = exact BEAR (default 0)
  --threads N          preprocessing worker threads; 0 = all cores. The
                       written index is bit-identical for any N.
  --out-of-core        stream finished spoke blocks to a sharded v3 index:
                       peak preprocessing memory is independent of the
                       total factor size, and the file is byte-identical
                       to an in-memory v3 save

SERVING FLAGS (query/batch):
  --queue-cap N        admission-control bound on queued jobs (0 = default)
  --deadline-ms N      per-query deadline budget; 0 = none
  --block-width N      coalesce up to N queued queries into one blocked
                       multi-RHS solve; 1 disables coalescing, 0 keeps the
                       engine default. Bit-identical at any width.
  --fallback-graph P   edge list enabling graceful degradation: faults are
                       answered by a bounded power method, and a failed
                       index load serves degraded-only instead of exiting
  --c F                restart probability for the fallback when the index
                       (and its stored c) could not be loaded (default 0.05)
  --resident-mb N      resident-set cap (MiB) for the spoke-block pager of
                       an out-of-core (v3) index; blocks beyond the cap are
                       paged from disk on demand, answers stay bit-identical.
                       0 keeps the load-time budget; ignored for fully
                       resident indexes

SERVE FLAGS:
  --addr HOST:PORT     bind address (default 127.0.0.1:7171; port 0 picks
                       a free port)
  --http-threads N     HTTP connection workers (0 = server default)
  --for-ms N           run for N milliseconds then exit cleanly; 0 = run
                       until killed (used by tests and smoke checks)
  --drain-ms N         graceful-drain grace period on shutdown: in-flight
                       and admitted requests get N ms to finish before
                       force-close (0 = server default, 5000)
  The serving flags above also apply; --fallback-graph needs exactly one
  served graph. Endpoints: GET /v1/query?graph=NAME&seed=N,
  /v1/batch?seeds=..., /v1/topk?k=..., /healthz, /readyz (503 while
  warming or draining), /metrics, and POST
  /admin/load?graph=NAME&index=PATH for zero-downtime hot swap (a
  corrupt index is rejected and quarantined to <path>.corrupt).
  Per-request deadlines: X-Deadline-Ms header (504 on expiry; 429 on
  overload — the HTTP mirror of exit codes 3 and 4).

VERIFY-INDEX:
  Checks the on-disk artifact end to end — header, per-section CRC32,
  whole-file trailer checksum, and structural invariants — and prints a
  section report without building an engine. Exit code 0 means every
  byte checked out; 5 means corruption (the file is left in place).

EXIT CODES:
  0 success (possibly with degraded answers, reported in the output)
  1 error (load/compute failure with no fallback available)
  2 usage error
  3 deadline exceeded (typed timeout, no fallback available)
  4 overload (admission control rejected the query, no fallback available)
  5 corrupt index (checksum or structural verification failed)

Graphs are whitespace edge lists: 'src dst [weight]' per line, '#'
comments. Datasets: any name from the bear-datasets registry, e.g.
routing_like, email_like, rmat_0.7, small_routing.";

/// Maps an error to the exit code documented in [`USAGE`]: deadline and
/// overload faults get dedicated codes so callers can script retry
/// policies without parsing stderr.
pub fn exit_code(e: &Error) -> i32 {
    // Every `Error` variant is named (no `_` arm) so adding a variant
    // forces an exit-code decision here — the L5 lint checks exactly that.
    match e {
        Error::Timeout { .. } => 3,
        Error::QueueFull { .. } => 4,
        Error::CorruptIndex { .. } => 5,
        Error::DimensionMismatch { .. }
        | Error::IndexOutOfBounds { .. }
        | Error::InvalidStructure(_)
        | Error::SingularMatrix { .. }
        | Error::OutOfBudget { .. }
        | Error::DidNotConverge { .. }
        | Error::NonFiniteValue { .. }
        | Error::PoolShutDown
        | Error::WorkerPanicked { .. }
        | Error::Cancelled
        | Error::KernelPanicked { .. }
        | Error::InvalidConfig { .. } => 1,
    }
}

/// A loaded serving stack: the full engine (optionally with a fallback
/// attached), or — when the index failed to load but `--fallback-graph`
/// was given — the degraded-only iterative solver.
enum Service {
    /// Healthy path: the BEAR index answered the load.
    Full(Box<QueryEngine>),
    /// The index could not be loaded; every answer is degraded.
    DegradedOnly(FallbackSolver),
}

/// Builds the serving stack for `query`/`batch`. `threads == 0` keeps
/// the default (all cores). Returns the service plus an optional notice
/// line to print (degraded-only mode names the load failure).
/// Builds the engine configuration shared by `query`, `batch`, and
/// `serve` from the common flags (`0` keeps each engine default).
fn engine_config_from(threads: usize, serve: &ServeFlags) -> Result<EngineConfig> {
    let mut builder = EngineConfig::builder();
    if threads > 0 {
        builder = builder.threads(threads);
    }
    if serve.queue_cap > 0 {
        builder = builder.queue_capacity(serve.queue_cap);
    }
    if serve.deadline_ms > 0 {
        builder = builder.default_deadline(Some(Duration::from_millis(serve.deadline_ms)));
    }
    if serve.block_width > 0 {
        builder = builder.block_width(serve.block_width);
    }
    if serve.resident_mb > 0 {
        builder = builder.spoke_residency_bytes(Some(serve.resident_mb.saturating_mul(1 << 20)));
    }
    builder.build()
}

fn load_service(
    index: &str,
    threads: usize,
    serve: &ServeFlags,
) -> Result<(Service, Option<String>)> {
    let config = engine_config_from(threads, serve)?;
    let fallback_for = |g_path: &str, c: f64| -> Result<FallbackSolver> {
        let g = read_edge_list(Path::new(g_path), None)?;
        FallbackSolver::new(
            &g,
            &RwrConfig { c, ..RwrConfig::default() },
            DEFAULT_FALLBACK_ITERATIONS,
        )
    };
    match Bear::load(Path::new(index)) {
        Ok(bear) => {
            let bear = Arc::new(bear);
            let engine = match &serve.fallback_graph {
                Some(g_path) => {
                    let fb = fallback_for(g_path, bear.restart_probability())?;
                    QueryEngine::with_fallback(bear, config, Arc::new(fb))?
                }
                None => QueryEngine::new(bear, config)?,
            };
            Ok((Service::Full(Box::new(engine)), None))
        }
        Err(load_err) => match &serve.fallback_graph {
            Some(g_path) => {
                let fb = fallback_for(g_path, serve.c)?;
                let notice = format!(
                    "WARNING: index unavailable ({load_err}); serving DEGRADED answers \
                     from the iterative fallback ({} iterations max)",
                    fb.max_iterations()
                );
                Ok((Service::DegradedOnly(fb), Some(notice)))
            }
            None => Err(load_err),
        },
    }
}

/// Answers one seed in degraded-only mode, shaped like an engine answer
/// so both paths print identically.
fn degraded_only_answer(fb: &FallbackSolver, seed: usize) -> Result<Served> {
    let ans = fb.solve(seed)?;
    let info = bear_core::DegradedInfo {
        reason: bear_core::DegradedReason::IndexUnavailable,
        residual: ans.residual,
        error_bound: ans.error_bound(),
        iterations: ans.iterations,
    };
    Ok(Served { scores: Arc::new(ans.scores), degraded: Some(info) })
}

/// One-line degradation tag appended to a served answer's header.
fn degraded_tag(degraded: Option<&DegradedInfo>) -> String {
    match degraded {
        None => String::new(),
        Some(info) => format!(
            " [DEGRADED: {} — {} iterations, error bound {:.3e}]",
            info.reason, info.iterations, info.error_bound
        ),
    }
}

/// Writes the one-line engine metrics report shared by `query` and
/// `batch`.
fn write_metrics(m: &MetricsSnapshot, out: &mut dyn std::io::Write) -> std::io::Result<()> {
    writeln!(
        out,
        "metrics: queries={} cache_hit_rate={:.1}% p50={:?} p95={:?} p99={:?} \
         avg_block_width={:.1} p50_amortized={:?} \
         timeouts={} rejected={} shed={} panics={} degraded={}",
        m.queries,
        m.cache_hit_rate() * 100.0,
        m.p50,
        m.p95,
        m.p99,
        m.avg_block_width(),
        m.p50_amortized,
        m.timeouts,
        m.queue_rejections,
        m.shed_jobs,
        m.worker_panics,
        m.degraded
    )
}

/// Executes a parsed command, writing human-readable output to `out`.
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> Result<()> {
    let io_err = |e: std::io::Error| Error::InvalidStructure(format!("output error: {e}"));
    match cmd {
        Command::Help => writeln!(out, "{USAGE}").map_err(io_err),
        Command::Preprocess { graph, index, c, xi, threads, out_of_core } => {
            let g = read_edge_list(Path::new(graph), None)?;
            // `xi` passes through unconditionally (approx(c, 0) == exact(c))
            // so a NaN/negative/infinite tolerance reaches
            // `BearConfig::validate` instead of silently meaning "exact".
            let config = BearConfig { threads: *threads, ..BearConfig::approx(*c, *xi) };
            if *out_of_core {
                let start = std::time::Instant::now();
                bear_core::preprocess_to_disk(&g, &config, Path::new(index))?;
                let elapsed = start.elapsed().as_secs_f64();
                let report = bear_core::persist::verify_index(Path::new(index))?;
                return writeln!(
                    out,
                    "preprocessed {} nodes / {} edges in {elapsed:.3}s (streamed): \
                     n1={} n2={} segments={} bytes={} -> {index} (v{})",
                    g.num_nodes(),
                    g.num_edges(),
                    report.n1,
                    report.n2,
                    report.segments,
                    report.file_len,
                    report.version
                )
                .map_err(io_err);
            }
            let start = std::time::Instant::now();
            let bear = Bear::new(&g, &config)?;
            let elapsed = start.elapsed().as_secs_f64();
            bear.save(Path::new(index))?;
            let st = bear.stats();
            writeln!(
                out,
                "preprocessed {} nodes / {} edges in {elapsed:.3}s (threads={}): \
                 n1={} n2={} blocks={} nnz={} bytes={} -> {index}",
                g.num_nodes(),
                g.num_edges(),
                config.effective_threads(),
                st.n1,
                st.n2,
                st.num_blocks,
                st.total_nnz(),
                st.bytes
            )
            .map_err(io_err)?;
            writeln!(out, "stages: {}", bear.timings().summary()).map_err(io_err)
        }
        Command::Query { index, seed, top, threads, serve } => {
            let (service, notice) = load_service(index, *threads, serve)?;
            if let Some(notice) = notice {
                writeln!(out, "{notice}").map_err(io_err)?;
            }
            let start = std::time::Instant::now();
            // The engine path uses the pruned exact top-k solver; the
            // degraded-only fallback still ranks its full vector.
            let (ranked, degraded, metrics) = match &service {
                Service::Full(engine) => {
                    let served = engine.query_top_k(*seed, *top, &QueryOptions::default())?;
                    (served.nodes.to_vec(), served.degraded, Some(engine.metrics()))
                }
                Service::DegradedOnly(fb) => {
                    let served = degraded_only_answer(fb, *seed)?;
                    (top_k_excluding_seed(&served.scores, *seed, *top), served.degraded, None)
                }
            };
            let elapsed = start.elapsed().as_secs_f64();
            writeln!(
                out,
                "top {} nodes for seed {} ({elapsed:.6}s){}:",
                ranked.len(),
                seed,
                degraded_tag(degraded.as_ref())
            )
            .map_err(io_err)?;
            for s in &ranked {
                writeln!(out, "  {}\t{:.6e}", s.node, s.score).map_err(io_err)?;
            }
            match metrics {
                Some(m) => write_metrics(&m, out).map_err(io_err),
                None => Ok(()),
            }
        }
        Command::Batch { index, seeds, top, threads, serve } => {
            let (service, notice) = load_service(index, *threads, serve)?;
            if let Some(notice) = notice {
                writeln!(out, "{notice}").map_err(io_err)?;
            }
            let start = std::time::Instant::now();
            let (answers, metrics) = match &service {
                Service::Full(engine) => {
                    (engine.serve_batch(seeds, &QueryOptions::default())?, Some(engine.metrics()))
                }
                Service::DegradedOnly(fb) => {
                    let answers = seeds
                        .iter()
                        .map(|&seed| degraded_only_answer(fb, seed))
                        .collect::<Result<Vec<_>>>()?;
                    (answers, None)
                }
            };
            let elapsed = start.elapsed().as_secs_f64();
            let degraded = answers.iter().filter(|s| !s.is_exact()).count();
            writeln!(
                out,
                "answered {} queries in {elapsed:.6}s ({:.1} queries/s, {degraded} degraded):",
                seeds.len(),
                seeds.len() as f64 / elapsed.max(1e-12)
            )
            .map_err(io_err)?;
            for (&seed, served) in seeds.iter().zip(&answers) {
                let ranked = top_k_excluding_seed(&served.scores, seed, *top);
                let line = ranked
                    .iter()
                    .map(|s| format!("{}:{:.6e}", s.node, s.score))
                    .collect::<Vec<_>>()
                    .join(" ");
                writeln!(out, "  seed {seed}{}: {line}", degraded_tag(served.degraded.as_ref()))
                    .map_err(io_err)?;
            }
            match metrics {
                Some(m) => write_metrics(&m, out).map_err(io_err),
                None => Ok(()),
            }
        }
        Command::VerifyIndex { index } => {
            let report = bear_core::persist::verify_index(Path::new(index))?;
            writeln!(
                out,
                "{index}: OK (format v{}, {} bytes, n1={} n2={} c={})",
                report.version, report.file_len, report.n1, report.n2, report.c
            )
            .map_err(io_err)?;
            if report.version >= 3 {
                writeln!(out, "  spoke segments: {} shards, crc ok", report.segments)
                    .map_err(io_err)?;
            }
            for s in &report.sections {
                writeln!(out, "  section {}: {} bytes, crc ok", s.tag, s.len).map_err(io_err)?;
            }
            Ok(())
        }
        Command::Serve { graphs, addr, http_threads, threads, serve, for_ms, drain_ms } => {
            if serve.fallback_graph.is_some() && graphs.len() > 1 {
                return Err(Error::InvalidStructure(
                    "--fallback-graph applies to a single served graph".into(),
                ));
            }
            let engine_config = engine_config_from(*threads, serve)?;
            let registry = Arc::new(bear_serve::Registry::new());
            for (name, index) in graphs {
                let bear = Arc::new(Bear::load(Path::new(index))?);
                let engine = match &serve.fallback_graph {
                    Some(g_path) => {
                        let g = read_edge_list(Path::new(g_path), None)?;
                        let fb = FallbackSolver::new(
                            &g,
                            &RwrConfig { c: bear.restart_probability(), ..RwrConfig::default() },
                            DEFAULT_FALLBACK_ITERATIONS,
                        )?;
                        QueryEngine::with_fallback(bear, engine_config.clone(), Arc::new(fb))?
                    }
                    None => QueryEngine::new(bear, engine_config.clone())?,
                };
                let nodes = engine.bear().num_nodes();
                registry.publish(name, Arc::new(engine));
                writeln!(out, "graph '{name}': {nodes} nodes from {index}").map_err(io_err)?;
            }
            let mut server_config = bear_serve::ServerConfig {
                addr: addr.clone(),
                engine_config,
                ..bear_serve::ServerConfig::default()
            };
            if *http_threads > 0 {
                server_config.http_threads = *http_threads;
            }
            if *drain_ms > 0 {
                server_config.drain = Duration::from_millis(*drain_ms);
            }
            let handle = bear_serve::Server::start(registry, server_config)?;
            writeln!(
                out,
                "serving {} graph(s) on http://{} — endpoints: /v1/query /v1/batch \
                 /v1/topk /admin/load /healthz /readyz /metrics",
                graphs.len(),
                handle.addr()
            )
            .map_err(io_err)?;
            out.flush().map_err(io_err)?;
            if *for_ms > 0 {
                std::thread::sleep(Duration::from_millis(*for_ms));
                handle.shutdown();
                writeln!(out, "shut down after {for_ms} ms").map_err(io_err)
            } else {
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
        Command::Stats { graph } => {
            let g = read_edge_list(Path::new(graph), None)?;
            let ord = slashburn(&g, &SlashBurnConfig::paper_default(g.num_nodes()))?;
            writeln!(
                out,
                "nodes={} edges={} | slashburn: n1={} n2={} blocks={} \
                 max_block={} sum_block_sq={} iterations={}",
                g.num_nodes(),
                g.num_edges(),
                ord.n_spokes,
                ord.n_hubs,
                ord.block_sizes.len(),
                ord.block_sizes.iter().copied().max().unwrap_or(0),
                ord.sum_block_sq(),
                ord.iterations
            )
            .map_err(io_err)
        }
        Command::Generate { dataset, out: path } => {
            let spec = bear_datasets::dataset_by_name(dataset)
                .ok_or_else(|| Error::InvalidStructure(format!("unknown dataset '{dataset}'")))?;
            let g = spec.load();
            write_edge_list(&g, Path::new(path))?;
            writeln!(
                out,
                "generated {} ({} nodes, {} edges) -> {path}",
                dataset,
                g.num_nodes(),
                g.num_edges()
            )
            .map_err(io_err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Command> {
        parse_command(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_preprocess() {
        let cmd = parse(&[
            "preprocess",
            "g.txt",
            "g.idx",
            "--c",
            "0.1",
            "--xi",
            "1e-4",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Preprocess {
                graph: "g.txt".into(),
                index: "g.idx".into(),
                c: 0.1,
                xi: 1e-4,
                threads: 4,
                out_of_core: false,
            }
        );
        // --threads defaults to 0 (all cores).
        let cmd = parse(&["preprocess", "g.txt", "g.idx"]).unwrap();
        assert!(matches!(cmd, Command::Preprocess { threads: 0, out_of_core: false, .. }));
        // --out-of-core switches to the streamed v3 writer.
        let cmd = parse(&["preprocess", "g.txt", "g.idx", "--out-of-core"]).unwrap();
        assert!(matches!(cmd, Command::Preprocess { out_of_core: true, .. }));
    }

    /// Integer flags are parsed as integers: fractional, negative, or
    /// non-numeric values are usage errors, never silent `as usize`
    /// truncations (`--top 3.9` used to mean `--top 3`).
    #[test]
    fn integer_flags_reject_non_integers() {
        for bad in [
            vec!["query", "g.idx", "1", "--top", "3.9"],
            vec!["query", "g.idx", "1", "--top", "-2"],
            vec!["query", "g.idx", "1", "--threads", "1.5"],
            vec!["batch", "g.idx", "1", "--threads", "-1"],
            vec!["query", "g.idx", "1", "--queue-cap", "64.0"],
            vec!["query", "g.idx", "1", "--deadline-ms", "abc"],
            vec!["batch", "g.idx", "1", "--block-width", "-4"],
            vec!["preprocess", "g.txt", "g.idx", "--threads", "2.5"],
        ] {
            let err = parse(&bad).unwrap_err();
            assert!(
                matches!(err, Error::InvalidStructure(ref m) if m.contains("integer")),
                "{bad:?}: unexpected {err:?}"
            );
        }
        // Well-formed integers still parse.
        assert!(parse(&["query", "g.idx", "1", "--top", "7", "--queue-cap", "64"]).is_ok());
    }

    #[test]
    fn parses_query_with_defaults() {
        let cmd = parse(&["query", "g.idx", "42"]).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                index: "g.idx".into(),
                seed: 42,
                top: 10,
                threads: 0,
                serve: ServeFlags::default(),
            }
        );
    }

    #[test]
    fn parses_batch_with_flags_anywhere() {
        let cmd =
            parse(&["batch", "g.idx", "1", "2", "--top", "3", "7", "--threads", "2"]).unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                index: "g.idx".into(),
                seeds: vec![1, 2, 7],
                top: 3,
                threads: 2,
                serve: ServeFlags::default(),
            }
        );
    }

    #[test]
    fn parses_serving_flags() {
        let cmd = parse(&[
            "query",
            "g.idx",
            "3",
            "--queue-cap",
            "64",
            "--deadline-ms",
            "250",
            "--block-width",
            "16",
            "--fallback-graph",
            "g.txt",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                index: "g.idx".into(),
                seed: 3,
                top: 10,
                threads: 0,
                serve: ServeFlags {
                    queue_cap: 64,
                    deadline_ms: 250,
                    block_width: 16,
                    fallback_graph: Some("g.txt".into()),
                    c: 0.05,
                    resident_mb: 0,
                },
            }
        );
        // Batch's positional-seed scan must skip the string flag too.
        let cmd = parse(&["batch", "g.idx", "1", "--fallback-graph", "g.txt", "2"]).unwrap();
        assert!(matches!(&cmd, Command::Batch { seeds, serve, .. }
                if *seeds == vec![1, 2] && serve.fallback_graph.as_deref() == Some("g.txt")));
    }

    #[test]
    fn parses_serve_command() {
        let cmd = parse(&[
            "serve",
            "web=web.idx",
            "mail=mail.idx",
            "--addr",
            "0.0.0.0:8080",
            "--http-threads",
            "8",
            "--threads",
            "2",
            "--deadline-ms",
            "100",
            "--for-ms",
            "500",
            "--drain-ms",
            "750",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                graphs: vec![("web".into(), "web.idx".into()), ("mail".into(), "mail.idx".into())],
                addr: "0.0.0.0:8080".into(),
                http_threads: 8,
                threads: 2,
                serve: ServeFlags { deadline_ms: 100, ..ServeFlags::default() },
                for_ms: 500,
                drain_ms: 750,
            }
        );
        // Defaults.
        let cmd = parse(&["serve", "g=g.idx"]).unwrap();
        assert!(
            matches!(cmd, Command::Serve { ref addr, http_threads: 0, for_ms: 0, drain_ms: 0, .. }
            if addr == "127.0.0.1:7171")
        );
        // Malformed pairs and empty graph lists are usage errors.
        assert!(parse(&["serve"]).is_err());
        assert!(parse(&["serve", "justapath.idx"]).is_err());
        assert!(parse(&["serve", "=x.idx"]).is_err());
        assert!(parse(&["serve", "g="]).is_err());
    }

    /// End-to-end: preprocess a dataset, serve it over HTTP for a
    /// bounded window, and exercise the full request path (query +
    /// healthz) against the in-memory reference.
    #[test]
    fn serve_command_answers_http_until_deadline() {
        let dir = std::env::temp_dir();
        let graph_path = dir.join("bear_cli_serve.txt");
        let index_path = dir.join("bear_cli_serve.idx");
        let mut buf = Vec::new();
        run(
            &Command::Generate {
                dataset: "small_routing".into(),
                out: graph_path.to_string_lossy().into_owned(),
            },
            &mut buf,
        )
        .unwrap();
        run(
            &Command::Preprocess {
                graph: graph_path.to_string_lossy().into_owned(),
                index: index_path.to_string_lossy().into_owned(),
                c: 0.05,
                xi: 0.0,
                threads: 1,
                out_of_core: false,
            },
            &mut buf,
        )
        .unwrap();

        // Bind a registry+server through the library path the command
        // uses, on an ephemeral port we can read back.
        let cmd = Command::Serve {
            graphs: vec![("routing".into(), index_path.to_string_lossy().into_owned())],
            addr: "127.0.0.1:0".into(),
            http_threads: 2,
            threads: 1,
            serve: ServeFlags::default(),
            for_ms: 1200,
            drain_ms: 0,
        };
        // lint:allow(L4, test-capture writer, never contended)
        let out = Arc::new(std::sync::Mutex::new(Vec::<u8>::new()));
        let writer = SharedWriter(Arc::clone(&out));
        let server = std::thread::spawn(move || {
            let mut writer = writer;
            run(&cmd, &mut writer)
        });

        // Poll the shared buffer for the bound address.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr: std::net::SocketAddr = loop {
            assert!(std::time::Instant::now() < deadline, "server never reported its address");
            let text = String::from_utf8_lossy(&out.lock().unwrap()).into_owned();
            if let Some(rest) = text.split("http://").nth(1) {
                if let Some(addr) = rest.split_whitespace().next() {
                    break addr.parse().unwrap();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let resp = bear_serve::client::get(addr, "/healthz", &[]).unwrap();
        assert_eq!(resp.status, 200);
        let resp = bear_serve::client::get(addr, "/v1/query?graph=routing&seed=0", &[]).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let scores = bear_serve::client::json_number_array(&resp.body_str(), "scores").unwrap();
        let reference = Bear::load(&index_path).unwrap().query(0).unwrap();
        assert_eq!(scores.len(), reference.len());
        for (got, want) in scores.iter().zip(&reference) {
            assert_eq!(got.to_bits(), want.to_bits());
        }

        server.join().unwrap().unwrap();
        let text = String::from_utf8_lossy(&out.lock().unwrap()).into_owned();
        assert!(text.contains("graph 'routing'"), "{text}");
        assert!(text.contains("shut down after 1200 ms"), "{text}");

        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&index_path).ok();
    }

    /// `Write` adapter the serve test uses to watch command output from
    /// another thread.
    // lint:allow(L4, test-capture writer, never contended)
    struct SharedWriter(Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn exit_codes_distinguish_fault_classes() {
        use std::time::Duration;
        assert_eq!(exit_code(&Error::Timeout { budget: Duration::from_millis(5) }), 3);
        assert_eq!(exit_code(&Error::QueueFull { capacity: 8 }), 4);
        assert_eq!(exit_code(&Error::PoolShutDown), 1);
        assert_eq!(exit_code(&Error::InvalidStructure("x".into())), 1);
        assert_eq!(
            exit_code(&Error::CorruptIndex { section: "meta", detail: "bad crc".into() }),
            5
        );
    }

    #[test]
    fn parses_verify_index() {
        assert_eq!(
            parse(&["verify-index", "g.idx"]).unwrap(),
            Command::VerifyIndex { index: "g.idx".into() }
        );
        assert!(parse(&["verify-index"]).is_err());
        assert!(parse(&["verify-index", "--flag"]).is_err());
    }

    /// `verify-index` reports every section of a fresh index, fails
    /// typed (exit code 5) on a corrupted one, and exit code 1 on a
    /// missing file — without quarantining anything.
    #[test]
    fn verify_index_distinguishes_ok_corrupt_and_missing() {
        let dir = std::env::temp_dir();
        let graph_path = dir.join("bear_cli_verify.txt");
        let index_path = dir.join("bear_cli_verify.idx");
        let mut buf = Vec::new();
        run(
            &Command::Generate {
                dataset: "small_routing".into(),
                out: graph_path.to_string_lossy().into_owned(),
            },
            &mut buf,
        )
        .unwrap();
        run(
            &Command::Preprocess {
                graph: graph_path.to_string_lossy().into_owned(),
                index: index_path.to_string_lossy().into_owned(),
                c: 0.05,
                xi: 0.0,
                threads: 1,
                out_of_core: false,
            },
            &mut buf,
        )
        .unwrap();

        let verify = Command::VerifyIndex { index: index_path.to_string_lossy().into_owned() };
        buf.clear();
        run(&verify, &mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains(": OK (format v2"), "{text}");
        assert!(text.contains("section META: 24 bytes, crc ok"), "{text}");
        assert!(text.contains("section H12M"), "{text}");

        // Flip one payload bit: typed corruption, exit code 5, and the
        // artifact stays where the operator can inspect it.
        let mut bytes = std::fs::read(&index_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&index_path, &bytes).unwrap();
        let err = run(&verify, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::CorruptIndex { .. }), "{err:?}");
        assert_eq!(exit_code(&err), 5);
        assert!(index_path.exists(), "verify must never quarantine");

        std::fs::remove_file(&index_path).ok();
        let err = run(&verify, &mut Vec::new()).unwrap_err();
        assert_eq!(exit_code(&err), 1, "missing file is an error, not corruption: {err:?}");
        std::fs::remove_file(&graph_path).ok();
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse(&["preprocess", "only-one"]).is_err());
        assert!(parse(&["query", "idx", "notanumber"]).is_err());
        assert!(parse(&["batch", "idx"]).is_err());
        assert!(parse(&["batch", "idx", "3", "oops"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn end_to_end_generate_preprocess_query_stats() {
        let dir = std::env::temp_dir();
        let graph_path = dir.join("bear_cli_e2e.txt");
        let index_path = dir.join("bear_cli_e2e.idx");
        let mut buf = Vec::new();

        run(
            &Command::Generate {
                dataset: "small_routing".into(),
                out: graph_path.to_string_lossy().into_owned(),
            },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("generated small_routing"));

        buf.clear();
        run(
            &Command::Preprocess {
                graph: graph_path.to_string_lossy().into_owned(),
                index: index_path.to_string_lossy().into_owned(),
                c: 0.05,
                xi: 0.0,
                threads: 2,
                out_of_core: false,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("preprocessed"));
        assert!(text.contains("threads=2"));
        assert!(text.contains("stages:"), "missing stage timings: {text}");
        assert!(text.contains("factor_h11="));
        assert!(text.contains("total="));

        buf.clear();
        run(
            &Command::Query {
                index: index_path.to_string_lossy().into_owned(),
                seed: 0,
                top: 5,
                threads: 1,
                serve: ServeFlags::default(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("top 5 nodes for seed 0"));
        assert!(!text.contains("DEGRADED"), "healthy index must serve exact: {text}");
        assert_eq!(text.lines().count(), 7); // header + 5 rows + metrics
        assert!(text.contains("metrics: queries=1"));

        buf.clear();
        run(
            &Command::Batch {
                index: index_path.to_string_lossy().into_owned(),
                seeds: vec![0, 3, 0],
                top: 4,
                threads: 2,
                serve: ServeFlags::default(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("answered 3 queries"));
        assert!(text.contains("0 degraded"));
        assert!(text.contains("seed 0:"));
        assert!(text.contains("seed 3:"));
        // Duplicate seed 0 must register cache hits.
        assert!(text.contains("cache_hit_rate="));
        assert!(!text.contains("cache_hit_rate=0.0%"), "batch should hit the cache: {text}");

        buf.clear();
        run(&Command::Stats { graph: graph_path.to_string_lossy().into_owned() }, &mut buf)
            .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("slashburn:"));

        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&index_path).ok();
    }

    /// A NaN/negative/infinite `--xi` must be rejected by the config
    /// boundary, not silently collapse to exact mode.
    #[test]
    fn preprocess_rejects_invalid_drop_tolerance() {
        let dir = std::env::temp_dir();
        let graph_path = dir.join("bear_cli_bad_xi.txt");
        let mut buf = Vec::new();
        run(
            &Command::Generate {
                dataset: "small_routing".into(),
                out: graph_path.to_string_lossy().into_owned(),
            },
            &mut buf,
        )
        .unwrap();
        for xi in [f64::NAN, -0.5, f64::INFINITY] {
            let err = run(
                &Command::Preprocess {
                    graph: graph_path.to_string_lossy().into_owned(),
                    index: dir.join("bear_cli_bad_xi.idx").to_string_lossy().into_owned(),
                    c: 0.05,
                    xi,
                    threads: 1,
                    out_of_core: false,
                },
                &mut buf,
            )
            .unwrap_err();
            assert!(
                matches!(err, Error::InvalidConfig { param: "drop_tolerance", .. }),
                "xi = {xi}: unexpected {err:?}"
            );
        }
        std::fs::remove_file(&graph_path).ok();
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let mut buf = Vec::new();
        assert!(run(
            &Command::Generate { dataset: "nope".into(), out: "/tmp/x.txt".into() },
            &mut buf
        )
        .is_err());
    }

    #[test]
    fn query_rejects_missing_index() {
        let mut buf = Vec::new();
        assert!(run(
            &Command::Query {
                index: "/nonexistent/path.idx".into(),
                seed: 0,
                top: 5,
                threads: 0,
                serve: ServeFlags::default(),
            },
            &mut buf
        )
        .is_err());
    }

    /// With `--fallback-graph`, a missing/corrupt index serves degraded
    /// answers instead of exiting: the whole graceful-degradation ladder
    /// from the CLI's point of view.
    #[test]
    fn degraded_only_mode_serves_when_index_is_unavailable() {
        let dir = std::env::temp_dir();
        let graph_path = dir.join("bear_cli_degraded.txt");
        let mut buf = Vec::new();
        run(
            &Command::Generate {
                dataset: "small_routing".into(),
                out: graph_path.to_string_lossy().into_owned(),
            },
            &mut buf,
        )
        .unwrap();

        let serve = ServeFlags {
            fallback_graph: Some(graph_path.to_string_lossy().into_owned()),
            ..ServeFlags::default()
        };
        buf.clear();
        run(
            &Command::Query {
                index: "/nonexistent/path.idx".into(),
                seed: 0,
                top: 5,
                threads: 0,
                serve: serve.clone(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("WARNING: index unavailable"));
        assert!(text.contains("DEGRADED: index unavailable"));
        assert!(text.contains("error bound"));

        buf.clear();
        run(
            &Command::Batch {
                index: "/nonexistent/path.idx".into(),
                seeds: vec![0, 1],
                top: 3,
                threads: 0,
                serve,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("2 degraded"));

        std::fs::remove_file(&graph_path).ok();
    }
}
