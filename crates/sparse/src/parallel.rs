//! Parallel versions of the embarrassingly parallel kernels, built on a
//! shared scoped fan-out helper.
//!
//! BEAR's preprocessing is dominated by per-column / per-block
//! computations that are independent of each other — triangular-factor
//! inversion (one sparse solve per column), SpGEMM (one accumulator pass
//! per row), block-diagonal LU (one factorization per block), and
//! drop-tolerance sparsification (one filter pass per row/column) — so
//! all of them scale nearly linearly with threads by splitting the work
//! into chunks over `std::thread::scope`. Results are stitched back in
//! input order, so every parallel kernel is **bit-identical** to its
//! serial counterpart (each column/row/block is computed by exactly the
//! same code, and f64 arithmetic never crosses a chunk boundary).
//!
//! Two scheduling helpers cover the kernels' needs:
//!
//! * [`split_ranges`] — contiguous near-equal ranges, for kernels whose
//!   per-item cost is roughly uniform (rows of SpGEMM, columns of a
//!   triangular inverse);
//! * [`balance_by_cost`] — greedy LPT (longest-processing-time-first)
//!   chunking for heterogeneous items, e.g. diagonal blocks of `H₁₁`
//!   whose factorization cost grows like `size²`; the largest blocks are
//!   placed first and chunks are balanced by total cost.
//!
//! [`run_chunked`] is the shared execution core: it fans the chunks out
//! over scoped threads, joins them in order, and converts worker panics
//! into the typed [`Error::KernelPanicked`] instead of aborting the
//! process (consistent with the query engine's worker-panic containment).
//!
//! Thread-spawn overhead is a few hundred microseconds per call, so the
//! parallel paths only pay off once the serial kernel takes milliseconds —
//! i.e. on the large hub-heavy inputs where BEAR's preprocessing actually
//! hurts; callers (e.g. `BearConfig::threads`) should keep `threads = 1`
//! for small inputs.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::{Error, Result};
use crate::ops::spgemm;
use crate::triangular::{spsolve, SpSolveWorkspace, Triangle};

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal
/// length.
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Partitions the item indices `0..costs.len()` into at most `parts`
/// chunks of near-equal total cost using the greedy LPT rule: items are
/// visited in descending cost order and each goes to the currently
/// least-loaded chunk. Scheduling is fully deterministic (stable
/// descending sort, ties broken by lowest item index; equal loads broken
/// by lowest chunk index) and every index appears in exactly one chunk.
///
/// Within each returned chunk the indices are sorted ascending, so a
/// caller that stitches per-chunk output back by index produces
/// input-ordered (hence bit-identical) results regardless of `parts`.
pub fn balance_by_cost(costs: &[u128], parts: usize) -> Vec<Vec<usize>> {
    let parts = parts.max(1).min(costs.len().max(1));
    let mut order: Vec<usize> = (0..costs.len()).collect();
    // Stable sort: equal costs keep ascending index order.
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); parts];
    let mut loads = vec![0u128; parts];
    for i in order {
        let k = (0..parts).min_by_key(|&k| (loads[k], k)).expect("parts >= 1");
        chunks[k].push(i);
        loads[k] = loads[k].saturating_add(costs[i]);
    }
    for chunk in &mut chunks {
        chunk.sort_unstable();
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work` over `chunks` on one scoped thread per chunk and returns
/// the per-chunk results **in input order**.
///
/// This is the shared execution core of every parallel kernel. It
/// replaces the per-call `thread::scope` + `join().expect("no panics")`
/// pattern: a panicking worker no longer aborts the process — the panic
/// is captured at the join and mapped to [`Error::KernelPanicked`]
/// (tagged with `kernel` for diagnosis). Error reporting is
/// deterministic: the first failing chunk in input order wins.
///
/// With zero or one chunk the work runs inline on the calling thread, so
/// small inputs pay no spawn overhead.
pub fn run_chunked<I, T, F>(chunks: Vec<I>, kernel: &'static str, work: F) -> Result<Vec<T>>
where
    I: Send,
    T: Send,
    F: Fn(I) -> Result<T> + Sync,
{
    if chunks.len() <= 1 {
        return chunks.into_iter().map(work).collect();
    }
    let results: Vec<Result<T>> = std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> =
            chunks.into_iter().map(|chunk| scope.spawn(move || work(chunk))).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(payload) => {
                    Err(Error::KernelPanicked { kernel, detail: panic_message(&*payload) })
                }
            })
            .collect()
    });
    results.into_iter().collect()
}

/// Parallel triangular inversion: like
/// [`crate::triangular::invert_triangular`] but computing column ranges on
/// `threads` scoped threads.
pub fn par_invert_triangular(
    g: &CscMatrix,
    triangle: Triangle,
    unit_diag: bool,
    threads: usize,
) -> Result<CscMatrix> {
    let n = g.ncols();
    if g.nrows() != n {
        return Err(Error::DimensionMismatch {
            op: "par_invert_triangular",
            lhs: (g.nrows(), g.ncols()),
            rhs: (n, n),
        });
    }
    let ranges = split_ranges(n, threads);
    if ranges.len() <= 1 {
        return crate::triangular::invert_triangular(g, triangle, unit_diag);
    }

    let chunks = run_chunked(ranges, "par_invert_triangular", |range| {
        let mut ws = SpSolveWorkspace::new(n);
        let mut col_ptr = Vec::with_capacity(range.len());
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for j in range {
            let (pat, vals) = spsolve(g, triangle, &[j], &[1.0], unit_diag, &mut ws)?;
            indices.extend_from_slice(&pat);
            values.extend_from_slice(&vals);
            col_ptr.push(indices.len());
        }
        Ok((col_ptr, indices, values))
    })?;

    // Stitch the chunks into one CSC matrix.
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0);
    for (col_ptr, idx, val) in chunks {
        let offset = indices.len();
        indptr.extend(col_ptr.iter().map(|&p| p + offset));
        indices.extend_from_slice(&idx);
        values.extend_from_slice(&val);
    }
    Ok(CscMatrix::from_raw_unchecked(n, n, indptr, indices, values))
}

/// Parallel SpGEMM: row ranges of `A` computed on `threads` threads and
/// stitched together.
pub fn par_spgemm(a: &CsrMatrix, b: &CsrMatrix, threads: usize) -> Result<CsrMatrix> {
    if a.ncols() != b.nrows() {
        return Err(Error::DimensionMismatch {
            op: "par_spgemm",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let ranges = split_ranges(a.nrows(), threads);
    if ranges.len() <= 1 {
        return spgemm(a, b);
    }

    let chunks = run_chunked(ranges, "par_spgemm", |range| {
        let sub = a.submatrix(range.start, range.end, 0, a.ncols())?;
        spgemm(&sub, b)
    })?;

    let mut indptr = Vec::with_capacity(a.nrows() + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0);
    for m in chunks {
        let offset = indices.len();
        indptr.extend(m.indptr()[1..].iter().map(|&p| p + offset));
        indices.extend_from_slice(m.indices());
        values.extend_from_slice(m.values());
    }
    Ok(CsrMatrix::from_raw_unchecked(a.nrows(), b.ncols(), indptr, indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::lu::SparseLu;
    use crate::triangular::invert_triangular;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(r: usize, c: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(r, c);
        for i in 0..r {
            for j in 0..c {
                if rng.gen_bool(0.1) {
                    coo.push(i, j, rng.gen_range(-2.0..2.0));
                }
            }
        }
        coo.to_csr()
    }

    fn random_dd(n: usize, seed: u64) -> CscMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        let mut sums = vec![0.0; n];
        for i in 0..n {
            for (j, sj) in sums.iter_mut().enumerate() {
                if i != j && rng.gen_bool(0.1) {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    coo.push(i, j, v);
                    *sj += v.abs(); // column dominance
                }
            }
        }
        for (j, &s) in sums.iter().enumerate() {
            coo.push(j, j, s + 1.0);
        }
        coo.to_csr().to_csc()
    }

    #[test]
    fn split_ranges_covers_everything() {
        let ranges = split_ranges(10, 3);
        assert_eq!(ranges.len(), 3);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 10);
        assert_eq!(split_ranges(2, 8).len(), 2);
        assert_eq!(split_ranges(0, 4).len(), 1);
    }

    #[test]
    fn balance_by_cost_partitions_all_indices() {
        let costs = [9u128, 1, 4, 16, 1, 25, 9, 4];
        for parts in [1, 2, 3, 4, 8, 20] {
            let chunks = balance_by_cost(&costs, parts);
            assert!(chunks.len() <= parts.min(costs.len()));
            let mut seen: Vec<usize> = chunks.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..costs.len()).collect::<Vec<_>>());
            // Indices inside each chunk stay ascending (stitch order).
            for chunk in &chunks {
                assert!(chunk.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn balance_by_cost_spreads_load() {
        // One huge block plus many small ones: LPT must put the huge one
        // alone and spread the rest, instead of a contiguous split that
        // pairs the huge block with half the small ones.
        let costs = [100u128, 1, 1, 1, 1, 1, 1, 1];
        let chunks = balance_by_cost(&costs, 2);
        assert_eq!(chunks.len(), 2);
        let load = |c: &[usize]| c.iter().map(|&i| costs[i]).sum::<u128>();
        let max_load = chunks.iter().map(|c| load(c)).max().unwrap();
        assert_eq!(max_load, 100); // huge block isolated
        assert_eq!(chunks.iter().map(Vec::len).sum::<usize>(), 8);
    }

    #[test]
    fn balance_by_cost_is_deterministic_on_ties() {
        let costs = [2u128, 2, 2, 2];
        let a = balance_by_cost(&costs, 2);
        let b = balance_by_cost(&costs, 2);
        assert_eq!(a, b);
        assert_eq!(a, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn balance_by_cost_handles_degenerate_inputs() {
        assert_eq!(balance_by_cost(&[], 4), Vec::<Vec<usize>>::new());
        assert_eq!(balance_by_cost(&[7], 4), vec![vec![0]]);
        // All-zero costs still place every index exactly once.
        let chunks = balance_by_cost(&[0, 0, 0], 2);
        let mut seen: Vec<usize> = chunks.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn run_chunked_preserves_input_order() {
        let chunks: Vec<usize> = (0..8).collect();
        let out = run_chunked(chunks, "test", |i| Ok(i * 10)).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    /// Failpoint-style containment test: a worker that panics mid-kernel
    /// must surface as `Error::KernelPanicked`, not abort the process,
    /// and the earliest failing chunk must win deterministically.
    #[test]
    fn run_chunked_contains_worker_panics() {
        let chunks = vec![0usize, 1, 2, 3];
        let err = run_chunked(chunks, "panicky_kernel", |i| {
            if i == 2 {
                panic!("injected fault in chunk {i}");
            }
            Ok(i)
        })
        .unwrap_err();
        match err {
            Error::KernelPanicked { kernel, detail } => {
                assert_eq!(kernel, "panicky_kernel");
                assert!(detail.contains("injected fault in chunk 2"), "detail: {detail}");
            }
            other => panic!("expected KernelPanicked, got {other:?}"),
        }
    }

    #[test]
    fn run_chunked_prefers_earliest_typed_error() {
        let chunks = vec![0usize, 1, 2];
        let err = run_chunked(chunks, "test", |i| {
            if i >= 1 {
                Err(Error::SingularMatrix { at: i })
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err, Error::SingularMatrix { at: 1 });
    }

    #[test]
    fn run_chunked_single_chunk_runs_inline() {
        // One chunk must not spawn (and must still contain its errors).
        let out = run_chunked(vec![41usize], "test", |i| Ok(i + 1)).unwrap();
        assert_eq!(out, vec![42]);
        assert!(run_chunked(Vec::<usize>::new(), "test", Ok).unwrap().is_empty());
    }

    #[test]
    fn par_spgemm_matches_serial() {
        let a = random_matrix(40, 30, 1);
        let b = random_matrix(30, 25, 2);
        let serial = spgemm(&a, &b).unwrap();
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_spgemm(&a, &b, threads).unwrap(), serial);
        }
    }

    #[test]
    fn par_invert_matches_serial() {
        let a = random_dd(50, 3);
        let lu = SparseLu::factor(&a).unwrap();
        let serial_l = invert_triangular(lu.l(), Triangle::Lower, true).unwrap();
        let serial_u = invert_triangular(lu.u(), Triangle::Upper, false).unwrap();
        for threads in [2, 4] {
            let par_l = par_invert_triangular(lu.l(), Triangle::Lower, true, threads).unwrap();
            let par_u = par_invert_triangular(lu.u(), Triangle::Upper, false, threads).unwrap();
            assert_eq!(par_l.to_csr(), serial_l.to_csr());
            assert_eq!(par_u.to_csr(), serial_u.to_csr());
        }
    }

    #[test]
    fn par_kernels_validate_dimensions() {
        let a = CsrMatrix::identity(3);
        let b = CsrMatrix::identity(4);
        assert!(par_spgemm(&a, &b, 2).is_err());
        let rect = random_matrix(3, 4, 5).to_csc();
        assert!(par_invert_triangular(&rect, Triangle::Lower, true, 2).is_err());
    }

    #[test]
    fn par_invert_propagates_singularity() {
        // Lower triangular with a zero diagonal entry.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(2, 2, 1.0);
        coo.push(1, 0, 1.0);
        let l = coo.to_csr().to_csc();
        assert!(par_invert_triangular(&l, Triangle::Lower, false, 2).is_err());
    }
}
