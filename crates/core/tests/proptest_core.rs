//! Crate-level property tests for bear-core: the iterative-hub variant,
//! persistence, top-k, blocked multi-RHS queries, and drop-tolerance
//! behaviour on arbitrary graphs.

use bear_core::{Bear, BearConfig, BearHubIterative, BlockWorkspace, RwrSolver};
use bear_graph::Graph;
use bear_sparse::DenseBlock;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..35).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |mut edges| {
            for u in 0..n {
                edges.push((u, (u + 1) % n));
            }
            Graph::from_edges(n, &edges).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn hub_iterative_equals_exact_bear(g in arb_graph(), s in 0.0f64..1.0) {
        let seed = ((s * g.num_nodes() as f64) as usize).min(g.num_nodes() - 1);
        let exact = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let hub_iter = BearHubIterative::new(&g, &BearConfig::exact(0.1)).unwrap();
        let re = exact.query(seed).unwrap();
        let ri = hub_iter.query(seed).unwrap();
        for (a, b) in re.iter().zip(&ri) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        prop_assert!(hub_iter.memory_bytes() <= exact.memory_bytes());
    }

    #[test]
    fn persistence_round_trips_on_random_graphs(g in arb_graph(), tag in 0u64..1_000_000) {
        let bear = Bear::new(&g, &BearConfig::exact(0.2)).unwrap();
        let path = std::env::temp_dir().join(format!("bear_prop_persist_{tag}.idx"));
        bear.save(&path).unwrap();
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(bear.stats(), loaded.stats());
        let seed = g.num_nodes() / 2;
        prop_assert_eq!(bear.query(seed).unwrap(), loaded.query(seed).unwrap());
    }

    #[test]
    fn top_k_prefix_property(g in arb_graph(), k in 1usize..10) {
        let bear = Bear::new(&g, &BearConfig::exact(0.15)).unwrap();
        let seed = 0;
        let k = k.min(g.num_nodes() - 1);
        let top_k = bear.query_top_k(seed, k).unwrap();
        let top_k1 = bear.query_top_k(seed, k + 1).unwrap();
        // top-k is a prefix of top-(k+1).
        prop_assert_eq!(&top_k[..], &top_k1[..top_k.len().min(top_k1.len())]);
        // Scores descend and exclude the seed.
        for w in top_k.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        prop_assert!(top_k.iter().all(|s| s.node != seed));
    }

    #[test]
    fn drop_tolerance_zero_is_exact(g in arb_graph()) {
        let a = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let b = Bear::new(&g, &BearConfig::approx(0.1, 0.0)).unwrap();
        prop_assert_eq!(a.query(0).unwrap(), b.query(0).unwrap());
        prop_assert_eq!(a.memory_bytes(), b.memory_bytes());
    }

    #[test]
    fn parallel_preprocessing_saves_identical_bytes(g in arb_graph(), tag in 0u64..1_000_000) {
        // The public-API face of the determinism guarantee: serial and
        // multi-threaded preprocessing persist byte-for-byte identical
        // indexes, so every matrix, permutation entry, and count agrees
        // exactly — not just approximately.
        let serial = Bear::new(&g, &BearConfig { threads: 1, ..BearConfig::approx(0.1, 1e-4) }).unwrap();
        let mut blobs = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let config = BearConfig { threads, ..BearConfig::approx(0.1, 1e-4) };
            let bear = Bear::new(&g, &config).unwrap();
            let path = std::env::temp_dir().join(format!("bear_prop_par_{tag}_{threads}.idx"));
            bear.save(&path).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            blobs.push((threads, bytes));
            prop_assert_eq!(serial.stats(), bear.stats());
        }
        let (_, reference) = &blobs[0];
        for (threads, bytes) in &blobs[1..] {
            prop_assert_eq!(bytes, reference, "threads = {} produced different index bytes", threads);
        }
    }

    #[test]
    fn batch_query_equals_individual(g in arb_graph()) {
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let n = g.num_nodes();
        let seeds: Vec<usize> = (0..n.min(6)).collect();
        let batch = bear.query_batch(&seeds, 3).unwrap();
        for (i, &s) in seeds.iter().enumerate() {
            prop_assert_eq!(&batch[i], &bear.query(s).unwrap());
        }
    }

    #[test]
    fn query_block_identical_to_per_seed(
        g in arb_graph(),
        picks in proptest::collection::vec(0.0f64..1.0, 0..12),
        width in 1usize..10,
    ) {
        // The blocked multi-RHS path's determinism guarantee: for ANY
        // graph, ANY seed multiset (duplicates included), and ANY block
        // width — including a width larger than the seed count, which
        // exercises the remainder/fallback shapes — every blocked column
        // is bit-for-bit identical (`==`, not approximately equal) to
        // the per-seed answer.
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let n = g.num_nodes();
        let seeds: Vec<usize> =
            picks.iter().map(|&p| ((p * n as f64) as usize).min(n - 1)).collect();
        let want: Vec<Vec<f64>> = seeds.iter().map(|&s| bear.query(s).unwrap()).collect();
        let mut ws = BlockWorkspace::for_bear(&bear);
        let mut out = DenseBlock::zeros(n, 0);
        let mut offset = 0;
        for chunk in seeds.chunks(width) {
            out.reset(n, chunk.len());
            bear.query_block_into(chunk, &mut ws, &mut out).unwrap();
            for (j, want) in want[offset..offset + chunk.len()].iter().enumerate() {
                prop_assert_eq!(out.col(j), &want[..], "column {} diverged", offset + j);
            }
            offset += chunk.len();
        }
        // One whole-slice solve too (width > n_seeds when picks is short).
        if !seeds.is_empty() {
            let cols = bear.query_block(&seeds).unwrap();
            for (got, want) in cols.iter().zip(&want) {
                prop_assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn batch_query_empty_seed_slice_is_empty(g in arb_graph()) {
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        prop_assert_eq!(bear.query_batch(&[], 4).unwrap(), Vec::<Vec<f64>>::new());
    }

    #[test]
    fn effective_importance_degree_relation(g in arb_graph()) {
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let deg = g.undirected_degrees();
        let r = bear.query(0).unwrap();
        let ei = bear.query_effective_importance(0).unwrap();
        for u in 0..g.num_nodes() {
            let want = if deg[u] > 0 { r[u] / deg[u] as f64 } else { r[u] };
            prop_assert!((ei[u] - want).abs() < 1e-12);
        }
    }
}
