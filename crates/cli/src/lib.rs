//! Implementation of the `bear` command-line tool.
//!
//! Subcommands:
//!
//! * `bear preprocess <graph.txt> <index.bear> [--c 0.05] [--xi 0]` —
//!   read an edge list, run BEAR preprocessing, write the query index;
//! * `bear query <index.bear> <seed> [--top 10]` — answer one RWR query
//!   from a saved index;
//! * `bear stats <graph.txt>` — graph and SlashBurn structure statistics;
//! * `bear generate <dataset> <out.txt>` — materialize a registry dataset
//!   as an edge list.
//!
//! The library half exists so the command logic is unit-testable without
//! spawning processes; `main.rs` is a thin argv adapter.

use bear_core::{Bear, BearConfig};
use bear_graph::io::{read_edge_list, write_edge_list};
use bear_graph::{slashburn, SlashBurnConfig};
use bear_sparse::{Error, Result};
use std::path::Path;

/// Parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Preprocess an edge list into an index file.
    Preprocess {
        /// Input edge-list path.
        graph: String,
        /// Output index path.
        index: String,
        /// Restart probability.
        c: f64,
        /// Drop tolerance (0 = exact).
        xi: f64,
    },
    /// Query a saved index.
    Query {
        /// Index path.
        index: String,
        /// Seed node.
        seed: usize,
        /// How many top nodes to print.
        top: usize,
    },
    /// Print graph statistics.
    Stats {
        /// Input edge-list path.
        graph: String,
    },
    /// Generate a registry dataset as an edge list.
    Generate {
        /// Dataset name (see `bear-datasets`).
        dataset: String,
        /// Output path.
        out: String,
    },
    /// Print usage.
    Help,
}

/// Parses an argv-style token list (without the binary name).
pub fn parse_command(args: &[String]) -> Result<Command> {
    let flag = |name: &str, default: f64| -> Result<f64> {
        match args.iter().position(|a| a == name) {
            Some(i) => args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| Error::InvalidStructure(format!("{name} needs a numeric value"))),
            None => Ok(default),
        }
    };
    match args.first().map(|s| s.as_str()) {
        Some("preprocess") => {
            let graph = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| Error::InvalidStructure("preprocess needs <graph> <index>".into()))?
                .clone();
            let index = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| Error::InvalidStructure("preprocess needs <graph> <index>".into()))?
                .clone();
            Ok(Command::Preprocess {
                graph,
                index,
                c: flag("--c", 0.05)?,
                xi: flag("--xi", 0.0)?,
            })
        }
        Some("query") => {
            let index = args
                .get(1)
                .ok_or_else(|| Error::InvalidStructure("query needs <index> <seed>".into()))?
                .clone();
            let seed: usize = args
                .get(2)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| Error::InvalidStructure("query needs a numeric seed".into()))?;
            let top = flag("--top", 10.0)? as usize;
            Ok(Command::Query { index, seed, top })
        }
        Some("stats") => Ok(Command::Stats {
            graph: args
                .get(1)
                .ok_or_else(|| Error::InvalidStructure("stats needs <graph>".into()))?
                .clone(),
        }),
        Some("generate") => Ok(Command::Generate {
            dataset: args
                .get(1)
                .ok_or_else(|| Error::InvalidStructure("generate needs <dataset> <out>".into()))?
                .clone(),
            out: args
                .get(2)
                .ok_or_else(|| Error::InvalidStructure("generate needs <dataset> <out>".into()))?
                .clone(),
        }),
        Some("help") | Some("--help") | Some("-h") | None => Ok(Command::Help),
        Some(other) => Err(Error::InvalidStructure(format!("unknown command '{other}'"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
bear — block elimination approach for random walk with restart

USAGE:
  bear preprocess <graph.txt> <index.bear> [--c 0.05] [--xi 0]
  bear query <index.bear> <seed> [--top 10]
  bear stats <graph.txt>
  bear generate <dataset> <out.txt>

Graphs are whitespace edge lists: 'src dst [weight]' per line, '#'
comments. Datasets: any name from the bear-datasets registry, e.g.
routing_like, email_like, rmat_0.7, small_routing.";

/// Executes a parsed command, writing human-readable output to `out`.
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> Result<()> {
    let io_err = |e: std::io::Error| Error::InvalidStructure(format!("output error: {e}"));
    match cmd {
        Command::Help => writeln!(out, "{USAGE}").map_err(io_err),
        Command::Preprocess { graph, index, c, xi } => {
            let g = read_edge_list(Path::new(graph), None)?;
            let config = if *xi > 0.0 {
                BearConfig::approx(*c, *xi)
            } else {
                BearConfig::exact(*c)
            };
            let start = std::time::Instant::now();
            let bear = Bear::new(&g, &config)?;
            let elapsed = start.elapsed().as_secs_f64();
            bear.save(Path::new(index))?;
            let st = bear.stats();
            writeln!(
                out,
                "preprocessed {} nodes / {} edges in {elapsed:.3}s: \
                 n1={} n2={} blocks={} nnz={} bytes={} -> {index}",
                g.num_nodes(),
                g.num_edges(),
                st.n1,
                st.n2,
                st.num_blocks,
                st.total_nnz(),
                st.bytes
            )
            .map_err(io_err)
        }
        Command::Query { index, seed, top } => {
            let bear = Bear::load(Path::new(index))?;
            let start = std::time::Instant::now();
            let ranked = bear.query_top_k(*seed, *top)?;
            let elapsed = start.elapsed().as_secs_f64();
            writeln!(out, "top {} nodes for seed {} ({elapsed:.6}s):", ranked.len(), seed)
                .map_err(io_err)?;
            for s in ranked {
                writeln!(out, "  {}\t{:.6e}", s.node, s.score).map_err(io_err)?;
            }
            Ok(())
        }
        Command::Stats { graph } => {
            let g = read_edge_list(Path::new(graph), None)?;
            let ord = slashburn(&g, &SlashBurnConfig::paper_default(g.num_nodes()))?;
            writeln!(
                out,
                "nodes={} edges={} | slashburn: n1={} n2={} blocks={} \
                 max_block={} sum_block_sq={} iterations={}",
                g.num_nodes(),
                g.num_edges(),
                ord.n_spokes,
                ord.n_hubs,
                ord.block_sizes.len(),
                ord.block_sizes.iter().copied().max().unwrap_or(0),
                ord.sum_block_sq(),
                ord.iterations
            )
            .map_err(io_err)
        }
        Command::Generate { dataset, out: path } => {
            let spec = bear_datasets::dataset_by_name(dataset).ok_or_else(|| {
                Error::InvalidStructure(format!("unknown dataset '{dataset}'"))
            })?;
            let g = spec.load();
            write_edge_list(&g, Path::new(path))?;
            writeln!(
                out,
                "generated {} ({} nodes, {} edges) -> {path}",
                dataset,
                g.num_nodes(),
                g.num_edges()
            )
            .map_err(io_err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Command> {
        parse_command(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_preprocess() {
        let cmd = parse(&["preprocess", "g.txt", "g.idx", "--c", "0.1", "--xi", "1e-4"]).unwrap();
        assert_eq!(
            cmd,
            Command::Preprocess {
                graph: "g.txt".into(),
                index: "g.idx".into(),
                c: 0.1,
                xi: 1e-4
            }
        );
    }

    #[test]
    fn parses_query_with_defaults() {
        let cmd = parse(&["query", "g.idx", "42"]).unwrap();
        assert_eq!(cmd, Command::Query { index: "g.idx".into(), seed: 42, top: 10 });
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse(&["preprocess", "only-one"]).is_err());
        assert!(parse(&["query", "idx", "notanumber"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn end_to_end_generate_preprocess_query_stats() {
        let dir = std::env::temp_dir();
        let graph_path = dir.join("bear_cli_e2e.txt");
        let index_path = dir.join("bear_cli_e2e.idx");
        let mut buf = Vec::new();

        run(
            &Command::Generate {
                dataset: "small_routing".into(),
                out: graph_path.to_string_lossy().into_owned(),
            },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("generated small_routing"));

        buf.clear();
        run(
            &Command::Preprocess {
                graph: graph_path.to_string_lossy().into_owned(),
                index: index_path.to_string_lossy().into_owned(),
                c: 0.05,
                xi: 0.0,
            },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("preprocessed"));

        buf.clear();
        run(
            &Command::Query {
                index: index_path.to_string_lossy().into_owned(),
                seed: 0,
                top: 5,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("top 5 nodes for seed 0"));
        assert_eq!(text.lines().count(), 6); // header + 5 rows

        buf.clear();
        run(
            &Command::Stats { graph: graph_path.to_string_lossy().into_owned() },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("slashburn:"));

        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&index_path).ok();
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let mut buf = Vec::new();
        assert!(run(
            &Command::Generate { dataset: "nope".into(), out: "/tmp/x.txt".into() },
            &mut buf
        )
        .is_err());
    }

    #[test]
    fn query_rejects_missing_index() {
        let mut buf = Vec::new();
        assert!(run(
            &Command::Query { index: "/nonexistent/path.idx".into(), seed: 0, top: 5 },
            &mut buf
        )
        .is_err());
    }
}
