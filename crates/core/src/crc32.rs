//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over byte slices.
//!
//! The v2 index format frames every section with a CRC of its payload
//! plus a whole-file trailer checksum (see [`crate::persist`]), so a
//! torn write, truncation, or bit rot is detected *before* any parsing
//! touches the bytes. The build environment is offline, so the
//! implementation is vendored here: the standard table-driven variant,
//! with the 256-entry table computed at compile time.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC-32 accumulator, for checksumming a file as it is
/// written without buffering it twice.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors for the IEEE polynomial (cross-checked
    /// against zlib's `crc32()`).
    #[test]
    fn known_answer_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"section payload with some entropy 0123456789";
        let mut acc = Crc32::new();
        acc.update(&data[..7]);
        acc.update(&data[7..30]);
        acc.update(&data[30..]);
        assert_eq!(acc.finish(), crc32(data));
    }

    /// Every single-bit flip changes the checksum — the property the
    /// torn-write suite leans on.
    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0u16..256).map(|i| (i % 251) as u8).collect();
        let base = crc32(&data);
        for byte in [0usize, 1, 100, 254, 255] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
