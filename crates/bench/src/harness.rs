//! Measurement and reporting helpers shared by the figure binaries.

use bear_core::RwrSolver;
use std::fmt::Write as _;
use std::time::Instant;

/// Times a closure, returning `(result, seconds)`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// One measurement row of an experiment. `None` fields are omitted from
/// the JSON output.
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Dataset name.
    pub dataset: String,
    /// Method display name.
    pub method: String,
    /// Free-form parameter annotation (e.g. `"xi=n^-1"`).
    pub param: Option<String>,
    /// Preprocessing wall-clock seconds, if measured.
    pub preprocess_s: Option<f64>,
    /// Average query wall-clock seconds, if measured.
    pub query_s: Option<f64>,
    /// Bytes of precomputed data, if measured.
    pub memory_bytes: Option<usize>,
    /// Cosine similarity vs the exact scores, if measured.
    pub cosine: Option<f64>,
    /// L2 error vs the exact scores, if measured.
    pub l2: Option<f64>,
    /// Set when the method aborted (e.g. out of memory budget), with the
    /// reason. Such rows correspond to the paper's omitted bars.
    pub failed: Option<String>,
}

/// Escapes a string per the JSON grammar (quotes, backslashes, control
/// characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so it round-trips as a JSON number.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a decimal point; keep one so
        // consumers parse the field as a float.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN literals.
        "null".to_string()
    }
}

impl ResultRow {
    /// A fresh row for `dataset` × `method`.
    pub fn new(dataset: &str, method: &str) -> Self {
        ResultRow {
            dataset: dataset.to_string(),
            method: method.to_string(),
            param: None,
            preprocess_s: None,
            query_s: None,
            memory_bytes: None,
            cosine: None,
            l2: None,
            failed: None,
        }
    }
}

/// A full experiment: id, description, and rows. Serialized with
/// `--json`.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Paper exhibit id, e.g. `"figure_1b"`.
    pub experiment: String,
    /// One-line description.
    pub description: String,
    /// Measurement rows.
    pub rows: Vec<ResultRow>,
}

impl ExperimentResult {
    /// Creates an experiment result container.
    pub fn new(experiment: &str, description: &str) -> Self {
        ExperimentResult {
            experiment: experiment.to_string(),
            description: description.to_string(),
            rows: Vec::new(),
        }
    }

    /// Prints the rows as an aligned text table (the "same rows the paper
    /// reports" output), then optionally writes JSON.
    pub fn print_table(&self) {
        println!("== {} — {} ==", self.experiment, self.description);
        println!(
            "{:<16} {:<12} {:<14} {:>12} {:>12} {:>12} {:>9} {:>10}  note",
            "dataset", "method", "param", "pre(s)", "query(ms)", "mem(KB)", "cosine", "L2"
        );
        for r in &self.rows {
            println!(
                "{:<16} {:<12} {:<14} {:>12} {:>12} {:>12} {:>9} {:>10}  {}",
                r.dataset,
                r.method,
                r.param.as_deref().unwrap_or("-"),
                r.preprocess_s.map_or("-".into(), |v| format!("{v:.3}")),
                r.query_s.map_or("-".into(), |v| format!("{:.3}", v * 1e3)),
                r.memory_bytes.map_or("-".into(), |v| format!("{}", v / 1024)),
                r.cosine.map_or("-".into(), |v| format!("{v:.4}")),
                r.l2.map_or("-".into(), |v| format!("{v:.2e}")),
                r.failed.as_deref().unwrap_or(""),
            );
        }
        println!();
    }

    /// Renders the experiment as a JSON document (hand-rolled: the build
    /// environment has no registry access, so no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"experiment\": \"{}\",", json_escape(&self.experiment));
        let _ = writeln!(out, "  \"description\": \"{}\",", json_escape(&self.description));
        out.push_str("  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let mut fields: Vec<String> = vec![
                format!("\"dataset\": \"{}\"", json_escape(&r.dataset)),
                format!("\"method\": \"{}\"", json_escape(&r.method)),
            ];
            if let Some(p) = &r.param {
                fields.push(format!("\"param\": \"{}\"", json_escape(p)));
            }
            if let Some(v) = r.preprocess_s {
                fields.push(format!("\"preprocess_s\": {}", json_f64(v)));
            }
            if let Some(v) = r.query_s {
                fields.push(format!("\"query_s\": {}", json_f64(v)));
            }
            if let Some(v) = r.memory_bytes {
                fields.push(format!("\"memory_bytes\": {v}"));
            }
            if let Some(v) = r.cosine {
                fields.push(format!("\"cosine\": {}", json_f64(v)));
            }
            if let Some(v) = r.l2 {
                fields.push(format!("\"l2\": {}", json_f64(v)));
            }
            if let Some(f) = &r.failed {
                fields.push(format!("\"failed\": \"{}\"", json_escape(f)));
            }
            out.push_str(&fields.join(", "));
            out.push('}');
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes the experiment as JSON to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Average single-seed query time over `num_seeds` deterministic
/// pseudo-random seeds (the paper averages over 1000 random seeds).
pub fn mean_query_time(solver: &dyn RwrSolver, num_seeds: usize) -> f64 {
    let n = solver.num_nodes();
    let mut total = 0.0;
    for i in 0..num_seeds {
        // Simple deterministic spread of seed nodes.
        let seed = (i * 2654435761) % n;
        let (_, secs) = measure(|| solver.query(seed).expect("query succeeds"));
        total += secs;
    }
    total / num_seeds as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_positive_time() {
        let (value, secs) = measure(|| (0..1000).sum::<usize>());
        assert_eq!(value, 499_500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn result_row_serializes_without_empty_fields() {
        let mut e = ExperimentResult::new("x", "y");
        e.rows.push(ResultRow::new("d", "m"));
        let json = e.to_json();
        assert!(json.contains("\"dataset\": \"d\""));
        assert!(!json.contains("preprocess_s"));
    }

    #[test]
    fn experiment_json_round_trip() {
        let mut e = ExperimentResult::new("figure_test", "desc");
        let mut row = ResultRow::new("d", "m");
        row.query_s = Some(0.5);
        row.memory_bytes = Some(2048);
        row.failed = Some("needs \"budget\"".to_string());
        e.rows.push(row);
        let json = e.to_json();
        assert!(json.contains("figure_test"));
        assert!(json.contains("\"query_s\": 0.5"));
        assert!(json.contains("\"memory_bytes\": 2048"));
        assert!(json.contains("needs \\\"budget\\\""));
    }

    #[test]
    fn json_floats_keep_a_decimal_point() {
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(1e-9), "0.000000001");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
