//! RWR variants supported by BEAR (Section 3.4 of the paper).
//!
//! * **Personalized PageRank** — already covered by
//!   [`Bear::query_distribution`](crate::Bear::query_distribution): pass
//!   the user preference distribution as `q`.
//! * **Effective importance** (Bogdanov & Singh, CIKM 2013) — the
//!   degree-normalized RWR score, computed here by dividing each entry of
//!   `r` by the node's degree.
//! * **RWR with normalized graph Laplacian** (Tong et al., KAIS 2008) —
//!   select [`Normalization::Symmetric`](crate::Normalization::Symmetric)
//!   in [`BearConfig`](crate::BearConfig) so preprocessing replaces `Ã`
//!   with `D^{-1/2} A D^{-1/2}`.

use crate::precompute::Bear;
use bear_sparse::Result;

impl Bear {
    /// Effective importance: RWR scores divided by node degree
    /// (undirected degree; zero-degree nodes keep their raw score, which
    /// is necessarily 0 for any seed other than themselves).
    pub fn query_effective_importance(&self, seed: usize) -> Result<Vec<f64>> {
        let r = self.query(seed)?;
        Ok(r.iter()
            .zip(&self.degrees)
            .map(|(&score, &d)| if d > 0 { score / d as f64 } else { score })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::precompute::{Bear, BearConfig};
    use crate::rwr::{Normalization, RwrConfig};
    use bear_graph::Graph;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    #[test]
    fn effective_importance_divides_by_degree() {
        let g = undirected(4, &[(0, 1), (0, 2), (0, 3)]);
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let r = bear.query(1).unwrap();
        let ei = bear.query_effective_importance(1).unwrap();
        // Node 0 has degree 3, leaves have degree 1.
        assert!((ei[0] - r[0] / 3.0).abs() < 1e-12);
        assert!((ei[1] - r[1]).abs() < 1e-12);
    }

    #[test]
    fn effective_importance_boosts_low_degree_relatives() {
        // Hub 0 with many leaves; EI of a leaf should exceed EI of the hub
        // relative to the plain RWR ordering when degrees differ a lot.
        let g = undirected(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (4, 5)]);
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let r = bear.query(5).unwrap();
        let ei = bear.query_effective_importance(5).unwrap();
        // Raw RWR ranks hub 0 above leaf 1... EI must penalize the hub.
        assert!(ei[0] / r[0] < ei[1].max(1e-300) / r[1].max(1e-300));
    }

    #[test]
    fn laplacian_variant_symmetric_scores_on_undirected_graph() {
        // With symmetric normalization on an undirected graph, the
        // relevance of u w.r.t. v equals that of v w.r.t. u.
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let config = BearConfig {
            rwr: RwrConfig { c: 0.2, normalization: Normalization::Symmetric },
            ..BearConfig::default()
        };
        let bear = Bear::new(&g, &config).unwrap();
        for u in 0..5 {
            let ru = bear.query(u).unwrap();
            for (v, &ruv) in ru.iter().enumerate() {
                let rv = bear.query(v).unwrap();
                assert!(
                    (ruv - rv[u]).abs() < 1e-10,
                    "asymmetry between {u} and {v}: {} vs {}",
                    ruv,
                    rv[u]
                );
            }
        }
    }
}
