//! `bear-lint`: repo-specific static analysis with a ratcheting baseline.
//!
//! `cargo xtask analyze lint` runs five rules that generic tooling
//! cannot express (see DESIGN.md §15):
//!
//! * **L1 panic-freedom** — no `.unwrap()`/`.expect()`/panicking macros/
//!   slice-index expressions in the designated serving hot paths;
//! * **L2 allocation-freedom** — no allocation constructs inside
//!   `*_into`/`*_acc` kernel bodies;
//! * **L3 trust boundaries** — no raw sparse constructors outside
//!   `bear-sparse` (use `try_from_parts`);
//! * **L4 sync-shim discipline** — `std::sync::{Mutex, Condvar, RwLock}`
//!   only inside the `crate::sync` shim, keeping every lock
//!   loom-checkable;
//! * **L5 error-taxonomy completeness** — every `Error` variant has an
//!   explicit HTTP-status arm and CLI exit-code arm.
//!
//! Findings check against a committed ratchet baseline
//! (`crates/xtask/lint-baseline.toml`); intentional exceptions are
//! written in the source as `// lint:allow(L1, reason)` with a mandatory
//! reason.

pub mod baseline;
pub mod report;
pub mod rules;
pub mod source;

use baseline::{Baseline, Comparison};
use report::Finding;
use source::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Process exit code when unbaselined findings are present.
pub const EXIT_NEW_FINDINGS: u8 = 5;
/// Process exit code when the baseline carries stale (paid-down) entries.
pub const EXIT_STALE_BASELINE: u8 = 6;
/// Process exit code for a usage error.
pub const EXIT_USAGE: u8 = 2;

/// Which files a rule applies to, as root-relative path prefixes.
#[derive(Debug, Default, Clone)]
pub struct RuleScope {
    /// Files or directories (prefix match) the rule covers.
    pub include: Vec<String>,
    /// Files or directories carved back out of `include`.
    pub exclude: Vec<String>,
}

impl RuleScope {
    /// Whether the rule covers `rel` (a `/`-separated relative path).
    pub fn matches(&self, rel: &str) -> bool {
        let hit = |prefix: &String| rel == prefix || rel.starts_with(&format!("{prefix}/"));
        self.include.iter().any(hit) && !self.exclude.iter().any(hit)
    }
}

/// Everything one lint run needs: the root, per-rule scopes, the L5
/// enum/mapping coordinates, and the baseline path.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directory all relative paths resolve against.
    pub root: PathBuf,
    /// L1 panic-freedom scope (hot-path files).
    pub l1: RuleScope,
    /// L2 allocation-freedom scope (kernel crates).
    pub l2: RuleScope,
    /// L3 trust-boundary scope (everything outside `bear-sparse`).
    pub l3: RuleScope,
    /// L4 sync-shim scope (locking crates, `sync.rs` carved out).
    pub l4: RuleScope,
    /// L5 error enum location: `(relative file, enum name)`.
    pub l5_enum: Option<(String, String)>,
    /// L5 mapping functions: `(relative file, fn name)` each of which
    /// must name every enum variant.
    pub l5_targets: Vec<(String, String)>,
    /// Baseline file location (absolute, or relative to `root`).
    pub baseline: PathBuf,
}

impl LintConfig {
    /// The scopes for this repository — the single place the hot-path
    /// and kernel designations live (mirrored in DESIGN.md §15).
    pub fn workspace(root: &Path) -> LintConfig {
        LintConfig {
            root: root.to_path_buf(),
            l1: RuleScope {
                include: vec![
                    "crates/core/src/engine/serving.rs".into(),
                    "crates/core/src/engine/queue.rs".into(),
                    "crates/core/src/query.rs".into(),
                    "crates/core/src/topk_pruned.rs".into(),
                    "crates/core/src/paging.rs".into(),
                    "crates/serve/src".into(),
                ],
                exclude: Vec::new(),
            },
            l2: RuleScope {
                include: vec!["crates/sparse/src".into(), "crates/core/src".into()],
                exclude: Vec::new(),
            },
            l3: RuleScope {
                include: vec![
                    "crates/core/src".into(),
                    "crates/serve/src".into(),
                    "crates/cli/src".into(),
                    "crates/graph/src".into(),
                    "crates/datasets/src".into(),
                    "crates/bench/src".into(),
                    "crates/baselines/src".into(),
                    "src".into(),
                ],
                exclude: Vec::new(),
            },
            l4: RuleScope {
                include: vec![
                    "crates/core/src".into(),
                    "crates/serve/src".into(),
                    "crates/cli/src".into(),
                ],
                exclude: vec!["crates/core/src/sync.rs".into()],
            },
            l5_enum: Some(("crates/sparse/src/error.rs".into(), "Error".into())),
            l5_targets: vec![
                ("crates/serve/src/server.rs".into(), "error_response".into()),
                ("crates/cli/src/lib.rs".into(), "exit_code".into()),
            ],
            baseline: PathBuf::from("crates/xtask/lint-baseline.toml"),
        }
    }

    /// The baseline path resolved against the root.
    pub fn baseline_path(&self) -> PathBuf {
        if self.baseline.is_absolute() {
            self.baseline.clone()
        } else {
            self.root.join(&self.baseline)
        }
    }
}

/// A parsed `// lint:allow(RULE, reason)` directive.
#[derive(Debug)]
struct Allow {
    /// Rule id the directive targets (`L1`..).
    rule: String,
    /// Whether a non-empty reason was supplied (required).
    has_reason: bool,
    /// Whether the directive parsed at all.
    well_formed: bool,
}

/// Parses every `lint:allow` directive in a comment string.
fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut allows = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow") {
        rest = &rest[at + "lint:allow".len()..];
        let Some(stripped) = rest.strip_prefix('(') else {
            allows.push(Allow { rule: String::new(), has_reason: false, well_formed: false });
            continue;
        };
        let Some(end) = stripped.find(')') else {
            allows.push(Allow { rule: String::new(), has_reason: false, well_formed: false });
            break;
        };
        let inner = &stripped[..end];
        rest = &stripped[end + 1..];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), why.trim()),
            None => (inner.trim().to_string(), ""),
        };
        allows.push(Allow { rule, has_reason: !reason.is_empty(), well_formed: true });
    }
    allows
}

/// Applies `lint:allow` directives to `findings` for one file: a finding
/// is suppressed by a well-formed directive for its rule, with a
/// non-empty reason, on the finding's line or on a directly preceding
/// comment-only line. Malformed or reason-less directives suppress
/// nothing and are themselves reported.
fn apply_allows(file: &SourceFile, findings: Vec<Finding>) -> Vec<Finding> {
    let mut out = Vec::new();
    let line_allows: Vec<Vec<Allow>> =
        file.lines.iter().map(|l| parse_allows(&l.comment)).collect();
    let effective = |line: usize, rule: &str| -> bool {
        let check = |idx: usize| {
            line_allows.get(idx).is_some_and(|a| {
                a.iter().any(|al| al.well_formed && al.has_reason && al.rule == rule)
            })
        };
        // Same line, or a comment-only line directly above.
        check(line.wrapping_sub(1))
            || (line >= 2
                && file.lines.get(line - 2).is_some_and(|l| l.code.trim().is_empty())
                && check(line - 2))
    };
    for f in findings {
        if !effective(f.line, &f.rule) {
            out.push(f);
        }
    }
    // Report malformed / reason-less directives so a bare `lint:allow(L1)`
    // can never silently pass review.
    for (idx, allows) in line_allows.iter().enumerate() {
        for al in allows {
            if !al.well_formed || !al.has_reason {
                let rule = if al.rule.is_empty() { "L?".to_string() } else { al.rule.clone() };
                out.push(Finding::with_fingerprint(
                    &rule,
                    "malformed-allow",
                    &file.rel_path,
                    idx + 1,
                    "`lint:allow` requires a rule and a reason: `// lint:allow(L1, why this is safe)`"
                        .to_string(),
                    format!("malformed-allow:{}", file.fingerprint(idx + 1)),
                ));
            }
        }
    }
    out
}

/// Recursively collects `.rs` files under `rel` (file or directory),
/// returning root-relative `/`-separated paths, sorted.
fn collect_rs(root: &Path, rel: &str, out: &mut Vec<String>) -> io::Result<()> {
    let abs = root.join(rel);
    if abs.is_file() {
        if rel.ends_with(".rs") {
            out.push(rel.to_string());
        }
        return Ok(());
    }
    if !abs.is_dir() {
        return Ok(()); // tolerated: scope names a crate this tree lacks
    }
    let mut children: Vec<_> = std::fs::read_dir(&abs)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    children.sort();
    for name in children {
        collect_rs(root, &format!("{rel}/{name}"), out)?;
    }
    Ok(())
}

/// Runs every rule over the configured scopes and returns the surviving
/// findings (after `lint:allow` application), sorted by file and line.
pub fn scan(config: &LintConfig) -> io::Result<Vec<Finding>> {
    // Union of all files any rule needs.
    let mut rel_paths: Vec<String> = Vec::new();
    for scope in [&config.l1, &config.l2, &config.l3, &config.l4] {
        for inc in &scope.include {
            collect_rs(&config.root, inc, &mut rel_paths)?;
        }
    }
    if let Some((f, _)) = &config.l5_enum {
        rel_paths.push(f.clone());
    }
    for (f, _) in &config.l5_targets {
        rel_paths.push(f.clone());
    }
    rel_paths.sort();
    rel_paths.dedup();

    let mut files: Vec<SourceFile> = Vec::new();
    for rel in &rel_paths {
        let text = std::fs::read_to_string(config.root.join(rel))?;
        files.push(SourceFile::parse(rel, &text));
    }

    let mut findings = Vec::new();
    for file in &files {
        let mut file_findings = Vec::new();
        if config.l1.matches(&file.rel_path) {
            file_findings.extend(rules::l1_panic_freedom(file));
        }
        if config.l2.matches(&file.rel_path) {
            file_findings.extend(rules::l2_alloc_freedom(file));
        }
        if config.l3.matches(&file.rel_path) {
            file_findings.extend(rules::l3_trust_boundary(file));
        }
        if config.l4.matches(&file.rel_path) {
            file_findings.extend(rules::l4_sync_shim(file));
        }
        findings.extend(apply_allows(file, file_findings));
    }
    if let Some((enum_rel, enum_name)) = &config.l5_enum {
        if let Some(enum_file) = files.iter().find(|f| f.rel_path == *enum_rel) {
            for (target_rel, fn_name) in &config.l5_targets {
                if let Some(target) = files.iter().find(|f| f.rel_path == *target_rel) {
                    let l5 = rules::l5_taxonomy(enum_file, enum_name, target, fn_name);
                    findings.extend(apply_allows(target, l5));
                }
            }
        }
    }
    findings.sort();
    Ok(findings)
}

/// Output format of the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `file:line: [rule/category] message` rows.
    Text,
    /// A machine-readable report (CI artifact).
    Json,
}

/// Parsed `analyze lint` flags.
#[derive(Debug)]
pub struct LintOptions {
    /// Rewrite the baseline from current findings (shrink-only).
    pub update_baseline: bool,
    /// Report format.
    pub format: Format,
    /// Write the report here instead of stdout.
    pub output: Option<PathBuf>,
}

impl LintOptions {
    /// Parses CLI flags; returns a usage message on failure.
    pub fn parse(args: &[String]) -> Result<LintOptions, String> {
        let mut opts = LintOptions { update_baseline: false, format: Format::Text, output: None };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--update-baseline" => opts.update_baseline = true,
                "--format" => match it.next().map(String::as_str) {
                    Some("text") => opts.format = Format::Text,
                    Some("json") => opts.format = Format::Json,
                    other => {
                        return Err(format!(
                            "--format expects `text` or `json`, got `{}`",
                            other.unwrap_or("<none>")
                        ))
                    }
                },
                "--output" => match it.next() {
                    Some(path) => opts.output = Some(PathBuf::from(path)),
                    None => return Err("--output expects a path".to_string()),
                },
                other => return Err(format!("unknown lint flag `{other}`")),
            }
        }
        Ok(opts)
    }
}

/// Checks findings against the baseline and emits the report. Returns
/// the process exit code (0 clean, [`EXIT_NEW_FINDINGS`],
/// [`EXIT_STALE_BASELINE`]).
pub fn check(config: &LintConfig, opts: &LintOptions) -> io::Result<u8> {
    let findings = scan(config)?;
    let baseline_path = config.baseline_path();
    let loaded = Baseline::load(&baseline_path)?;

    if opts.update_baseline {
        return update_baseline(&findings, loaded, &baseline_path);
    }

    let baseline = loaded.unwrap_or_default();
    let cmp = baseline.compare(&findings);
    emit_report(&cmp, &baseline, opts)?;
    if !cmp.new.is_empty() {
        eprintln!(
            "lint: {} new finding(s) (exit {EXIT_NEW_FINDINGS}); fix them or add `// lint:allow(RULE, reason)`",
            cmp.new.len()
        );
        Ok(EXIT_NEW_FINDINGS)
    } else if !cmp.stale.is_empty() {
        eprintln!(
            "lint: {} stale baseline entr{} (debt paid down — run `cargo xtask analyze lint --update-baseline`; exit {EXIT_STALE_BASELINE})",
            cmp.stale.len(),
            if cmp.stale.len() == 1 { "y" } else { "ies" }
        );
        Ok(EXIT_STALE_BASELINE)
    } else {
        eprintln!(
            "lint: clean ({} finding(s), all baselined; baseline entries {})",
            findings.len(),
            baseline.total()
        );
        Ok(0)
    }
}

/// The `--update-baseline` path: bootstrap a missing baseline, otherwise
/// shrink it (never grow — new findings still fail).
fn update_baseline(findings: &[Finding], loaded: Option<Baseline>, path: &Path) -> io::Result<u8> {
    let next = Baseline::from_findings(findings);
    match loaded {
        None => {
            next.store(path)?;
            eprintln!(
                "lint: bootstrapped baseline with {} finding(s) in {} entr{} at {}",
                next.total(),
                next.entries.len(),
                if next.entries.len() == 1 { "y" } else { "ies" },
                path.display()
            );
            Ok(0)
        }
        Some(prev) => {
            let cmp = prev.compare(findings);
            if !cmp.new.is_empty() {
                eprint!("{}", report::render_text(&cmp.new));
                eprintln!(
                    "lint: refusing to grow the baseline ({} new finding(s)); fix them or add `// lint:allow(RULE, reason)`",
                    cmp.new.len()
                );
                return Ok(EXIT_NEW_FINDINGS);
            }
            let removed = prev.total() - next.total();
            next.store(path)?;
            eprintln!(
                "lint: baseline updated, {} tolerated finding(s) removed ({} remain)",
                removed,
                next.total()
            );
            Ok(0)
        }
    }
}

/// Writes the report in the requested format to stdout or `--output`.
fn emit_report(cmp: &Comparison, baseline: &Baseline, opts: &LintOptions) -> io::Result<()> {
    let body = match opts.format {
        Format::Text => {
            // Text mode reports actionable rows only: new findings, then
            // stale entries.
            let mut text = report::render_text(&cmp.new);
            for (rule, file, fingerprint) in &cmp.stale {
                text.push_str(&format!(
                    "{file}: [{rule}] stale baseline entry (fixed): {fingerprint}\n"
                ));
            }
            text
        }
        Format::Json => {
            let stale: Vec<_> = cmp.stale.to_vec();
            report::render_json(&cmp.statuses, &stale, baseline.total())
        }
    };
    match &opts.output {
        Some(path) => std::fs::write(path, body),
        None => {
            print!("{body}");
            Ok(())
        }
    }
}
