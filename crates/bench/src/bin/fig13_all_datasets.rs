//! Reproduces **Figure 13** (Appendix E.3): the approximate-method
//! trade-off panels of Figure 8 repeated on every dataset.
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig13_all_datasets \
//!     [--datasets a,b,...] [--seeds N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::approx_tradeoff_suite;
use bear_datasets::all_datasets;

fn main() {
    let args = Args::from_env();
    let default_names: Vec<String> = all_datasets().iter().map(|d| d.name.to_string()).collect();
    let defaults: Vec<&str> = default_names.iter().map(|s| s.as_str()).collect();
    let opts = CommonOpts::from_args(&args, &defaults);
    let out = approx_tradeoff_suite(
        "figure_13",
        "approximate-method trade-offs on every dataset (Appendix E.3)",
        &opts.datasets,
        opts.num_seeds,
        opts.budget_bytes,
    );
    out.print_table();
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
