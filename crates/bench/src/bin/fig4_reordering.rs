//! Reproduces **Figure 4(b)** as a textual "spy summary": the structure
//! of the SlashBurn-reordered adjacency matrix — block-diagonal spoke
//! region up front, dense hub corner at the end — plus a verification
//! that no spoke–spoke edge crosses a block boundary.
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig4_reordering [--datasets routing_like]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::load_dataset;
use bear_graph::{slashburn, SlashBurnConfig};

fn main() {
    let args = Args::from_env();
    let opts = CommonOpts::from_args(&args, &["routing_like"]);
    for dataset in &opts.datasets {
        let g = load_dataset(dataset);
        let n = g.num_nodes();
        let ord = slashburn(&g, &SlashBurnConfig::paper_default(n)).expect("slashburn");
        println!("== figure_4 — SlashBurn reordering on {dataset} ==");
        println!("n = {n}, m = {}", g.num_edges());
        println!(
            "n1 (spokes) = {}, n2 (hubs) = {}, b (blocks) = {}, T (iterations) = {}",
            ord.n_spokes,
            ord.n_hubs,
            ord.block_sizes.len(),
            ord.iterations
        );
        println!("sum n1i^2 = {}", ord.sum_block_sq());
        let max_block = ord.block_sizes.iter().copied().max().unwrap_or(0);
        println!("block sizes: max = {max_block}");
        // Histogram of block sizes.
        let mut hist: std::collections::BTreeMap<usize, usize> = Default::default();
        for &b in &ord.block_sizes {
            *hist.entry(b).or_insert(0) += 1;
        }
        for (size, count) in &hist {
            println!("  {count:>6} blocks of size {size}");
        }

        // Verify the block-diagonal property and count quadrant nonzeros.
        let sym = g.symmetrized_pattern();
        let reordered = ord.perm.permute_symmetric(&sym).expect("permute");
        let mut block_of = vec![usize::MAX; n];
        let mut pos = 0;
        for (bid, &sz) in ord.block_sizes.iter().enumerate() {
            for _ in 0..sz {
                block_of[pos] = bid;
                pos += 1;
            }
        }
        let (mut nz11, mut nz12, mut nz22, mut crossings) = (0usize, 0usize, 0usize, 0usize);
        for (r, c, _) in reordered.iter() {
            match (r < ord.n_spokes, c < ord.n_spokes) {
                (true, true) => {
                    nz11 += 1;
                    if block_of[r] != block_of[c] {
                        crossings += 1;
                    }
                }
                (false, false) => nz22 += 1,
                _ => nz12 += 1,
            }
        }
        println!(
            "quadrant nnz: H11 = {nz11}, H12+H21 = {nz12}, H22 = {nz22}; \
             block-crossing spoke edges = {crossings} (must be 0)"
        );
        assert_eq!(crossings, 0, "block-diagonal property violated");
        println!();
    }
}
