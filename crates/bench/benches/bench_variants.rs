//! Criterion micro-benchmarks for the RWR variants and production
//! features: personalized PageRank, effective importance, top-k
//! extraction, index save/load, dynamic edge insertion, and the
//! iterative-hub extension.

use bear_core::{Bear, BearConfig, BearHubIterative, DynamicBear, RwrSolver};
use bear_datasets::dataset_by_name;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_variants(c: &mut Criterion) {
    let g = dataset_by_name("small_routing").unwrap().load();
    let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
    let n = g.num_nodes();

    c.bench_function("variants/ppr_100_seeds", |b| {
        let mut q = vec![0.0; n];
        for i in 0..100 {
            q[(i * 37) % n] += 0.01;
        }
        b.iter(|| std::hint::black_box(bear.query_distribution(&q).unwrap()))
    });

    c.bench_function("variants/effective_importance", |b| {
        b.iter(|| std::hint::black_box(bear.query_effective_importance(5).unwrap()))
    });

    c.bench_function("variants/top_k_10", |b| {
        b.iter(|| std::hint::black_box(bear.query_top_k(5, 10).unwrap()))
    });

    c.bench_function("persist/save_load_round_trip", |b| {
        let path = std::env::temp_dir().join("bench_persist.idx");
        b.iter(|| {
            bear.save(&path).unwrap();
            std::hint::black_box(Bear::load(&path).unwrap())
        });
        std::fs::remove_file(&path).ok();
    });

    c.bench_function("dynamic/hub_edge_insert", |b| {
        // Hub 0 (generator convention) gets repeatedly strengthened.
        let mut dynamic = DynamicBear::new(&g, &BearConfig::exact(0.05)).unwrap();
        b.iter(|| std::hint::black_box(dynamic.insert_edge(0, 42, 0.001).unwrap()))
    });

    let hub_iter = BearHubIterative::new(&g, &BearConfig::exact(0.05)).unwrap();
    c.bench_function("hub_iter/query", |b| {
        b.iter(|| std::hint::black_box(hub_iter.query(5).unwrap()))
    });
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
