//! Deterministic fault-injection suite (requires `--features failpoints`).
//!
//! Drives the named failpoint sites in the serving path and checks the
//! fault-tolerance contract end to end: **every injected fault class
//! yields a typed error or a `Degraded` answer — never a hang, an
//! abort, or unbounded queue growth.** Run via:
//!
//! ```text
//! cargo test -p bear-core --test fault_injection --features failpoints
//! cargo xtask analyze faults
//! ```
#![cfg(feature = "failpoints")]

use bear_core::failpoints::{self, FailAction};
use bear_core::{
    Bear, BearConfig, DegradedReason, EngineConfig, FallbackSolver, OverloadPolicy, QueryEngine,
    QueryOptions, RwrConfig,
};
use bear_graph::Graph;
use bear_sparse::Error;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// The failpoint registry is process-global, so cases must not overlap.
/// Each test holds this lock for its whole body; the guard disarms every
/// site on drop (including panics), so one failing case cannot poison
/// the next.
struct Serial(MutexGuard<'static, ()>);

fn serial() -> Serial {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard =
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoints::clear_all();
    Serial(guard)
}

impl Drop for Serial {
    fn drop(&mut self) {
        failpoints::clear_all();
    }
}

fn test_graph(n: usize) -> Graph {
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((0, v));
        edges.push((v, 0));
    }
    for v in 1..n.saturating_sub(1) {
        edges.push((v, v + 1));
        edges.push((v + 1, v));
    }
    Graph::from_edges(n, &edges).unwrap()
}

fn build(n: usize) -> (Graph, Arc<Bear>) {
    let g = test_graph(n);
    let bear = Arc::new(Bear::new(&g, &BearConfig::exact(0.15)).unwrap());
    (g, bear)
}

fn fallback_for(g: &Graph) -> Arc<FallbackSolver> {
    let rwr = RwrConfig { c: 0.15, ..RwrConfig::default() };
    Arc::new(FallbackSolver::new(g, &rwr, 200).unwrap())
}

fn small_config(threads: usize, queue_capacity: usize) -> EngineConfig {
    EngineConfig {
        threads,
        cache_capacity: 0,
        queue_capacity,
        overload: OverloadPolicy::Reject,
        default_deadline: None,
        ..EngineConfig::default()
    }
}

/// Fault class: the index fails validation at load. The error is typed
/// (not a panic, not garbage answers), and the service can still answer
/// from the fallback solver with high ranking agreement.
#[test]
fn corrupt_index_load_fails_typed_and_fallback_serves() {
    let _serial = serial();
    let (g, bear) = build(20);
    let path = std::env::temp_dir().join("bear_fault_injection_load.idx");
    bear.save(&path).unwrap();

    // Injected load failure: typed error, no panic.
    failpoints::configure("persist::load", FailAction::Fail);
    let err = Bear::load(&path).unwrap_err();
    assert!(
        matches!(&err, Error::InvalidStructure(msg) if msg.contains("failpoint")),
        "unexpected error: {err}"
    );
    failpoints::clear("persist::load");

    // Real byte surgery on the payload also fails typed.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(Bear::load(&path).is_err(), "corrupt payload must be rejected");
    std::fs::remove_file(&path).ok();

    // Degraded-only service: the fallback still produces close answers.
    let fb = fallback_for(&g);
    for seed in 0..5 {
        let exact = bear.query(seed).unwrap();
        let ans = fb.solve(seed).unwrap();
        let l1: f64 = exact.iter().zip(&ans.scores).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 <= ans.error_bound() + 1e-9);
        assert!(l1 < 1e-6, "seed {seed}: fallback far from exact ({l1})");
    }
}

/// Fault class: sustained overload. With slow workers and 10× more
/// concurrent queries than the queue admits, every rejection is the
/// typed `QueueFull` error, accepted queries still answer correctly, and
/// the queue never grows beyond its bound (memory stays bounded).
#[test]
fn overload_rejects_typed_and_queue_stays_bounded() {
    let _serial = serial();
    let (_g, bear) = build(16);
    let capacity = 3;
    let engine = Arc::new(QueryEngine::new(Arc::clone(&bear), small_config(1, capacity)).unwrap());
    failpoints::configure("engine::run_job", FailAction::Delay(Duration::from_millis(10)));

    let submitters = 10 * capacity;
    let outcomes: Vec<Result<(), Error>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..submitters)
            .map(|i| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let outcome = engine.query(i % 16).map(|_| ());
                    assert!(
                        engine.queue_depth() <= capacity,
                        "queue overflowed its bound under overload"
                    );
                    outcome
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let rejected = outcomes.iter().filter(|o| o.is_err()).count();
    for outcome in &outcomes {
        if let Err(e) = outcome {
            assert!(
                matches!(e, Error::QueueFull { capacity: c } if *c == capacity),
                "overload must surface as the typed QueueFull error, got {e}"
            );
        }
    }
    let m = engine.metrics();
    assert_eq!(m.queue_rejections, rejected as u64);
    assert!(outcomes.iter().any(|o| o.is_ok()), "admitted queries must still answer");
}

/// Fault class: worker panic. The panic is contained (`catch_unwind`),
/// surfaces as the typed `WorkerPanicked` error naming the seed, is
/// counted in metrics, and the pool keeps answering afterwards.
#[test]
fn worker_panic_is_contained_and_pool_stays_healthy() {
    let _serial = serial();
    let (_g, bear) = build(12);
    let engine = QueryEngine::new(Arc::clone(&bear), small_config(2, 8)).unwrap();

    failpoints::configure("engine::run_job", FailAction::Panic);
    let err = engine.query(3).unwrap_err();
    assert_eq!(err, Error::WorkerPanicked { seed: 3 });
    assert!(engine.metrics().worker_panics >= 1);

    // Disarm: the same pool (no respawn) answers correctly.
    failpoints::clear("engine::run_job");
    let scores = engine.query(3).unwrap();
    assert_eq!(*scores, bear.query(3).unwrap());
}

/// Fault class: worker panic, with degradation enabled. `serve` converts
/// the contained panic into a fallback answer tagged `WorkerPanicked`,
/// with its residual bound reported.
#[test]
fn worker_panic_degrades_to_fallback_answer() {
    let _serial = serial();
    let (g, bear) = build(14);
    let engine =
        QueryEngine::with_fallback(Arc::clone(&bear), small_config(2, 8), fallback_for(&g))
            .unwrap();

    failpoints::configure("engine::run_job", FailAction::Panic);
    let served = engine.serve(2, &QueryOptions::default()).unwrap();
    let info = served.degraded.expect("answer must be tagged degraded");
    assert_eq!(info.reason, DegradedReason::WorkerPanicked);
    assert!(info.residual >= 0.0 && info.error_bound >= info.residual);
    let exact = bear.query(2).unwrap();
    let l1: f64 = exact.iter().zip(served.scores.iter()).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 < 1e-6, "degraded answer far from exact: {l1}");
    let m = engine.metrics();
    assert!(m.worker_panics >= 1);
    assert!(m.degraded >= 1);
}

/// Fault class: slow worker past the deadline budget. Without a
/// fallback the caller gets the typed `Timeout` within (roughly) its
/// budget; with a fallback it gets a degraded answer tagged
/// `DeadlineExceeded`. Either way, no hang.
#[test]
fn deadline_exceeded_times_out_or_degrades() {
    let _serial = serial();
    let (g, bear) = build(14);
    failpoints::configure("engine::run_job", FailAction::Delay(Duration::from_millis(200)));
    let opts = QueryOptions { deadline: Some(Duration::from_millis(20)), cancel: None };

    // Without fallback: typed timeout, promptly.
    let engine = QueryEngine::new(Arc::clone(&bear), small_config(1, 4)).unwrap();
    let start = Instant::now();
    let err = engine.serve(5, &opts).unwrap_err();
    assert!(matches!(err, Error::Timeout { budget } if budget == Duration::from_millis(20)));
    assert!(start.elapsed() < Duration::from_secs(5), "timeout must not hang");
    assert!(engine.metrics().timeouts >= 1);
    drop(engine); // workers finish their injected sleep during shutdown

    // With fallback: degraded answer tagged with the deadline fault.
    let engine =
        QueryEngine::with_fallback(Arc::clone(&bear), small_config(1, 4), fallback_for(&g))
            .unwrap();
    let served = engine.serve(5, &opts).unwrap();
    let info = served.degraded.expect("must degrade on deadline");
    assert_eq!(info.reason, DegradedReason::DeadlineExceeded);
    assert!(engine.metrics().degraded >= 1);
}

/// Fault class: a job ages out while queued (slow dequeue path). The
/// worker sheds it at dequeue — replying the typed `Timeout` instead of
/// computing an answer nobody can use — and the shed is counted.
#[test]
fn expired_job_is_shed_at_dequeue() {
    let _serial = serial();
    let (_g, bear) = build(12);
    let engine = QueryEngine::new(Arc::clone(&bear), small_config(1, 4)).unwrap();
    failpoints::configure("queue::pop", FailAction::Delay(Duration::from_millis(60)));

    let opts = QueryOptions { deadline: Some(Duration::from_millis(10)), cancel: None };
    let err = engine.serve(1, &opts).unwrap_err();
    assert!(matches!(err, Error::Timeout { .. }), "expected typed timeout, got {err}");

    // The shed happens on whichever thread dequeues the expired job;
    // give the pool a moment to get there before checking the counter.
    let deadline = Instant::now() + Duration::from_secs(5);
    while engine.metrics().shed_jobs == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(engine.metrics().shed_jobs >= 1, "expired job must be shed at dequeue");
}

/// Satellite regression: a query whose deadline is already expired (or
/// zero) at admission must fail fast with the typed `Timeout` *before*
/// being enqueued — even when the queue is full. Before the fix it was
/// enqueued (occupying bounded capacity until the dequeue-side shed) or,
/// at queue-full, misreported as `QueueFull`.
#[test]
fn expired_deadline_fails_fast_before_enqueue_even_at_queue_full() {
    let _serial = serial();
    let (_g, bear) = build(12);
    let engine = Arc::new(QueryEngine::new(Arc::clone(&bear), small_config(1, 1)).unwrap());
    // Make the single worker dawdle before computing, so a second job
    // sits in the capacity-1 queue and fills it. The fillers carry a
    // generous (not expired) deadline, which also keeps them off the
    // caller-assist path — with a deadline set, submitters never compute
    // inline, so the queue fills deterministically.
    failpoints::configure("engine::run_job", FailAction::Delay(Duration::from_millis(400)));
    let generous = QueryOptions { deadline: Some(Duration::from_secs(30)), cancel: None };

    let f1 = {
        let (engine, opts) = (Arc::clone(&engine), generous.clone());
        std::thread::spawn(move || engine.serve(1, &opts).map(|_| ()))
    };
    // The worker pops f1's job effectively instantly, then naps in the
    // injected delay; give it a moment, then fill the queue's only slot.
    std::thread::sleep(Duration::from_millis(100));
    let f2 = {
        let (engine, opts) = (Arc::clone(&engine), generous.clone());
        std::thread::spawn(move || engine.serve(2, &opts).map(|_| ()))
    };
    let wait_deadline = Instant::now() + Duration::from_secs(5);
    while engine.queue_depth() < 1 && Instant::now() < wait_deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(engine.queue_depth(), 1, "queue must be full for the regression");

    // Expired-deadline admission while the queue is full: the typed
    // Timeout (not QueueFull), counted, and nothing shed at dequeue —
    // the dead job never reached the queue, whose single slot still
    // belongs to the viable filler.
    let shed_before = engine.metrics().shed_jobs;
    let opts = QueryOptions { deadline: Some(Duration::ZERO), cancel: None };
    let err = engine.serve(3, &opts).unwrap_err();
    assert!(matches!(err, Error::Timeout { .. }), "want fail-fast Timeout, got {err}");
    assert!(engine.metrics().timeouts >= 1);
    assert_eq!(engine.metrics().shed_jobs, shed_before, "job must not be enqueued then shed");
    assert_eq!(engine.metrics().queue_rejections, 0, "fail-fast must not misreport QueueFull");

    f1.join().unwrap().unwrap();
    f2.join().unwrap().unwrap();
}

/// Fault class: admission-path failure (e.g. an I/O-backed queue
/// erroring). The injected error propagates typed from `query`, and with
/// `DelayThenFail` the slow-then-failing path still never hangs.
#[test]
fn admission_failure_propagates_typed() {
    let _serial = serial();
    let (_g, bear) = build(10);
    let engine = QueryEngine::new(Arc::clone(&bear), small_config(1, 4)).unwrap();

    failpoints::configure("queue::push", FailAction::Fail);
    let err = engine.query(2).unwrap_err();
    assert!(
        matches!(&err, Error::InvalidStructure(msg) if msg.contains("failpoint 'queue::push'")),
        "unexpected error: {err}"
    );

    failpoints::configure("queue::push", FailAction::DelayThenFail(Duration::from_millis(5)));
    let start = Instant::now();
    assert!(engine.query(2).is_err());
    assert!(start.elapsed() >= Duration::from_millis(5));
    failpoints::clear("queue::push");
    assert!(engine.query(2).is_ok(), "pool healthy after disarming");
}

/// Cancellation: a caller that abandons a batch stops its queued jobs —
/// they are shed at dequeue instead of consuming the pool.
#[test]
fn cancelled_batch_stops_consuming_workers() {
    let _serial = serial();
    let (_g, bear) = build(12);
    let engine = QueryEngine::new(Arc::clone(&bear), small_config(1, 8)).unwrap();
    failpoints::configure("engine::run_job", FailAction::Delay(Duration::from_millis(50)));

    let token = bear_core::CancelToken::new();
    token.cancel();
    let opts = QueryOptions { deadline: None, cancel: Some(token) };
    let err = engine.serve_batch(&[1, 2, 3], &opts).unwrap_err();
    assert_eq!(err, Error::Cancelled);
    assert!(engine.metrics().shed_jobs >= 1);
}
