//! L1 fixture: hot-path panic sites (true positives) and allowed forms
//! (true negatives). Never compiled — parsed by the lint tests only.

/// True positive: `.unwrap()` in a hot path.
pub fn tp_unwrap(v: Option<usize>) -> usize {
    v.unwrap()
}

/// True positive: `.expect(...)` in a hot path.
pub fn tp_expect(v: Option<usize>) -> usize {
    v.expect("present")
}

/// True positive: panicking macro.
pub fn tp_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}

/// True positive: slice-index expression.
pub fn tp_index(xs: &[f64], i: usize) -> f64 {
    xs[i]
}

/// True negative: checked access; `debug_assert!` compiles out of
/// release builds; `&[f64]` in the signature is a type, not an index.
pub fn tn_checked(xs: &[f64], i: usize) -> Option<f64> {
    debug_assert!(i < xs.len());
    xs.get(i).copied()
}

/// True negative: "xs[i].unwrap()" inside a string literal — and in
/// this comment: xs[i] — is blanked before the rules run.
pub fn tn_string() -> &'static str {
    "xs[i].unwrap()"
}

#[cfg(test)]
mod tests {
    /// True negative: test code may unwrap freely.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let xs = [1usize, 2, 3];
        assert_eq!(xs[0], Some(1).unwrap());
    }
}
