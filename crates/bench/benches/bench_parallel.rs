//! Criterion micro-benchmark: serial vs parallel preprocessing kernels
//! (SpGEMM and triangular-factor inversion over crossbeam threads).

use bear_core::rwr::{build_h, RwrConfig};
use bear_datasets::dataset_by_name;
use bear_sparse::ops::spgemm;
use bear_sparse::parallel::{par_invert_triangular, par_spgemm};
use bear_sparse::triangular::{invert_triangular, Triangle};
use bear_sparse::SparseLu;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_parallel(c: &mut Criterion) {
    let g = dataset_by_name("small_citation").unwrap().load();
    let h = build_h(&g, &RwrConfig::default()).unwrap();
    let lu = SparseLu::factor(&h.to_csc()).unwrap();

    let mut group = c.benchmark_group("parallel_spgemm");
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| std::hint::black_box(spgemm(&h, &h).unwrap())));
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| std::hint::black_box(par_spgemm(&h, &h, t).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("parallel_invert");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(invert_triangular(lu.l(), Triangle::Lower, true).unwrap()))
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                std::hint::black_box(
                    par_invert_triangular(lu.l(), Triangle::Lower, true, t).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
