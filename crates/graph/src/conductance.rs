//! Conductance and sweep cuts — the machinery behind RWR-based local
//! community detection (Andersen, Chung & Lang, FOCS 2006), the flagship
//! application in the BEAR paper's introduction.

use crate::graph::Graph;
use bear_sparse::CsrMatrix;

/// Conductance `φ(S) = cut(S, V∖S) / min(vol(S), vol(V∖S))` of a node
/// set over a symmetric pattern. Returns 1.0 for the degenerate empty /
/// full sets.
pub fn conductance(sym: &CsrMatrix, in_set: &[bool]) -> f64 {
    debug_assert_eq!(sym.nrows(), in_set.len());
    let mut cut = 0.0f64;
    let mut vol_in = 0.0f64;
    let mut vol_out = 0.0f64;
    for (u, v, _) in sym.iter() {
        if in_set[u] {
            vol_in += 1.0;
            if !in_set[v] {
                cut += 1.0;
            }
        } else {
            vol_out += 1.0;
        }
    }
    if vol_in == 0.0 || vol_out == 0.0 {
        return 1.0;
    }
    cut / vol_in.min(vol_out)
}

/// The result of a sweep cut.
#[derive(Debug, Clone)]
pub struct SweepCut {
    /// The community found (original node ids, in sweep order).
    pub community: Vec<usize>,
    /// Its conductance.
    pub conductance: f64,
}

/// Sweeps prefixes of nodes ordered by decreasing degree-normalized
/// score, returning the prefix with the lowest conductance. `max_size`
/// caps the sweep length (communities larger than that are rarely
/// "local"). Nodes with score 0 are never considered.
///
/// An incremental cut/volume update makes the whole sweep O(vol(sweep))
/// instead of O(sweep · m).
pub fn sweep_cut(g: &Graph, scores: &[f64], max_size: usize) -> SweepCut {
    let n = g.num_nodes();
    debug_assert_eq!(scores.len(), n);
    let sym = g.symmetrized_pattern();
    let degree: Vec<usize> = (0..n).map(|u| sym.row_nnz(u)).collect();
    let total_vol: f64 = degree.iter().sum::<usize>() as f64;

    let mut order: Vec<usize> = (0..n).filter(|&u| scores[u] > 0.0).collect();
    order.sort_by(|&a, &b| {
        let sa = scores[a] / degree[a].max(1) as f64;
        let sb = scores[b] / degree[b].max(1) as f64;
        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    order.truncate(max_size.min(order.len()));

    let mut in_set = vec![false; n];
    let mut cut = 0.0f64;
    let mut vol = 0.0f64;
    let mut best_phi = f64::INFINITY;
    let mut best_len = 0usize;
    for (i, &u) in order.iter().enumerate() {
        // Adding u: every edge to an outside node adds to the cut; every
        // edge to an inside node removes one (it was counted from the
        // other side).
        let (nbrs, _) = sym.row(u);
        for &v in nbrs {
            if in_set[v] {
                cut -= 1.0;
            } else {
                cut += 1.0;
            }
        }
        vol += degree[u] as f64;
        in_set[u] = true;
        let denom = vol.min(total_vol - vol);
        if denom <= 0.0 {
            continue;
        }
        let phi = cut / denom;
        // Require at least two nodes so a singleton leaf doesn't win.
        if i >= 1 && phi < best_phi {
            best_phi = phi;
            best_len = i + 1;
        }
    }
    if best_len == 0 {
        // Fall back to whatever prefix exists.
        best_len = order.len().min(1);
        best_phi = if best_len == 0 { 1.0 } else { conductance(&sym, &in_set) };
    }
    SweepCut { community: order[..best_len].to_vec(), conductance: best_phi }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by one bridge.
    fn two_triangles() -> Graph {
        let edges = vec![
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (0, 2),
            (2, 0),
            (3, 4),
            (4, 3),
            (4, 5),
            (5, 4),
            (3, 5),
            (5, 3),
            (2, 3),
            (3, 2),
        ];
        Graph::from_edges(6, &edges).unwrap()
    }

    #[test]
    fn conductance_of_one_triangle() {
        let g = two_triangles();
        let sym = g.symmetrized_pattern();
        let in_set = [true, true, true, false, false, false];
        // cut = 1 edge (2-3); vol(S) = 7 (6 intra-halves + 1 bridge end).
        let phi = conductance(&sym, &in_set);
        assert!((phi - 1.0 / 7.0).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn degenerate_sets_have_conductance_one() {
        let g = two_triangles();
        let sym = g.symmetrized_pattern();
        assert_eq!(conductance(&sym, &[false; 6]), 1.0);
        assert_eq!(conductance(&sym, &[true; 6]), 1.0);
    }

    #[test]
    fn sweep_cut_recovers_a_triangle() {
        let g = two_triangles();
        // Scores concentrated on the first triangle.
        let scores = [0.4, 0.3, 0.25, 0.04, 0.005, 0.005];
        let cut = sweep_cut(&g, &scores, 6);
        let mut community = cut.community.clone();
        community.sort_unstable();
        assert_eq!(community, vec![0, 1, 2]);
        assert!((cut.conductance - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_sweep_matches_recomputed_conductance() {
        let g = two_triangles();
        let scores = [0.3, 0.3, 0.2, 0.1, 0.05, 0.05];
        let cut = sweep_cut(&g, &scores, 6);
        let sym = g.symmetrized_pattern();
        let mut in_set = vec![false; 6];
        for &u in &cut.community {
            in_set[u] = true;
        }
        assert!((cut.conductance - conductance(&sym, &in_set)).abs() < 1e-12);
    }

    #[test]
    fn zero_scores_are_ignored() {
        let g = two_triangles();
        let scores = [1.0, 0.5, 0.0, 0.0, 0.0, 0.0];
        let cut = sweep_cut(&g, &scores, 6);
        assert!(cut.community.len() <= 2);
        assert!(!cut.community.contains(&5));
    }
}
