//! Durability failure matrix: exercises the read-side corruption
//! contract over a grid of damage patterns and records the outcome of
//! every cell — the artifact CI uploads so a regression shows exactly
//! which damage class started slipping through.
//!
//! For a freshly preprocessed index, each cell applies one corruption
//! (truncation to a fraction of the file, a single bit flip at a
//! position, header garbage, trailing junk) and asserts the durability
//! contract: `Bear::load` must either return the typed
//! `CorruptIndex` error or — only when the damage is a full-length
//! no-op — answer bit-identically to the undamaged index. Any panic,
//! untyped error, or silently absorbed corruption fails the run.
//!
//! ```text
//! cargo run --release -p bear-bench --bin durability_matrix -- \
//!     [--dataset small_routing] [--json results/DURABILITY_matrix.json]
//! ```

use bear_bench::harness::{ExperimentResult, ResultRow};
use bear_core::{persist, Bear, BearConfig};
use bear_sparse::Error;
use std::path::PathBuf;

struct Cell {
    /// Damage class label (JSON `method` column).
    class: &'static str,
    /// Cell parameter (offset/fraction description).
    param: String,
    /// The damaged image.
    bytes: Vec<u8>,
}

fn cells(full: &[u8]) -> Vec<Cell> {
    let len = full.len();
    let mut cells = Vec::new();
    // Torn writes: prefixes at coarse fractions plus the exact frame
    // boundaries most likely to be "almost valid".
    for (tag, keep) in [
        ("empty", 0),
        ("magic_only", 8),
        ("1/16", len / 16),
        ("1/4", len / 4),
        ("1/2", len / 2),
        ("3/4", 3 * len / 4),
        ("all_but_trailer", len.saturating_sub(20)),
        ("all_but_one", len - 1),
    ] {
        cells.push(Cell {
            class: "truncate",
            param: format!("{tag} ({keep} bytes)"),
            bytes: full[..keep].to_vec(),
        });
    }
    // Bit rot: single flips spread across the span, including the
    // header, the first payload, and the trailer checksum itself.
    for byte in [0, 7, 9, 33, len / 3, len / 2, len - 21, len - 9, len - 1] {
        let mut bytes = full.to_vec();
        bytes[byte] ^= 1 << (byte % 8);
        cells.push(Cell { class: "bit_flip", param: format!("byte {byte}"), bytes });
    }
    // Wrong or garbage header.
    let mut wrong_magic = full.to_vec();
    wrong_magic[..8].copy_from_slice(b"NOTBEAR!");
    cells.push(Cell { class: "header", param: "wrong magic".into(), bytes: wrong_magic });
    cells.push(Cell { class: "header", param: "garbage".into(), bytes: vec![0x5A; 256] });
    // Appended junk: the trailer records the true length, so trailing
    // bytes are torn-write debris and must be rejected.
    let mut padded = full.to_vec();
    padded.extend_from_slice(&[0u8; 64]);
    cells.push(Cell { class: "append", param: "64 junk bytes".into(), bytes: padded });
    cells
}

fn main() {
    let args = bear_bench::cli::Args::from_env();
    let dataset = args.get("--dataset").unwrap_or("small_routing").to_string();
    let json_path = args.get("--json").unwrap_or("results/DURABILITY_matrix.json").to_string();

    let spec = bear_datasets::dataset_by_name(&dataset)
        .unwrap_or_else(|| panic!("unknown dataset '{dataset}'"));
    let g = spec.load();
    let bear = Bear::new(&g, &BearConfig::exact(0.05)).expect("preprocess");
    let path: PathBuf = std::env::temp_dir().join("bear_durability_matrix.idx");
    bear.save(&path).expect("save");
    let full = std::fs::read(&path).expect("read image");
    let reference = bear.query(0).expect("reference query");

    // The pristine image must verify end to end before any cell runs.
    let report = persist::verify_index(&path).expect("fresh index must verify");
    assert_eq!(report.version, 2);

    let mut out = ExperimentResult::new(
        "durability_matrix",
        &format!(
            "read-side corruption grid over a {}-byte v2 index of '{dataset}': every cell \
             must fail with the typed CorruptIndex error (never panic, never load damaged \
             data); verify_index must agree with load on every cell",
            full.len()
        ),
    );

    let mut failures = 0u32;
    for cell in cells(&full) {
        std::fs::write(&path, &cell.bytes).expect("write cell");
        let load = std::panic::catch_unwind(|| Bear::load(&path));
        let verify = persist::verify_index(&path);
        let outcome = match &load {
            Err(_) => {
                failures += 1;
                "PANIC".to_string()
            }
            Ok(Err(Error::CorruptIndex { section, .. })) => format!("typed ({section})"),
            Ok(Err(other)) => {
                failures += 1;
                format!("UNTYPED: {other}")
            }
            Ok(Ok(loaded)) => {
                // Only acceptable if the damage was byte-preserving,
                // which no cell in this grid is.
                failures += 1;
                let identical = loaded.query(0).map(|s| s == reference).unwrap_or(false);
                format!("ABSORBED (bit_identical={identical})")
            }
        };
        // load and verify must agree: both reject or both accept.
        let verdicts_agree = matches!(&load, Ok(r) if r.is_ok() == verify.is_ok());
        if !verdicts_agree {
            failures += 1;
        }
        let mut row = ResultRow::new(&dataset, cell.class);
        row.param = Some(format!("{}: load={outcome} verify_agrees={verdicts_agree}", cell.param));
        row.memory_bytes = Some(cell.bytes.len());
        if outcome.starts_with("PANIC")
            || outcome.starts_with("UNTYPED")
            || outcome.starts_with("ABSORBED")
            || !verdicts_agree
        {
            row.failed = Some(outcome.clone());
        }
        out.rows.push(row);
    }

    // Control: restore the pristine image and prove it still answers.
    std::fs::write(&path, &full).expect("restore");
    let restored = Bear::load(&path).expect("restored image must load");
    assert_eq!(restored.query(0).expect("restored query"), reference, "control answer drifted");
    std::fs::remove_file(&path).ok();

    out.print_table();
    out.write_json(&json_path).expect("write json");
    println!("wrote {json_path} ({} cells)", out.rows.len());
    assert_eq!(failures, 0, "{failures} durability cell(s) violated the corruption contract");
    println!("durability matrix clean: every damaged image failed typed");
}
