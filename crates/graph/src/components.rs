//! Connected components over full graphs and node subsets.
//!
//! SlashBurn repeatedly removes hubs and asks for the connected components
//! of the surviving subgraph, so the core routine here works on an
//! `active` mask instead of materializing subgraphs.

use bear_sparse::CsrMatrix;

/// Connected components of the undirected pattern `adj`, restricted to the
/// nodes where `active` is true. Returns one `Vec` of node ids per
/// component, each sorted ascending; components are ordered by their
/// smallest member.
///
/// `adj` must be a symmetric pattern (as produced by
/// [`crate::Graph::symmetrized_pattern`]); the traversal only follows
/// edges whose both endpoints are active.
pub fn components_in_subset(adj: &CsrMatrix, active: &[bool]) -> Vec<Vec<usize>> {
    let n = adj.nrows();
    debug_assert_eq!(active.len(), n);
    let mut visited = vec![false; n];
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut queue: Vec<usize> = Vec::new();
    for start in 0..n {
        if !active[start] || visited[start] {
            continue;
        }
        let mut comp = Vec::new();
        visited[start] = true;
        queue.push(start);
        while let Some(u) = queue.pop() {
            comp.push(u);
            let (nbrs, _) = adj.row(u);
            for &v in nbrs {
                if active[v] && !visited[v] {
                    visited[v] = true;
                    queue.push(v);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Connected components of the whole undirected pattern.
pub fn connected_components(adj: &CsrMatrix) -> Vec<Vec<usize>> {
    let active = vec![true; adj.nrows()];
    components_in_subset(adj, &active)
}

/// Index (within the returned component list) of the largest component;
/// ties broken by smallest member. Returns `None` for an empty list.
pub fn largest_component(components: &[Vec<usize>]) -> Option<usize> {
    components
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.len().cmp(&b.len()).then(ib.cmp(ia)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn pattern(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
        Graph::from_edges(n, edges).unwrap().symmetrized_pattern()
    }

    #[test]
    fn single_component() {
        let p = pattern(3, &[(0, 1), (1, 2)]);
        let comps = connected_components(&p);
        assert_eq!(comps, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let p = pattern(4, &[(0, 1)]);
        let comps = connected_components(&p);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2]);
        assert_eq!(comps[2], vec![3]);
    }

    #[test]
    fn directed_edges_treated_as_undirected() {
        let p = pattern(3, &[(2, 0)]);
        let comps = connected_components(&p);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 2]);
    }

    #[test]
    fn subset_restriction_cuts_paths() {
        // Path 0-1-2-3; deactivating 1 splits {0} from {2,3}.
        let p = pattern(4, &[(0, 1), (1, 2), (2, 3)]);
        let active = vec![true, false, true, true];
        let comps = components_in_subset(&p, &active);
        assert_eq!(comps, vec![vec![0], vec![2, 3]]);
    }

    #[test]
    fn largest_component_found() {
        let p = pattern(5, &[(0, 1), (2, 3), (3, 4)]);
        let comps = connected_components(&p);
        let idx = largest_component(&comps).unwrap();
        assert_eq!(comps[idx], vec![2, 3, 4]);
        assert!(largest_component(&[]).is_none());
    }

    #[test]
    fn all_inactive_gives_no_components() {
        let p = pattern(3, &[(0, 1)]);
        let comps = components_in_subset(&p, &[false, false, false]);
        assert!(comps.is_empty());
    }
}
