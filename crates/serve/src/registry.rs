//! Multi-tenant registry of named graphs, each behind an atomically
//! swappable handle so a new index version can be published with zero
//! query downtime.
//!
//! # Hot-swap protocol
//!
//! Each graph name maps to a private slot holding `RwLock<Arc<Tenant>>`.
//! The lock discipline keeps both locks *brief and non-nested around
//! queries*:
//!
//! 1. A request thread takes the registry map's read lock just long
//!    enough to clone the slot `Arc`, then the slot's read lock just
//!    long enough to clone the tenant `Arc` — and answers the query
//!    with **no lock held**.
//! 2. A publisher (background loader, `/admin/load`) builds the new
//!    [`QueryEngine`] entirely outside any lock — preprocessing or
//!    `persist::load` can take seconds while queries keep flowing —
//!    then takes the slot's write lock only for the pointer swap.
//! 3. In-flight queries keep the old engine alive through their cloned
//!    `Arc`; the old worker pool shuts down (via `QueryEngine::drop`)
//!    when the last such clone is dropped.
//!
//! Versions are per-slot and strictly increasing, so a client that
//! tags responses with `X-Graph-Version` observes a monotone sequence
//! for any single connection.

use bear_core::QueryEngine;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// One published index version of a named graph.
pub struct Tenant {
    /// The serving engine for this version.
    pub engine: Arc<QueryEngine>,
    /// Version number, starting at 1 and incremented on every publish.
    pub version: u64,
}

/// The swappable handle for one graph name.
struct Slot {
    current: RwLock<Arc<Tenant>>,
}

/// Registry of named graphs. Cheap to share (`Arc<Registry>`); all
/// methods take `&self`.
#[derive(Default)]
pub struct Registry {
    graphs: RwLock<HashMap<String, Arc<Slot>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Publishes `engine` as the newest version of `name`, creating the
    /// graph on first publish. Returns the new version number. Queries
    /// already holding the previous version's `Arc` finish on it.
    pub fn publish(&self, name: &str, engine: Arc<QueryEngine>) -> u64 {
        let slot = {
            let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
            match graphs.get(name) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot = Arc::new(Slot {
                        current: RwLock::new(Arc::new(Tenant {
                            engine: Arc::clone(&engine),
                            version: 1,
                        })),
                    });
                    graphs.insert(name.to_string(), Arc::clone(&slot));
                    return 1;
                }
            }
        };
        let mut current = slot.current.write().unwrap_or_else(|e| e.into_inner());
        let version = current.version + 1;
        *current = Arc::new(Tenant { engine, version });
        version
    }

    /// The current version of `name`, if registered. The returned
    /// `Arc` pins that version for the caller's whole request even if a
    /// publish lands concurrently.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        let slot = {
            let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
            Arc::clone(graphs.get(name)?)
        };
        let current = slot.current.read().unwrap_or_else(|e| e.into_inner());
        Some(Arc::clone(&current))
    }

    /// Registered graph names, sorted.
    pub fn names(&self) -> Vec<String> {
        let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        let mut names: Vec<String> = graphs.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no graphs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("graphs", &self.names()).finish()
    }
}
