//! The ratchet baseline: a committed TOML file of tolerated findings.
//!
//! Semantics (the ratchet only shrinks):
//!
//! * a current finding whose `(rule, file, fingerprint)` count exceeds
//!   the baselined count is **new** — the lint fails;
//! * a baseline entry whose count exceeds the current count is **stale**
//!   (debt was paid down) — the lint fails until `--update-baseline`
//!   removes it, so the recorded debt can never silently regrow;
//! * `--update-baseline` rewrites the file from the current findings but
//!   refuses to *add* entries (new findings must be fixed or
//!   `lint:allow`ed, never re-baselined). Bootstrapping a missing
//!   baseline file is the one exception.
//!
//! The file format is a TOML subset written and parsed here by hand (the
//! build environment has no registry access): a `version` key and
//! `[[finding]]` tables with string and integer values.

use super::report::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Identity key of a baseline entry: `(rule, file, fingerprint)`.
pub type Key = (String, String, String);

/// Parsed baseline: tolerated finding counts by key, plus the category
/// recorded for readability.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// Tolerated count per finding identity.
    pub entries: BTreeMap<Key, BaselineEntry>,
}

/// One tolerated finding group.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Number of identical findings tolerated.
    pub count: usize,
    /// Category slug, stored for human readers of the file.
    pub category: String,
}

/// Result of checking current findings against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Findings beyond the baselined count, i.e. violations. Each entry
    /// is a full finding (all findings of an over-budget key are listed).
    pub new: Vec<Finding>,
    /// Baseline keys whose debt was paid down (current < baselined).
    pub stale: Vec<Key>,
    /// Per-finding baselined status, in input order.
    pub statuses: Vec<(Finding, bool)>,
}

impl Baseline {
    /// Builds a baseline from a set of findings (the `--update-baseline`
    /// path).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<Key, BaselineEntry> = BTreeMap::new();
        for f in findings {
            entries
                .entry(f.key())
                .and_modify(|e| e.count += 1)
                .or_insert_with(|| BaselineEntry { count: 1, category: f.category.clone() });
        }
        Baseline { entries }
    }

    /// Total tolerated finding count (sum over entries).
    pub fn total(&self) -> usize {
        self.entries.values().map(|e| e.count).sum()
    }

    /// Checks `findings` against this baseline.
    pub fn compare(&self, findings: &[Finding]) -> Comparison {
        let current = Baseline::from_findings(findings);
        let mut cmp = Comparison::default();
        // Per-key budget left while walking findings in order: the first
        // `baselined_count` findings of a key are tolerated, the rest are
        // new. (Which ones are "new" within a key is arbitrary; counts
        // are what the ratchet tracks.)
        let mut budget: BTreeMap<Key, usize> =
            self.entries.iter().map(|(k, e)| (k.clone(), e.count)).collect();
        for f in findings {
            let left = budget.get_mut(&f.key());
            match left {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    cmp.statuses.push((f.clone(), true));
                }
                _ => {
                    cmp.new.push(f.clone());
                    cmp.statuses.push((f.clone(), false));
                }
            }
        }
        for (key, entry) in &self.entries {
            let cur = current.entries.get(key).map_or(0, |e| e.count);
            if cur < entry.count {
                cmp.stale.push(key.clone());
            }
        }
        cmp
    }

    /// Parses the baseline file format. Returns `Ok(None)` when the file
    /// does not exist (bootstrap case).
    pub fn load(path: &Path) -> io::Result<Option<Baseline>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        parse(&text).map(Some).map_err(|msg| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {msg}", path.display()))
        })
    }

    /// Serializes and writes the baseline file.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// The serialized file content.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# bear-lint ratchet baseline: pre-existing findings tolerated by\n\
             # `cargo xtask analyze lint`. The ratchet only shrinks — new findings\n\
             # must be fixed or `lint:allow`ed; paid-down debt is removed with\n\
             #   cargo xtask analyze lint --update-baseline\n\
             # (see DESIGN.md §15).\n\
             version = 1\n",
        );
        for ((rule, file, fingerprint), entry) in &self.entries {
            let _ = write!(
                out,
                "\n[[finding]]\nrule = {}\ncategory = {}\nfile = {}\nfingerprint = {}\ncount = {}\n",
                toml_str(rule),
                toml_str(&entry.category),
                toml_str(file),
                toml_str(fingerprint),
                entry.count,
            );
        }
        out
    }
}

/// Parses the baseline TOML subset.
fn parse(text: &str) -> Result<Baseline, String> {
    let mut entries = BTreeMap::new();
    // Pending entry fields, committed when the next table (or EOF) starts.
    let mut pending: Option<BTreeMap<String, String>> = None;
    let mut commit = |pending: &mut Option<BTreeMap<String, String>>| -> Result<(), String> {
        if let Some(fields) = pending.take() {
            let get = |k: &str| {
                fields.get(k).cloned().ok_or_else(|| format!("[[finding]] missing key `{k}`"))
            };
            let count: usize = get("count")?
                .parse()
                .map_err(|_| "count must be a non-negative integer".to_string())?;
            let key = (get("rule")?, get("file")?, get("fingerprint")?);
            let category = fields.get("category").cloned().unwrap_or_default();
            entries.insert(key, BaselineEntry { count, category });
        }
        Ok(())
    };
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[finding]]" {
            commit(&mut pending)?;
            pending = Some(BTreeMap::new());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", idx + 1));
        };
        let (key, value) = (key.trim(), value.trim());
        let value = if let Some(stripped) = value.strip_prefix('"') {
            toml_unescape(
                stripped
                    .strip_suffix('"')
                    .ok_or_else(|| format!("line {}: unterminated string", idx + 1))?,
            )?
        } else {
            value.to_string()
        };
        match &mut pending {
            Some(fields) => {
                fields.insert(key.to_string(), value);
            }
            None => {
                if key == "version" && value != "1" {
                    return Err(format!("unsupported baseline version `{value}`"));
                }
            }
        }
    }
    commit(&mut pending)?;
    Ok(Baseline { entries })
}

/// Escapes a string as a TOML basic string.
fn toml_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Reverses [`toml_str`] escaping.
fn toml_unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad \\u escape `{hex}`"))?);
            }
            other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}
