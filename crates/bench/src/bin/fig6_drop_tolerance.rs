//! Reproduces **Figure 6**: the effect of the drop tolerance
//! `ξ ∈ {0, n⁻², n⁻¹, n⁻¹ᐟ², n⁻¹ᐟ⁴}` on BEAR-Approx's space, query time,
//! and accuracy (cosine similarity and L2 error vs BEAR-Exact).
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig6_drop_tolerance \
//!     [--datasets a,b] [--seeds N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::{accuracy_of, load_dataset, reference_scores, xi_grid};
use bear_bench::harness::{measure, ExperimentResult, ResultRow};
use bear_bench::methods::{build_method, MethodSpec};
use bear_bench::params::params_for;
use bear_datasets::all_datasets;
use bear_sparse::mem::MemBudget;

fn main() {
    let args = Args::from_env();
    let default_names: Vec<String> = all_datasets().iter().map(|d| d.name.to_string()).collect();
    let defaults: Vec<&str> = default_names.iter().map(|s| s.as_str()).collect();
    let opts = CommonOpts::from_args(&args, &defaults);

    let mut out = ExperimentResult::new(
        "figure_6",
        "drop tolerance vs space, query time, and accuracy (BEAR-Approx)",
    );
    for dataset in &opts.datasets {
        let g = load_dataset(dataset);
        let params = params_for(dataset);
        let (seeds, reference) = reference_scores(&g, dataset, opts.num_seeds);
        for (label, xi) in xi_grid(g.num_nodes()) {
            let mut row = ResultRow::new(dataset, "BEAR-Approx");
            row.param = Some(label);
            let (built, pre_s) = measure(|| {
                build_method(&MethodSpec::Bear { xi }, &g, &params, &MemBudget::unlimited())
            });
            let solver = built.expect("BEAR-Approx preprocessing");
            let (query_s, cos, l2) = accuracy_of(solver.as_ref(), &seeds, &reference);
            row.preprocess_s = Some(pre_s);
            row.query_s = Some(query_s);
            row.memory_bytes = Some(solver.memory_bytes());
            row.cosine = Some(cos);
            row.l2 = Some(l2);
            out.rows.push(row);
        }
    }
    out.print_table();
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
