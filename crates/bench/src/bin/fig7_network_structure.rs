//! Reproduces **Figure 7** (Section 4.4): the effect of network structure
//! on BEAR-Exact, using the R-MAT family with `p_ul ∈ {0.5 … 0.9}`.
//! Expected shape: preprocessing time, query time, and space all fall as
//! `p_ul` grows (stronger hub-and-spoke structure ⇒ smaller `n₂` and
//! `Σ n₁ᵢ²`).
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig7_network_structure \
//!     [--seeds N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::load_dataset;
use bear_bench::harness::{mean_query_time, measure, ExperimentResult, ResultRow};
use bear_bench::methods::{build_method, MethodSpec};
use bear_bench::params::params_for;
use bear_datasets::rmat_family;
use bear_sparse::mem::MemBudget;

fn main() {
    let args = Args::from_env();
    let default_names: Vec<String> = rmat_family().iter().map(|d| d.name.to_string()).collect();
    let defaults: Vec<&str> = default_names.iter().map(|s| s.as_str()).collect();
    let opts = CommonOpts::from_args(&args, &defaults);

    let mut out =
        ExperimentResult::new("figure_7", "BEAR-Exact vs network structure (R-MAT p_ul sweep)");
    for dataset in &opts.datasets {
        let g = load_dataset(dataset);
        let params = params_for(dataset);
        let (built, pre_s) = measure(|| {
            build_method(&MethodSpec::Bear { xi: 0.0 }, &g, &params, &MemBudget::unlimited())
        });
        let solver = built.expect("BEAR-Exact preprocessing");
        let mut row = ResultRow::new(dataset, "BEAR-Exact");
        row.preprocess_s = Some(pre_s);
        row.query_s = Some(mean_query_time(solver.as_ref(), opts.num_seeds));
        row.memory_bytes = Some(solver.memory_bytes());
        out.rows.push(row);
    }
    out.print_table();
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
