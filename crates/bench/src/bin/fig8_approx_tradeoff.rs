//! Reproduces **Figure 8**: the trade-off between accuracy (cosine
//! similarity / L2 error), query time, and space for the approximate
//! methods — BEAR-Approx, B_LIN, and NB_LIN over the drop-tolerance
//! grid, and RPPR / BRPPR over the expansion-threshold grid — on the
//! paper's two featured datasets (Routing and Web-Stan stand-ins).
//!
//! `--print-params` additionally prints the per-dataset parameter table
//! (the reproduction's Table 5). For the all-dataset panels of
//! Figure 13, see the `fig13_all_datasets` binary.
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig8_approx_tradeoff \
//!     [--datasets routing_like,web_stan_like] [--seeds N] [--json out.json] [--print-params]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::approx_tradeoff_suite;
use bear_bench::params::params_for;

fn main() {
    let args = Args::from_env();
    let opts = CommonOpts::from_args(&args, &["routing_like", "web_stan_like"]);

    if args.has("print-params") {
        println!(
            "{:<16} {:>8} {:>8} {:>9} {:>10} {:>10}   (Table 5 analogue)",
            "dataset", "blin #p", "blin t", "nblin t", "rppr eps", "brppr eps"
        );
        for d in &opts.datasets {
            let p = params_for(d);
            println!(
                "{:<16} {:>8} {:>8} {:>9} {:>10.0e} {:>10.0e}",
                d,
                p.blin_partitions,
                p.blin_rank,
                p.nblin_rank,
                p.rppr_threshold,
                p.brppr_threshold
            );
        }
        println!();
    }

    let out = approx_tradeoff_suite(
        "figure_8",
        "accuracy / time / space trade-off of approximate methods",
        &opts.datasets,
        opts.num_seeds,
        opts.budget_bytes,
    );
    out.print_table();
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
