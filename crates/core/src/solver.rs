//! The common interface every RWR method (BEAR and all baselines)
//! implements, so the experiment harness can treat them uniformly.

use bear_sparse::Result;

/// An RWR solver that has already been preprocessed for a fixed graph and
/// restart probability, and can now answer queries.
pub trait RwrSolver {
    /// Human-readable method name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// RWR scores of all nodes w.r.t. a single seed node.
    fn query(&self, seed: usize) -> Result<Vec<f64>> {
        let mut q = vec![0.0; self.num_nodes()];
        if seed >= q.len() {
            return Err(bear_sparse::Error::IndexOutOfBounds { index: seed, bound: q.len() });
        }
        q[seed] = 1.0;
        self.query_distribution(&q)
    }

    /// Personalized PageRank: scores for an arbitrary non-negative
    /// preference distribution `q` (Section 3.4).
    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>>;

    /// Number of nodes of the preprocessed graph.
    fn num_nodes(&self) -> usize;

    /// Bytes of precomputed data this solver must keep in memory to answer
    /// queries (the paper's "space for preprocessed data"). Methods with
    /// no preprocessing report 0.
    fn memory_bytes(&self) -> usize;

    /// Number of stored entries across all precomputed matrices (the
    /// paper's `#nz` in Figure 2). Dense matrices count every cell.
    /// Methods with no preprocessing report 0.
    fn precomputed_nnz(&self) -> usize {
        0
    }
}
