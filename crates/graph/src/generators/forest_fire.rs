//! Forest Fire graph generator (Leskovec, Kleinberg & Faloutsos, KDD
//! 2005): produces graphs with heavy-tailed degrees, communities, and
//! densification — closer to real web/social graphs than R-MAT's
//! self-similar noise, and a useful third structural regime for
//! exercising SlashBurn.

use crate::graph::Graph;
use rand::Rng;
use std::collections::HashSet;

/// Configuration for the Forest Fire model.
#[derive(Debug, Clone, Copy)]
pub struct ForestFireConfig {
    /// Number of nodes to grow.
    pub n: usize,
    /// Forward burning probability `p` (the paper's sweet spot is
    /// around 0.35–0.40; higher densifies aggressively).
    pub forward_p: f64,
    /// Backward burning ratio: the probability used when following
    /// in-edges (usually below `forward_p`).
    pub backward_p: f64,
    /// Cap on nodes burned per arrival (keeps worst-case arrivals from
    /// burning the whole graph).
    pub max_burn: usize,
}

impl Default for ForestFireConfig {
    fn default() -> Self {
        ForestFireConfig { n: 1000, forward_p: 0.35, backward_p: 0.2, max_burn: 100 }
    }
}

/// Grows a Forest Fire graph: each new node picks a random ambassador,
/// links to it, then recursively "burns" a geometric number of the
/// ambassador's out- and in-neighbors, linking to every burned node.
pub fn forest_fire<R: Rng>(config: &ForestFireConfig, rng: &mut R) -> Graph {
    let n = config.n;
    if n == 0 {
        return Graph::from_edges(0, &[]).unwrap();
    }
    let mut out_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges: Vec<(usize, usize)> = Vec::new();

    // Geometric sample with mean p/(1-p), capped.
    fn geometric<R: Rng>(p: f64, cap: usize, rng: &mut R) -> usize {
        let p = p.clamp(0.0, 0.99);
        let mut k = 0;
        while k < cap && rng.gen_bool(p) {
            k += 1;
        }
        k
    }

    for v in 1..n {
        let ambassador = rng.gen_range(0..v);
        let mut burned: HashSet<usize> = HashSet::new();
        // Insertion-ordered copy so later adjacency construction (and
        // therefore RNG consumption) is deterministic.
        let mut burn_order: Vec<usize> = vec![ambassador];
        let mut frontier = vec![ambassador];
        burned.insert(ambassador);
        while let Some(w) = frontier.pop() {
            if burned.len() >= config.max_burn {
                break;
            }
            // Burn forward (out-neighbors) and backward (in-neighbors).
            let n_fwd = geometric(config.forward_p, config.max_burn, rng);
            let n_bwd = geometric(config.backward_p, config.max_burn, rng);
            let pick = |pool: &[usize], count: usize, rng: &mut R| {
                let mut chosen = Vec::new();
                let unburned: Vec<usize> =
                    pool.iter().copied().filter(|u| !burned.contains(u)).collect();
                for _ in 0..count.min(unburned.len()) {
                    let u = unburned[rng.gen_range(0..unburned.len())];
                    if !chosen.contains(&u) {
                        chosen.push(u);
                    }
                }
                chosen
            };
            let fwd = pick(&out_adj[w], n_fwd, rng);
            let bwd = pick(&in_adj[w], n_bwd, rng);
            for u in fwd.into_iter().chain(bwd) {
                if burned.insert(u) {
                    burn_order.push(u);
                    frontier.push(u);
                }
            }
        }
        for &u in &burn_order {
            edges.push((v, u));
            out_adj[v].push(u);
            in_adj[u].push(v);
        }
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grows_requested_node_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = forest_fire(&ForestFireConfig { n: 300, ..Default::default() }, &mut rng);
        assert_eq!(g.num_nodes(), 300);
        // Every non-root node links to at least its ambassador.
        assert!(g.num_edges() >= 299);
    }

    #[test]
    fn higher_forward_p_densifies() {
        let edges_at = |p: f64| {
            let mut rng = StdRng::seed_from_u64(2);
            forest_fire(&ForestFireConfig { n: 400, forward_p: p, ..Default::default() }, &mut rng)
                .num_edges()
        };
        let sparse = edges_at(0.1);
        let dense = edges_at(0.5);
        assert!(dense > sparse, "{dense} !> {sparse}");
    }

    #[test]
    fn produces_heavy_tailed_in_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = forest_fire(&ForestFireConfig { n: 800, ..Default::default() }, &mut rng);
        let din = g.in_degrees();
        let max = *din.iter().max().unwrap();
        let mean = din.iter().sum::<usize>() as f64 / din.len() as f64;
        assert!(max as f64 > 5.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            forest_fire(&ForestFireConfig { n: 0, ..Default::default() }, &mut rng).num_nodes(),
            0
        );
        assert_eq!(
            forest_fire(&ForestFireConfig { n: 1, ..Default::default() }, &mut rng).num_nodes(),
            1
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let config = ForestFireConfig { n: 200, ..Default::default() };
        let g1 = forest_fire(&config, &mut StdRng::seed_from_u64(9));
        let g2 = forest_fire(&config, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    fn burn_cap_bounds_degree() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = forest_fire(
            &ForestFireConfig { n: 300, forward_p: 0.9, backward_p: 0.9, max_burn: 10 },
            &mut rng,
        );
        // Out-degree of each arrival is bounded by the burn cap (plus the
        // frontier overshoot of the final step).
        let max_out = (0..300).map(|u| g.out_degree(u)).max().unwrap();
        assert!(max_out <= 30, "out degree {max_out} exceeds burn cap regime");
    }
}
