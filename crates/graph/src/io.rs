//! Edge-list I/O in the SNAP-style whitespace format the paper's datasets
//! ship in: one `u v [w]` per line, `#` comments, blank lines ignored.

use crate::graph::Graph;
use bear_sparse::{Error, Result};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parses an edge list from a string. Node count is
/// `max(node id) + 1` unless `n` is given.
pub fn parse_edge_list(text: &str, n: Option<usize>) -> Result<Graph> {
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_id = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let u: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| Error::InvalidStructure(format!("line {}: bad source", lineno + 1)))?;
        let v: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| Error::InvalidStructure(format!("line {}: bad target", lineno + 1)))?;
        let w: f64 = match parts.next() {
            Some(t) => t
                .parse()
                .map_err(|_| Error::InvalidStructure(format!("line {}: bad weight", lineno + 1)))?,
            None => 1.0,
        };
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = n.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    Graph::from_weighted_edges(n, &edges)
}

/// Reads an edge list from a file.
pub fn read_edge_list(path: &Path, n: Option<usize>) -> Result<Graph> {
    let file = std::fs::File::open(path)
        .map_err(|e| Error::InvalidStructure(format!("cannot open {}: {e}", path.display())))?;
    let mut text = String::new();
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(|e| Error::InvalidStructure(format!("read error: {e}")))?;
        text.push_str(&line);
        text.push('\n');
    }
    parse_edge_list(&text, n)
}

/// Writes a graph as an edge list (weights included when ≠ 1).
pub fn write_edge_list(g: &Graph, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path)
        .map_err(|e| Error::InvalidStructure(format!("cannot create {}: {e}", path.display())))?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())
        .map_err(|e| Error::InvalidStructure(format!("write error: {e}")))?;
    for (u, v, weight) in g.edges() {
        let line = if (weight - 1.0).abs() < f64::EPSILON {
            format!("{u} {v}")
        } else {
            format!("{u} {v} {weight}")
        };
        writeln!(w, "{line}").map_err(|e| Error::InvalidStructure(format!("write error: {e}")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_edge_list() {
        let g = parse_edge_list("# comment\n0 1\n1 2\n\n2 0\n", None).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn parses_weights() {
        let g = parse_edge_list("0 1 2.5\n", None).unwrap();
        assert_eq!(g.adjacency().get(0, 1), 2.5);
    }

    #[test]
    fn explicit_node_count_overrides() {
        let g = parse_edge_list("0 1\n", Some(10)).unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_edge_list("a b\n", None).is_err());
        assert!(parse_edge_list("0\n", None).is_err());
        assert!(parse_edge_list("0 1 zzz\n", None).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("bear_graph_io_test.txt");
        let g = Graph::from_weighted_edges(4, &[(0, 1, 1.0), (1, 2, 3.0), (3, 0, 1.0)]).unwrap();
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path, Some(4)).unwrap();
        assert_eq!(back, g);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse_edge_list("# nothing\n", None).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }
}
