//! Error type shared by all sparse linear algebra operations and the
//! serving stack built on top of them.

use std::fmt;
use std::time::Duration;

/// Errors produced by matrix construction and numerical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Short description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand.
        lhs: (usize, usize),
        /// Dimensions of the right operand.
        rhs: (usize, usize),
    },
    /// An index (row, column, or permutation entry) is out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// Structured storage arrays are inconsistent (e.g. indptr not
    /// monotone, wrong lengths).
    InvalidStructure(String),
    /// A factorization hit a zero (or numerically negligible) pivot.
    SingularMatrix {
        /// Pivot position at which the factorization broke down.
        at: usize,
    },
    /// The operation was aborted because it exceeded a caller-supplied
    /// memory budget (used to reproduce the paper's out-of-memory bars).
    OutOfBudget {
        /// Bytes the operation needed (lower bound at abort time).
        needed: usize,
        /// Bytes the budget allowed.
        budget: usize,
    },
    /// An iterative routine failed to converge within its iteration cap.
    DidNotConverge {
        /// Name of the routine.
        what: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// A stored value is NaN or infinite where a finite value is required
    /// (reported by [`crate::validate::Invariant::validate`]).
    NonFiniteValue {
        /// Flat position of the offending entry in the owning value array.
        at: usize,
    },
    /// A query (or the wait for queue admission) exceeded its deadline
    /// budget.
    Timeout {
        /// The deadline budget that was exhausted.
        budget: Duration,
    },
    /// Admission control rejected new work: the serving job queue is at
    /// capacity and the overload policy is to shed load.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The worker pool has shut down (or its queue is unusable) and
    /// accepts no more work.
    PoolShutDown,
    /// A worker thread panicked while answering a query; the pool itself
    /// survives and subsequent queries are unaffected.
    WorkerPanicked {
        /// Seed node being answered when the panic fired.
        seed: usize,
    },
    /// The operation was cancelled by its caller before completion.
    Cancelled,
    /// A worker thread of a parallel kernel panicked. The panic is
    /// contained at the join (the process survives, sibling chunks run to
    /// completion) and surfaces as this typed error, mirroring the query
    /// engine's `WorkerPanicked` containment.
    KernelPanicked {
        /// Name of the kernel whose worker panicked.
        kernel: &'static str,
        /// The panic payload, when it carried a printable message.
        detail: String,
    },
    /// A configuration parameter was rejected at construction time.
    InvalidConfig {
        /// Name of the offending parameter.
        param: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A persisted index artifact failed integrity or structural
    /// validation on load: torn write, bit rot, truncation, or a payload
    /// that parses but violates an invariant. The artifact must never be
    /// retried into serving — loaders quarantine it (rename to
    /// `*.corrupt`) so operators can inspect the bytes offline.
    CorruptIndex {
        /// The on-disk section (or load phase) where validation failed,
        /// e.g. `"trailer"`, `"l1_inv"`, `"header"`.
        section: &'static str,
        /// What exactly failed (checksum mismatch, truncation, the
        /// wrapped structural error, ...).
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound})")
            }
            Error::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            Error::SingularMatrix { at } => write!(f, "singular matrix: zero pivot at {at}"),
            Error::OutOfBudget { needed, budget } => {
                write!(f, "memory budget exceeded: needed >= {needed} bytes, budget {budget} bytes")
            }
            Error::DidNotConverge { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            Error::NonFiniteValue { at } => {
                write!(f, "non-finite value (NaN or infinity) at position {at}")
            }
            Error::Timeout { budget } => {
                write!(f, "deadline exceeded: budget {budget:?} exhausted")
            }
            Error::QueueFull { capacity } => {
                write!(f, "queue full: admission control rejected work at capacity {capacity}")
            }
            Error::PoolShutDown => write!(f, "worker pool is shut down"),
            Error::WorkerPanicked { seed } => {
                write!(f, "query worker panicked answering seed {seed}")
            }
            Error::Cancelled => write!(f, "operation cancelled by caller"),
            Error::KernelPanicked { kernel, detail } => {
                write!(f, "parallel kernel {kernel} worker panicked: {detail}")
            }
            Error::InvalidConfig { param, reason } => {
                write!(f, "invalid configuration: {param}: {reason}")
            }
            Error::CorruptIndex { section, detail } => {
                write!(f, "corrupt index ({section}): {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
