//! Loom model checking of the query engine's concurrency skeleton.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p bear-core --test loom_engine --release
//! ```
//!
//! Each `loom::model` block is executed once per relevant thread
//! interleaving; assertions inside hold for *every* schedule, and a
//! deadlock in any schedule fails the test. The models cover the three
//! protocols the serving layer relies on:
//!
//! * submit vs. steal: jobs pushed concurrently with a stealing
//!   `try_pop` are delivered exactly once, to exactly one popper;
//! * shutdown: `close` racing `push` either rejects the job or delivers
//!   it — never loses it — and blocked poppers always wake;
//! * metrics: concurrent `record` calls never lose counts and keep
//!   `queries == hits + misses`.
//!
//! `lost_notify_is_caught` demonstrates the suite has teeth: dropping
//! the `notify_one` from `push` (via the test-only
//! `push_without_notify`) produces a lost wakeup that loom reports as a
//! deadlock.
#![cfg(loom)]

use bear_core::engine::queue::JobQueue;
use bear_core::engine::Metrics;
use bear_sparse::Error;
use loom::sync::Arc;
use loom::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// A pushed job is delivered exactly once even when a stealing
/// `try_pop` races the blocking worker `pop`.
#[test]
fn submit_vs_steal_delivers_exactly_once() {
    loom::model(|| {
        let q = Arc::new(JobQueue::new());

        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(job) = q.pop() {
                    got.push(job);
                }
                got
            })
        };

        q.push(1usize).unwrap();
        q.push(2usize).unwrap();
        // Caller-assist steal: may race the worker for either job.
        let stolen = q.try_pop();
        q.close();

        let mut seen = worker.join().unwrap();
        seen.extend(stolen);
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2], "each job delivered exactly once");
    });
}

/// `close` racing `push`: the job is either rejected (push errors) or
/// delivered (drainable after close) — never silently dropped.
#[test]
fn concurrent_shutdown_never_loses_accepted_jobs() {
    loom::model(|| {
        let q = Arc::new(JobQueue::new());

        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(7usize).is_ok())
        };

        q.close();
        let drained = q.pop(); // never blocks: queue is closed
        let accepted = producer.join().unwrap();

        if accepted {
            assert_eq!(drained, Some(7), "accepted job must be drainable");
        } else {
            assert_eq!(drained, None, "rejected job must not appear");
        }
        // Either way the queue is now closed and empty.
        assert_eq!(q.try_pop(), None);
        assert!(q.push(8usize).is_err(), "push after close fails");
    });
}

/// A worker blocked in `pop` always wakes when the queue closes.
#[test]
fn close_wakes_blocked_worker() {
    loom::model(|| {
        let q = Arc::new(JobQueue::<usize>::new());

        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };

        q.close();
        assert_eq!(worker.join().unwrap(), None);
    });
}

/// Concurrent `record` calls never lose counts: `queries` equals
/// `cache_hits + cache_misses` in every interleaving.
#[test]
fn metrics_are_consistent() {
    loom::model(|| {
        let m = Arc::new(Metrics::new());

        let recorder = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                m.record(true, Duration::from_nanos(20));
                m.record(false, Duration::from_nanos(1500));
            })
        };
        m.record(false, Duration::from_nanos(40));
        recorder.join().unwrap();

        let s = m.snapshot();
        assert_eq!(s.queries, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.queries, s.cache_hits + s.cache_misses);
        assert!((s.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    });
}

/// Admission control under every schedule: a full bounded queue never
/// exceeds its capacity, a racing `push` is rejected with a typed
/// error, and a blocked `push_blocking` completes once a `pop` frees a
/// slot (the `space` wakeup protocol).
#[test]
fn bounded_queue_capacity_never_exceeded() {
    loom::model(|| {
        let q = Arc::new(JobQueue::bounded(1));
        q.push(1usize).unwrap();
        assert!(matches!(q.push(99), Err(Error::QueueFull { capacity: 1 })));

        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_blocking(2usize, None))
        };

        assert!(q.len() <= 1, "capacity bound holds while a pusher waits");
        assert_eq!(q.pop(), Some(1)); // frees the slot, must wake the pusher
        producer.join().unwrap().unwrap();
        assert!(q.len() <= 1);
        assert_eq!(q.pop(), Some(2), "blocked push lands exactly once");
        q.close();
        assert_eq!(q.pop(), None);
    });
}

/// A producer blocked in `push_blocking` on a full queue always wakes
/// when the queue closes, failing with the typed shutdown error instead
/// of parking forever.
#[test]
fn close_wakes_blocked_pusher() {
    loom::model(|| {
        let q = Arc::new(JobQueue::bounded(1));
        q.push(1usize).unwrap();

        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_blocking(2usize, None))
        };

        q.close();
        assert!(matches!(producer.join().unwrap(), Err(Error::PoolShutDown)));
        // The accepted backlog is still drainable after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    });
}

/// Seeded-bug demonstration for the bounded-queue wakeup protocol:
/// popping WITHOUT the `space` notification (the test-only
/// `pop_without_notify`) admits a schedule where a producer blocked on a
/// full queue is never woken when its slot frees — loom must report the
/// deadlock. This is the regression the real `pop` is one dropped line
/// away from.
#[test]
fn lost_space_notify_is_caught() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let q = Arc::new(JobQueue::bounded(1));
            q.push(1usize).unwrap();

            let producer = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.push_blocking(2usize, None))
            };

            assert_eq!(q.pop_without_notify(), Some(1));
            producer.join().unwrap().unwrap();
            assert_eq!(q.pop(), Some(2));
        });
    }));

    let payload = outcome.expect_err("loom must catch the lost space wakeup");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "expected a deadlock report, got: {msg}");
}

/// Seeded-bug demonstration: enqueueing WITHOUT the `notify_one` (the
/// test-only `push_without_notify`) admits a schedule where the worker
/// checks the queue first, then waits forever — loom must report it as
/// a deadlock. This is the regression the real `push` is one dropped
/// line away from.
#[test]
fn lost_notify_is_caught() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let q = Arc::new(JobQueue::new());

            let worker = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            };

            q.push_without_notify(9usize).unwrap();
            assert_eq!(worker.join().unwrap(), Some(9));
        });
    }));

    let payload = outcome.expect_err("loom must catch the lost wakeup");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "expected a deadlock report, got: {msg}");
}
