//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group` (with `sample_size`, `throughput`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock sampler: each benchmark is auto-calibrated to ~50ms per
//! sample, runs `sample_size` samples, and reports min / median / mean /
//! p95 per-iteration times to stdout. No plots, no statistics engine,
//! no baseline persistence.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measured sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

/// Identifies a benchmark within a group (`group.bench_with_input`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; recorded and echoed, not used in math.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, auto-calibrating iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: double the iteration count until one sample takes
        // long enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 30 {
                self.iters_per_sample = iters;
                self.samples.push(elapsed);
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = TARGET_SAMPLE_TIME.as_nanos() as f64 / elapsed.as_nanos() as f64;
                (iters as f64 * scale.min(16.0)).ceil() as u64
            };
        }
        for _ in 1..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// `iter_batched` with per-iteration setup; `_size` is ignored.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.iter(|| routine(setup()));
    }
}

/// Batch sizing hint for `iter_batched` (ignored by this stand-in).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

fn fmt_duration(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn run_and_report(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size.max(2),
    };
    f(&mut bencher);
    let iters = bencher.iters_per_sample.max(1);
    let mut per_iter: Vec<f64> =
        bencher.samples.iter().map(|d| d.as_nanos() as f64 / iters as f64).collect();
    per_iter.sort_by(f64::total_cmp);
    if per_iter.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let p95 = per_iter[(per_iter.len() * 95 / 100).min(per_iter.len() - 1)];
    let mut line = format!(
        "{id:<40} min {:>10}  med {:>10}  mean {:>10}  p95 {:>10}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(p95),
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        let rate = count / (median / 1_000_000_000.0);
        line.push_str(&format!("  [{rate:.3e} {unit}]"));
    }
    println!("{line}");
}

/// A set of related benchmarks sharing sample-size and throughput config.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the measurement-time budget (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_and_report(&full, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Runs a benchmark receiving a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_and_report(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; present for API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_and_report(id, 10, None, |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    /// Accepted for API parity; configuration is fixed in this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; measuring
            // there would only slow the suite down, so run a no-op pass.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                println!("(bench compiled ok; skipping measurement in test mode)");
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::new("sum", 4), |b| {
            b.iter(|| (0..4u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(12.0), "12.0 ns");
        assert_eq!(fmt_duration(12_500.0), "12.50 µs");
        assert_eq!(fmt_duration(12_500_000.0), "12.50 ms");
        assert_eq!(fmt_duration(2_500_000_000.0), "2.500 s");
    }
}
