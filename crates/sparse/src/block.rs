//! Column-major dense blocks for multi-RHS (SpMM-style) kernels.
//!
//! BEAR's query phase applies six precomputed sparse matrices to one
//! right-hand side at a time; answering `k` seeds as one `n × k` block
//! amortizes every sparse-structure traversal across the `k` columns —
//! the same SpMM-over-SpMV trick the B_LIN/NB_LIN baselines rely on for
//! their low-rank cores. Storage is column-major so each right-hand side
//! (one seed's vector) is a contiguous slice: width-1 blocks degrade to
//! plain `matvec` calls with zero copying, and per-column results can be
//! handed out without a gather.
//!
//! Every blocked kernel in this crate ([`crate::CsrMatrix::spmm_into`],
//! [`crate::CscMatrix::spmm_into`], [`crate::triangular::solve_lower_block`],
//! …) guarantees that column `j` of its output is **bit-identical** to
//! running the corresponding single-vector kernel on column `j` alone:
//! per column, the scalar accumulation order is exactly the vector
//! kernel's, only the sparse structure walk is shared.

use crate::error::{Error, Result};

/// A dense `nrows × ncols` block of `f64` in column-major order: column
/// `j` occupies `data[j * nrows .. (j + 1) * nrows]` contiguously.
///
/// ```
/// use bear_sparse::DenseBlock;
/// let mut b = DenseBlock::zeros(3, 2);
/// b.col_mut(1)[2] = 5.0;
/// assert_eq!(b[(2, 1)], 5.0);
/// assert_eq!(b.col(0), &[0.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseBlock {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseBlock {
    /// An all-zero `nrows × ncols` block.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseBlock { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Builds a block from column-major data; `data.len()` must equal
    /// `nrows * ncols`.
    pub fn from_column_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(Error::InvalidStructure(format!(
                "column-major data has {} entries, expected {} for a {}x{} block",
                data.len(),
                nrows * ncols,
                nrows,
                ncols
            )));
        }
        Ok(DenseBlock { nrows, ncols, data })
    }

    /// Builds an `nrows × columns.len()` block by copying each slice in
    /// as one column. Every column must have length `nrows`.
    pub fn from_columns(nrows: usize, columns: &[&[f64]]) -> Result<Self> {
        let mut block = DenseBlock::zeros(nrows, columns.len());
        for (j, col) in columns.iter().enumerate() {
            if col.len() != nrows {
                return Err(Error::DimensionMismatch {
                    op: "DenseBlock::from_columns",
                    lhs: (nrows, columns.len()),
                    rhs: (col.len(), 1),
                });
            }
            block.col_mut(j).copy_from_slice(col);
        }
        Ok(block)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (the block width `k`).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a contiguous mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// All entries in column-major order.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to all entries in column-major order.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterates over the columns as contiguous slices.
    pub fn columns(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.nrows.max(1)).take(self.ncols)
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Reshapes in place to `nrows × ncols`, zeroing all contents.
    /// Shrinking keeps the backing allocation, so a workspace block can be
    /// resized per batch without churning the allocator.
    pub fn reset(&mut self, nrows: usize, ncols: usize) {
        self.data.clear();
        self.data.resize(nrows * ncols, 0.0);
        self.nrows = nrows;
        self.ncols = ncols;
    }

    /// Copies each column out into an owned `Vec`, in column order.
    pub fn to_columns(&self) -> Vec<Vec<f64>> {
        (0..self.ncols).map(|j| self.col(j).to_vec()).collect()
    }
}

impl std::ops::Index<(usize, usize)> for DenseBlock {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[c * self.nrows + r]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseBlock {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[c * self.nrows + r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_layout() {
        let b = DenseBlock::from_column_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(b.col(0), &[1.0, 2.0]);
        assert_eq!(b.col(1), &[3.0, 4.0]);
        assert_eq!(b[(0, 2)], 5.0);
        assert_eq!(b[(1, 2)], 6.0);
        assert_eq!(b.columns().count(), 3);
    }

    #[test]
    fn from_columns_copies() {
        let b = DenseBlock::from_columns(3, &[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(b.ncols(), 2);
        assert_eq!(b.col(1), &[4.0, 5.0, 6.0]);
        assert_eq!(b.to_columns(), vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert!(DenseBlock::from_columns(3, &[&[1.0]]).is_err());
        assert!(DenseBlock::from_column_major(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let mut b = DenseBlock::zeros(4, 4);
        b[(3, 3)] = 9.0;
        let cap_before = b.data.capacity();
        b.reset(4, 2);
        assert_eq!(b.ncols(), 2);
        assert!(b.data().iter().all(|&v| v == 0.0));
        assert!(b.data.capacity() >= 8);
        b.reset(4, 4);
        assert_eq!(b.data.capacity(), cap_before, "regrow reuses the allocation");
        assert!(b.data().iter().all(|&v| v == 0.0), "stale tail must be zeroed");
    }

    #[test]
    fn zero_width_block_is_valid() {
        let b = DenseBlock::zeros(5, 0);
        assert_eq!(b.ncols(), 0);
        assert_eq!(b.columns().count(), 0);
        assert!(b.to_columns().is_empty());
    }
}
