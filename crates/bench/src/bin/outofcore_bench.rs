//! Out-of-core serving benchmark and differential gate.
//!
//! Streams a preprocessed index to a sharded v3 file
//! (`preprocess_to_disk`), re-opens it behind the block pager with a
//! resident-set cap of **one quarter of the spoke factors** (so the
//! on-disk index is ≥ 4x the memory budget by construction), and proves
//! the paged stack answers **bit-identically** to the fully resident
//! one on two fronts:
//!
//! * in-process: `query` and `query_top_k_pruned` on the paged index
//!   vs. the in-memory reference, f64-bit for f64-bit;
//! * over HTTP: `GET /v1/query` against a `bear-serve` server whose
//!   engine caps the pager, vs. the same reference.
//!
//! The run fails unless the pager actually paged (misses > 0 and
//! evictions > 0 under the cap) and every comparison was exact. The
//! JSON artifact records the resident cap, index size, shard count,
//! pager counters, and `host_cores`.
//!
//! ```text
//! cargo run --release -p bear-bench --bin outofcore_bench -- \
//!     [--dataset small_routing] [--seeds 64] [--json results/BENCH_outofcore.json]
//! ```

use bear_bench::cli::Args;
use bear_bench::harness::{measure, ExperimentResult, ResultRow};
use bear_core::{persist, Bear, BearConfig, EngineConfig, LoadOptions, QueryEngine};
use bear_serve::{client, Registry, Server, ServerConfig};
use bear_sparse::mem::MemBudget;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let dataset = args.get("--dataset").unwrap_or("small_routing").to_string();
    let num_seeds: usize = args.get_or("--seeds", 64usize).max(1);
    let json_path = args.get("--json").unwrap_or("results/BENCH_outofcore.json").to_string();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let spec = bear_datasets::dataset_by_name(&dataset)
        .unwrap_or_else(|| panic!("unknown dataset '{dataset}'"));
    let g = spec.load();
    let n = g.num_nodes();
    let config = BearConfig::exact(0.05);

    // Fully resident reference: the oracle every paged answer must hit
    // bit-for-bit.
    let (reference, preprocess_s) = measure(|| Bear::new(&g, &config).expect("preprocess"));

    // Streamed out-of-core write: finished spoke blocks go to disk one
    // shard at a time.
    let path = std::env::temp_dir().join("bear_outofcore_bench.idx");
    let (_, stream_s) =
        measure(|| bear_core::preprocess_to_disk(&g, &config, &path).expect("streamed write"));
    let file_len = std::fs::metadata(&path).expect("index metadata").len();
    let report = persist::verify_index(&path).expect("fresh v3 index must verify");
    assert_eq!(report.version, 3, "streamed writer must emit the sharded v3 layout");

    // Open paged (unlimited budget), touch every block once, and read
    // back the total resident size of the spoke factors; the serving cap
    // is a quarter of that, so the on-disk index is >= 4x the budget.
    let paged = Bear::load(&path).expect("paged load");
    let pager = paged.pager().expect("v3 load must be paged");
    paged.query(0).expect("warm-up query");
    let total_spoke_bytes = pager.stats().resident_bytes;
    let resident_cap = (total_spoke_bytes / 4).max(1);
    assert!(
        file_len >= 4 * resident_cap,
        "index ({file_len} bytes) must be at least 4x the resident cap ({resident_cap} bytes)"
    );
    pager.set_budget(Some(resident_cap as usize)).expect("apply resident cap");

    println!(
        "outofcore: dataset={dataset} n={n} | host cores: {host_cores} | \
         index={file_len}B in {} shards, spokes={total_spoke_bytes}B, \
         resident cap={resident_cap}B ({}x over budget)",
        report.segments,
        file_len / resident_cap.max(1)
    );

    // Deterministic seed sample spread over the node range.
    let seeds: Vec<usize> =
        (0..num_seeds.min(n)).map(|i| i * n / num_seeds.min(n).max(1) % n).collect();
    let k = 10.min(n.saturating_sub(1)).max(1);

    // In-process differential + timings: full vectors and pruned top-k.
    let mut resident_total_s = 0.0;
    let mut paged_total_s = 0.0;
    for &seed in &seeds {
        let (want, r_s) = measure(|| reference.query(seed).expect("resident query"));
        let (got, p_s) = measure(|| paged.query(seed).expect("paged query"));
        resident_total_s += r_s;
        paged_total_s += p_s;
        assert_eq!(got.len(), want.len(), "seed {seed}: length drift");
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} node {i}: paged {a:?} != {b:?}");
        }
        let want_k = reference.query_top_k_pruned(seed, k).expect("resident top-k");
        let got_k = paged.query_top_k_pruned(seed, k).expect("paged top-k");
        assert_eq!(got_k.len(), want_k.len(), "seed {seed}: top-k length drift");
        for (a, b) in got_k.iter().zip(&want_k) {
            assert_eq!(a.node, b.node, "seed {seed}: top-k node order drift");
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "seed {seed}: top-k score drift");
        }
    }
    let stats = pager.stats();
    assert!(stats.misses > 0, "the capped pager never faulted a block in — cap too generous?");
    assert!(stats.evictions > 0, "the capped pager never evicted — cap too generous?");

    // Same differential over HTTP: the serving stack caps its pager via
    // the engine config, and every served score must still be exact.
    let engine_config = EngineConfig::builder()
        .spoke_residency_bytes(Some(resident_cap))
        .build()
        .expect("engine config");
    let http_bear = Arc::new(
        Bear::load_with(&path, &LoadOptions { budget: MemBudget::unlimited(), resident: false })
            .expect("paged load for serving"),
    );
    let engine = QueryEngine::new(http_bear, engine_config.clone()).expect("engine");
    let registry = Arc::new(Registry::new());
    registry.publish("ooc", Arc::new(engine));
    let server = Server::start(registry, ServerConfig { engine_config, ..ServerConfig::default() })
        .expect("start server");
    let addr = server.addr();
    let mut http_total_s = 0.0;
    for &seed in &seeds {
        let (resp, h_s) = measure(|| {
            client::get(addr, &format!("/v1/query?graph=ooc&seed={seed}"), &[]).expect("http get")
        });
        http_total_s += h_s;
        assert_eq!(resp.status, 200, "seed {seed}: {}", resp.body_str());
        let scores = client::json_number_array(&resp.body_str(), "scores").expect("scores array");
        let want = reference.query(seed).expect("resident query");
        assert_eq!(scores.len(), want.len(), "seed {seed}: HTTP length drift");
        for (i, (a, b)) in scores.iter().zip(&want).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} node {i}: HTTP {a:?} != {b:?}");
        }
    }
    let metrics_body = client::get(addr, "/metrics", &[]).expect("scrape metrics").body_str();
    assert!(
        metrics_body.contains("bear_pager_misses_total"),
        "/metrics must expose the pager counters"
    );
    server.shutdown();
    std::fs::remove_file(&path).ok();

    let per_seed = |total: f64| total / seeds.len() as f64;
    let base_param = format!(
        "host_cores={host_cores} resident_cap_bytes={resident_cap} index_bytes={file_len} \
         spoke_bytes={total_spoke_bytes} shards={} seeds={}",
        report.segments,
        seeds.len()
    );
    let mut out = ExperimentResult::new(
        "outofcore_serving",
        &format!(
            "sharded v3 index served under a resident cap of 1/4 of the spoke factors \
             (index {file_len}B >= 4x cap {resident_cap}B): in-process and HTTP answers \
             bit-identical to the fully resident index on {} seeds; host_cores={host_cores}",
            seeds.len()
        ),
    );
    let mut row = ResultRow::new(&dataset, "resident_query");
    row.param = Some(base_param.clone());
    row.preprocess_s = Some(preprocess_s);
    row.query_s = Some(per_seed(resident_total_s));
    row.memory_bytes = Some(total_spoke_bytes as usize);
    out.rows.push(row);
    let mut row = ResultRow::new(&dataset, "paged_query");
    row.param = Some(format!(
        "{base_param} pager_hits={} pager_misses={} pager_evictions={} pager_resident_bytes={}",
        stats.hits, stats.misses, stats.evictions, stats.resident_bytes
    ));
    row.preprocess_s = Some(stream_s);
    row.query_s = Some(per_seed(paged_total_s));
    row.memory_bytes = Some(stats.resident_bytes as usize);
    out.rows.push(row);
    let mut row = ResultRow::new(&dataset, "http_paged_query");
    row.param = Some(base_param);
    row.query_s = Some(per_seed(http_total_s));
    out.rows.push(row);
    out.print_table();
    out.write_json(&json_path).expect("write json");
    println!("wrote {json_path}");
    println!(
        "outofcore clean: {} seeds bit-identical in-process and over HTTP under a \
         {resident_cap}B cap (misses={} evictions={})",
        seeds.len(),
        stats.misses,
        stats.evictions
    );
}
