//! Compressed sparse row matrix: the crate's primary format.

use crate::block::DenseBlock;
use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;
use crate::error::{Error, Result};
use crate::validate::{check_compressed, check_finite, Invariant, Mutation};

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// ```
/// use bear_sparse::{CooMatrix, CsrMatrix};
/// let mut coo = CooMatrix::new(2, 3);
/// coo.push(0, 0, 1.0);
/// coo.push(1, 2, 2.0);
/// let m: CsrMatrix = coo.to_csr();
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.get(1, 2), 2.0);
/// assert_eq!(m.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![1.0, 2.0]);
/// ```
///
/// Invariants (enforced by [`CsrMatrix::from_raw`], assumed by the unchecked
/// constructor):
/// * `indptr.len() == nrows + 1`, `indptr[0] == 0`, monotone non-decreasing;
/// * `indices` within every row are strictly increasing and `< ncols`;
/// * `indices.len() == values.len() == indptr[nrows]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix after validating all structural invariants
    /// (value finiteness is *not* checked; see
    /// [`CsrMatrix::try_from_parts`]).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        check_compressed("row", nrows, ncols, &indptr, &indices, &values)?;
        Ok(CsrMatrix { nrows, ncols, indptr, indices, values })
    }

    /// Builds a CSR matrix after running the full [`Invariant`] audit:
    /// everything [`CsrMatrix::from_raw`] checks, plus finiteness of every
    /// stored value. This is the constructor for trust boundaries
    /// (deserialization, file ingestion).
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        let m = Self::from_raw(nrows, ncols, indptr, indices, values)?;
        check_finite(m.values())?;
        Ok(m)
    }

    /// Builds a CSR matrix without validation. Caller must uphold the type's
    /// invariants; used on hot paths where the arrays were just produced by
    /// a kernel that guarantees them. With the `strict-invariants` feature
    /// the full audit runs anyway and panics on violation.
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), nrows + 1);
        debug_assert_eq!(indices.len(), values.len());
        debug_assert_eq!(*indptr.last().unwrap(), indices.len());
        let m = CsrMatrix { nrows, ncols, indptr, indices, values };
        #[cfg(feature = "strict-invariants")]
        crate::validate::assert_strict(&m, "CsrMatrix::from_raw_unchecked");
        m
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// An all-zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row pointer array.
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw column index array.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to values (structure is fixed; only values change).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Value at `(r, c)`, or `0.0` if not stored. Binary search within the
    /// row; O(log nnz(row)).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals.iter()).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// `y = A x` (dense vector).
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                op: "matvec",
                lhs: (self.nrows, self.ncols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// `y = A x` written into a caller-owned buffer: the allocation-free
    /// form of [`CsrMatrix::matvec`], bit-identical to it (same loop and
    /// accumulation order).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.ncols || y.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                op: "matvec_into",
                lhs: (self.nrows, self.ncols),
                rhs: (y.len(), x.len()),
            });
        }
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            *yr = acc;
        }
        Ok(())
    }

    /// `y += A x` accumulated into a caller-owned buffer (no allocation).
    pub fn matvec_acc(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.ncols || y.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                op: "matvec_acc",
                lhs: (self.nrows, self.ncols),
                rhs: (y.len(), x.len()),
            });
        }
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            *yr += acc;
        }
        Ok(())
    }

    /// `Y = A X` for a column-major dense block: the multi-RHS form of
    /// [`CsrMatrix::matvec_into`]. Column `j` of `Y` is bit-identical to
    /// `matvec_into(X.col(j), Y.col(j))` — per output entry the scalar
    /// accumulation runs over the row's nonzeros in the same order — but
    /// each row's index/value structure is walked once for all `k`
    /// columns instead of `k` times, which is where the blocked query
    /// path gets its memory-bandwidth amortization. Width-1 blocks
    /// delegate to the vector kernel outright.
    pub fn spmm_into(&self, x: &DenseBlock, y: &mut DenseBlock) -> Result<()> {
        if x.nrows() != self.ncols || y.nrows() != self.nrows || x.ncols() != y.ncols() {
            return Err(Error::DimensionMismatch {
                op: "spmm_into",
                lhs: (self.nrows, self.ncols),
                rhs: (x.nrows(), x.ncols()),
            });
        }
        let k = x.ncols();
        if k == 1 {
            return self.matvec_into(x.col(0), y.col_mut(0));
        }
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for j in 0..k {
                let xj = x.col(j);
                let mut acc = 0.0;
                for (&c, &v) in cols.iter().zip(vals) {
                    acc += v * xj[c];
                }
                y[(r, j)] = acc;
            }
        }
        Ok(())
    }

    /// `Y += A X` accumulated into a caller-owned block: the multi-RHS
    /// form of [`CsrMatrix::matvec_acc`], with the same per-column
    /// bit-identity guarantee as [`CsrMatrix::spmm_into`].
    pub fn spmm_acc(&self, x: &DenseBlock, y: &mut DenseBlock) -> Result<()> {
        if x.nrows() != self.ncols || y.nrows() != self.nrows || x.ncols() != y.ncols() {
            return Err(Error::DimensionMismatch {
                op: "spmm_acc",
                lhs: (self.nrows, self.ncols),
                rhs: (x.nrows(), x.ncols()),
            });
        }
        let k = x.ncols();
        if k == 1 {
            return self.matvec_acc(x.col(0), y.col_mut(0));
        }
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for j in 0..k {
                let xj = x.col(j);
                let mut acc = 0.0;
                for (&c, &v) in cols.iter().zip(vals) {
                    acc += v * xj[c];
                }
                y[(r, j)] += acc;
            }
        }
        Ok(())
    }

    /// `y = Aᵀ x` without materializing the transpose.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                op: "matvec_transpose",
                lhs: (self.ncols, self.nrows),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.ncols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                y[c] += v * xr;
            }
        }
        Ok(y)
    }

    /// Materialized transpose, still in CSR.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut next = counts.clone();
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = next[c];
                indices[slot] = r;
                values[slot] = v;
                next[c] += 1;
            }
        }
        // Row order within each output row is ascending because we scanned
        // input rows in ascending order.
        CsrMatrix::from_raw_unchecked(self.ncols, self.nrows, counts, indices, values)
    }

    /// Reinterprets this CSR matrix as CSC of the same logical matrix
    /// (requires a transpose-shaped reshuffle; O(nnz)).
    pub fn to_csc(&self) -> CscMatrix {
        let t = self.transpose();
        CscMatrix::from_raw_unchecked(self.nrows, self.ncols, t.indptr, t.indices, t.values)
    }

    /// Converts to a dense row-major matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Returns `alpha * A` as a new matrix.
    pub fn scale(&self, alpha: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= alpha;
        }
        out
    }

    /// Extracts the submatrix with rows in `[r0, r1)` and columns in
    /// `[c0, c1)`, reindexed to start at zero. Used to partition `H` into
    /// `H₁₁, H₁₂, H₂₁, H₂₂`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Result<CsrMatrix> {
        if r1 > self.nrows || c1 > self.ncols || r0 > r1 || c0 > c1 {
            return Err(Error::InvalidStructure(format!(
                "submatrix bounds ({r0}..{r1}, {c0}..{c1}) invalid for {}x{}",
                self.nrows, self.ncols
            )));
        }
        let mut indptr = Vec::with_capacity(r1 - r0 + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in r0..r1 {
            let (cols, vals) = self.row(r);
            // Binary search for the column window once per row.
            let lo = cols.partition_point(|&c| c < c0);
            let hi = cols.partition_point(|&c| c < c1);
            for (&c, &v) in cols[lo..hi].iter().zip(&vals[lo..hi]) {
                indices.push(c - c0);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix::from_raw_unchecked(r1 - r0, c1 - c0, indptr, indices, values))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Checks symmetric equality with another matrix within `tol`
    /// (entry-wise on the union of patterns).
    pub fn approx_eq(&self, other: &CsrMatrix, tol: f64) -> bool {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return false;
        }
        for r in 0..self.nrows {
            let (ca, va) = self.row(r);
            let (cb, vb) = other.row(r);
            let (mut i, mut j) = (0, 0);
            while i < ca.len() || j < cb.len() {
                let (a, b) = match (ca.get(i), cb.get(j)) {
                    (Some(&c1), Some(&c2)) if c1 == c2 => {
                        let pair = (va[i], vb[j]);
                        i += 1;
                        j += 1;
                        pair
                    }
                    (Some(&c1), Some(&c2)) if c1 < c2 => {
                        let pair = (va[i], 0.0);
                        i += 1;
                        pair
                    }
                    (Some(_), Some(_)) => {
                        let pair = (0.0, vb[j]);
                        j += 1;
                        pair
                    }
                    (Some(_), None) => {
                        let pair = (va[i], 0.0);
                        i += 1;
                        pair
                    }
                    (None, Some(_)) => {
                        let pair = (0.0, vb[j]);
                        j += 1;
                        pair
                    }
                    (None, None) => unreachable!(),
                };
                if (a - b).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Invariant for CsrMatrix {
    fn validate(&self) -> Result<()> {
        check_compressed("row", self.nrows, self.ncols, &self.indptr, &self.indices, &self.values)?;
        check_finite(&self.values)
    }
}

impl CsrMatrix {
    /// Test support: breaks exactly one invariant in place, bypassing every
    /// constructor check. Returns whether the mutation was applicable (e.g.
    /// [`Mutation::SwapAdjacentIndices`] needs a row with two entries).
    /// See [`crate::validate`].
    #[doc(hidden)]
    pub fn apply_mutation(&mut self, mutation: Mutation) -> bool {
        apply_compressed_mutation(
            mutation,
            self.ncols,
            &mut self.indptr,
            &mut self.indices,
            &mut self.values,
        )
    }
}

/// Shared implementation of [`Mutation`] for the two compressed formats;
/// operates on the raw arrays so CSR and CSC behave identically.
pub(crate) fn apply_compressed_mutation(
    mutation: Mutation,
    inner: usize,
    indptr: &mut [usize],
    indices: &mut [usize],
    values: &mut [f64],
) -> bool {
    // First segment holding at least two entries, for the order-sensitive
    // mutations.
    let wide_segment = indptr.windows(2).find(|w| w[1] - w[0] >= 2).map(|w| w[0]);
    match mutation {
        Mutation::SwapAdjacentIndices => match wide_segment {
            Some(lo) => {
                indices.swap(lo, lo + 1);
                true
            }
            None => false,
        },
        Mutation::DuplicateIndex => match wide_segment {
            Some(lo) => {
                indices[lo + 1] = indices[lo];
                true
            }
            None => false,
        },
        Mutation::OutOfBoundsIndex => match indices.first_mut() {
            Some(i) => {
                *i = inner;
                true
            }
            None => false,
        },
        Mutation::BreakIndptr => match indptr.last_mut() {
            Some(p) => {
                *p += 1;
                true
            }
            None => false,
        },
        Mutation::InjectNan => match values.first_mut() {
            Some(v) => {
                *v = f64::NAN;
                true
            }
            None => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(0, 2, 2.0);
        m.push(1, 1, 3.0);
        m.push(2, 0, 4.0);
        m.push(2, 2, 5.0);
        m.to_csr()
    }

    #[test]
    fn get_returns_stored_and_zero() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let y = m.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn matvec_transpose_matches_explicit_transpose() {
        let m = sample();
        let x = vec![1.0, -1.0, 2.0];
        let via_implicit = m.matvec_transpose(&x).unwrap();
        let via_explicit = m.transpose().matvec(&x).unwrap();
        assert_eq!(via_implicit, via_explicit);
    }

    #[test]
    fn matvec_rejects_bad_length() {
        let m = sample();
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_transpose(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i = CsrMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x).unwrap(), x);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = sample();
        let s = m.submatrix(0, 2, 1, 3).unwrap();
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.get(0, 1), 2.0); // originally (0,2)
        assert_eq!(s.get(1, 0), 3.0); // originally (1,1)
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn submatrix_bounds_checked() {
        let m = sample();
        assert!(m.submatrix(0, 4, 0, 3).is_err());
        assert!(m.submatrix(2, 1, 0, 3).is_err());
    }

    #[test]
    fn from_raw_rejects_unsorted_columns() {
        let e = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
        assert!(e.is_err());
    }

    #[test]
    fn from_raw_rejects_bad_indptr() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw(1, 2, vec![1, 1], vec![], vec![]).is_err());
    }

    #[test]
    fn scale_multiplies_values() {
        let m = sample().scale(2.0);
        assert_eq!(m.get(2, 2), 10.0);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn approx_eq_detects_pattern_differences() {
        let a = sample();
        let b = sample().scale(1.0 + 1e-15);
        assert!(a.approx_eq(&b, 1e-9));
        let c = CsrMatrix::identity(3);
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    fn to_dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[(2, 0)], 4.0);
        assert_eq!(d[(1, 1)], 3.0);
        assert_eq!(d.to_csr(0.0), m);
    }

    #[test]
    fn matvec_into_matches_matvec_bitwise() {
        let m = sample();
        let x = [0.3, -1.7, 2.9];
        let allocated = m.matvec(&x).unwrap();
        let mut buf = vec![9.9; 3]; // stale contents must be overwritten
        m.matvec_into(&x, &mut buf).unwrap();
        assert_eq!(buf, allocated);
    }

    #[test]
    fn matvec_acc_accumulates() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let base = m.matvec(&x).unwrap();
        let mut buf = vec![10.0; 3];
        m.matvec_acc(&x, &mut buf).unwrap();
        for (got, b) in buf.iter().zip(&base) {
            assert_eq!(*got, 10.0 + b);
        }
    }

    #[test]
    fn matvec_into_rejects_bad_buffer_sizes() {
        let m = sample();
        assert!(m.matvec_into(&[1.0; 3], &mut [0.0; 2]).is_err());
        assert!(m.matvec_into(&[1.0; 2], &mut [0.0; 3]).is_err());
        assert!(m.matvec_acc(&[1.0; 3], &mut [0.0; 4]).is_err());
    }

    #[test]
    fn spmm_columns_bitwise_equal_matvec() {
        let m = sample();
        // Awkward values so any reassociation of the sums would show up.
        let cols: Vec<Vec<f64>> = (0..5)
            .map(|j| (0..3).map(|i| ((i * 7 + j * 13) as f64).sin() * 1e3 + 0.1).collect())
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let x = DenseBlock::from_columns(3, &refs).unwrap();
        let mut y = DenseBlock::zeros(3, 5);
        m.spmm_into(&x, &mut y).unwrap();
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(y.col(j), m.matvec(col).unwrap(), "column {j}");
        }
        // Accumulating form adds exactly one more product on top.
        let mut acc = y.clone();
        m.spmm_acc(&x, &mut acc).unwrap();
        for (j, col) in cols.iter().enumerate() {
            let mut want = y.col(j).to_vec();
            m.matvec_acc(col, &mut want).unwrap();
            assert_eq!(acc.col(j), &want[..], "column {j}");
        }
    }

    #[test]
    fn spmm_width_one_falls_back_to_matvec() {
        let m = sample();
        let x = DenseBlock::from_columns(3, &[&[0.3, -1.7, 2.9]]).unwrap();
        let mut y = DenseBlock::zeros(3, 1);
        m.spmm_into(&x, &mut y).unwrap();
        assert_eq!(y.col(0), m.matvec(&[0.3, -1.7, 2.9]).unwrap());
    }

    #[test]
    fn spmm_rejects_bad_shapes() {
        let m = sample();
        let x = DenseBlock::zeros(2, 4); // wrong inner dimension
        let mut y = DenseBlock::zeros(3, 4);
        assert!(m.spmm_into(&x, &mut y).is_err());
        let x = DenseBlock::zeros(3, 4);
        let mut y = DenseBlock::zeros(3, 2); // width mismatch
        assert!(m.spmm_into(&x, &mut y).is_err());
        assert!(m.spmm_acc(&x, &mut y).is_err());
    }
}
