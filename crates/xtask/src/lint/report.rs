//! Finding representation and rendering (text and `--format json`).

use super::source::SourceFile;

/// One lint finding, anchored to a `file:line` span and carrying a
/// content fingerprint so the ratchet baseline survives line drift.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the lint root (`/` separators).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`L1`..`L5`).
    pub rule: String,
    /// Short category slug within the rule (e.g. `unwrap`, `slice-index`).
    pub category: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// Stable identity content: the trimmed source line (or a synthetic
    /// key for structural findings). Baseline entries match on
    /// `(rule, file, fingerprint)`.
    pub fingerprint: String,
}

impl Finding {
    /// A finding fingerprinted by the trimmed text of its source line.
    pub fn new(
        rule: &str,
        category: &str,
        file: &SourceFile,
        line: usize,
        message: String,
    ) -> Finding {
        Finding {
            file: file.rel_path.clone(),
            line,
            rule: rule.to_string(),
            category: category.to_string(),
            message,
            fingerprint: file.fingerprint(line),
        }
    }

    /// A finding with an explicit (synthetic) fingerprint, for findings
    /// not tied to one line's text (e.g. a missing match arm).
    pub fn with_fingerprint(
        rule: &str,
        category: &str,
        rel_path: &str,
        line: usize,
        message: String,
        fingerprint: String,
    ) -> Finding {
        Finding {
            file: rel_path.to_string(),
            line,
            rule: rule.to_string(),
            category: category.to_string(),
            message,
            fingerprint,
        }
    }

    /// The baseline identity key.
    pub fn key(&self) -> (String, String, String) {
        (self.rule.clone(), self.file.clone(), self.fingerprint.clone())
    }
}

/// Renders findings as one `file:line: [rule/category] message` row each.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}/{}] {}\n",
            f.file, f.line, f.rule, f.category, f.message
        ));
    }
    out
}

/// Renders the full report as JSON (no external dependencies): findings
/// with their baseline status plus stale baseline entries and a summary.
pub fn render_json(
    findings: &[(Finding, bool)],
    stale: &[(String, String, String)],
    baseline_total: usize,
) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, (f, baselined)) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"category\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"fingerprint\": {}, \"status\": {}}}{}\n",
            json_str(&f.rule),
            json_str(&f.category),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            json_str(&f.fingerprint),
            json_str(if *baselined { "baselined" } else { "new" }),
            if i + 1 < findings.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"stale\": [\n");
    for (i, (rule, file, fingerprint)) in stale.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"fingerprint\": {}}}{}\n",
            json_str(rule),
            json_str(file),
            json_str(fingerprint),
            if i + 1 < stale.len() { "," } else { "" },
        ));
    }
    let new = findings.iter().filter(|(_, b)| !*b).count();
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\"total\": {}, \"baselined\": {}, \"new\": {}, \"stale\": {}, \"baseline_entries\": {}}}\n}}\n",
        findings.len(),
        findings.len() - new,
        new,
        stale.len(),
        baseline_total,
    ));
    out
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
