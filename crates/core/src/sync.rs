//! Synchronization shim: `std::sync` in production, `loom` under model
//! checking.
//!
//! The engine's concurrency machinery ([`crate::engine::queue`] and
//! [`crate::engine::Metrics`]) imports its primitives from this module
//! instead of `std::sync`. A normal build re-exports the real `std`
//! types, so there is zero runtime cost. Building with
//! `RUSTFLAGS="--cfg loom"` swaps in the [`loom`] model checker's
//! instrumented equivalents, which explore every relevant interleaving
//! of the code under test (see `crates/core/tests/loom_engine.rs`).
//!
//! Only the primitives the engine actually uses are re-exported; add to
//! this list rather than importing `std::sync` directly from engine
//! code.

use std::time::Duration;

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

/// Waits on `cv` for at most `timeout`, releasing and reacquiring the
/// guard; returns `None` if the lock was poisoned. The timed-out flag is
/// deliberately not surfaced: callers re-check their predicate and their
/// deadline against the wall clock after every wakeup, which also covers
/// spurious wakeups.
///
/// Under `cfg(loom)` this degrades to an *untimed* wait. That is the
/// stronger model: a timeout can only mask a lost wakeup, so the loom
/// suite proves every blocked waiter is eventually notified even if no
/// timer ever fires.
#[cfg(not(loom))]
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> Option<MutexGuard<'a, T>> {
    cv.wait_timeout(guard, timeout).ok().map(|(guard, _)| guard)
}

/// Loom variant of [`wait_timeout`]: an untimed wait (see above).
#[cfg(loom)]
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    _timeout: Duration,
) -> Option<MutexGuard<'a, T>> {
    cv.wait(guard).ok()
}

/// Atomic integers and memory orderings (std or loom, matching the
/// parent module).
pub(crate) mod atomic {
    #[cfg(loom)]
    pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};

    #[cfg(not(loom))]
    pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
}
