//! Personalized search ranking (Section 3.4 of the paper): personalized
//! PageRank over a user's preference distribution, compared against
//! plain RWR from a single seed, plus the effective-importance variant
//! that corrects RWR's preference for high-degree nodes.
//!
//! ```text
//! cargo run --release --example ranking_search
//! ```

use bear_core::{Bear, BearConfig};
use bear_graph::generators::preferential_attachment;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn top_k(scores: &[f64], k: usize, exclude: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).filter(|u| !exclude.contains(u)).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    order.truncate(k);
    order
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let graph = preferential_attachment(800, 3, &mut rng);
    println!("graph: {} nodes, {} edges", graph.num_nodes(), graph.num_edges());

    let bear = Bear::new(&graph, &BearConfig::exact(0.15)).expect("preprocessing");
    let n = graph.num_nodes();

    // 1. Plain RWR: one seed.
    let seed = 500;
    let rwr = bear.query(seed).expect("rwr");
    println!("\nRWR top-10 for seed {seed}: {:?}", top_k(&rwr, 10, &[seed]));

    // 2. Personalized PageRank: the "user" has three interests, weighted.
    let interests = [(500usize, 0.6), (231, 0.3), (77, 0.1)];
    let mut q = vec![0.0; n];
    for &(node, w) in &interests {
        q[node] = w;
    }
    let ppr = bear.query_distribution(&q).expect("ppr");
    let exclude: Vec<usize> = interests.iter().map(|&(u, _)| u).collect();
    println!("PPR top-10 for interests {interests:?}: {:?}", top_k(&ppr, 10, &exclude));

    // PPR is the q-weighted superposition of single-seed queries.
    let parts: Vec<Vec<f64>> =
        interests.iter().map(|&(u, _)| bear.query(u).expect("query")).collect();
    for u in (0..n).step_by(97) {
        let mix: f64 = interests.iter().zip(&parts).map(|(&(_, w), part)| w * part[u]).sum();
        assert!((ppr[u] - mix).abs() < 1e-10);
    }
    println!("PPR equals the weighted mixture of per-seed RWR ✓");

    // 3. Effective importance: degree-normalized relevance. High-degree
    // celebrity hubs drop; close low-degree nodes rise.
    let ei = bear.query_effective_importance(seed).expect("ei");
    let rwr_top = top_k(&rwr, 10, &[seed]);
    let ei_top = top_k(&ei, 10, &[seed]);
    println!("\neffective-importance top-10 for seed {seed}: {ei_top:?}");
    let degrees = graph.undirected_degrees();
    let mean_deg =
        |list: &[usize]| list.iter().map(|&u| degrees[u] as f64).sum::<f64>() / list.len() as f64;
    println!(
        "mean degree of RWR top-10: {:.1}; of EI top-10: {:.1}",
        mean_deg(&rwr_top),
        mean_deg(&ei_top)
    );
    assert!(mean_deg(&ei_top) < mean_deg(&rwr_top), "EI failed to de-bias toward low-degree nodes");
    println!("EI de-biases the ranking away from high-degree hubs ✓");
}
