//! Sparse linear algebra substrate for the BEAR reproduction.
//!
//! This crate implements, from scratch, every matrix primitive the BEAR
//! algorithm (Shin et al., SIGMOD 2015) and its baselines need:
//!
//! * storage formats: [`CooMatrix`], [`CsrMatrix`], [`CscMatrix`],
//!   [`DenseMatrix`];
//! * kernels: sparse matrix–vector products, blocked multi-RHS products
//!   against column-major [`DenseBlock`]s (SpMM, bit-identical per column
//!   to the vector kernels), sparse matrix–matrix products (Gustavson
//!   SpGEMM), transposition, element-wise combination;
//! * factorizations: sparse LU without pivoting (Gilbert–Peierls
//!   left-looking, valid for the column-diagonally-dominant systems RWR
//!   produces), dense LU with partial pivoting, dense Householder QR,
//!   block-diagonal LU (Lemma 1 of the paper);
//! * triangular machinery: forward/backward substitution with dense and
//!   sparse right-hand sides (CSparse-style reachability), and sparse
//!   triangular inversion used to materialize `L⁻¹` / `U⁻¹`;
//! * spectral helpers: Jacobi symmetric eigensolver and randomized
//!   truncated SVD (used by the B_LIN / NB_LIN baselines);
//! * utilities: permutations, drop-tolerance sparsification, and nnz-based
//!   memory accounting mirroring the paper's space measurements.
//!
//! All formats store `f64` values with `usize` indices. Matrices are
//! immutable after construction; operations return new matrices.

pub mod block;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod eigen;
pub mod error;
pub mod lu;
pub mod mem;
pub mod mm_io;
pub mod ops;
pub mod parallel;
pub mod perm;
pub mod qr;
pub mod solvers;
pub mod sparse_qr;
pub mod sparsify;
pub mod svd;
pub mod triangular;
pub mod validate;

pub use block::DenseBlock;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{Error, Result};
pub use lu::{BlockDiagLu, DenseLu, SparseLu};
pub use mem::MemoryUsage;
pub use perm::Permutation;
pub use validate::Invariant;

/// Relative tolerance used by tests and internal sanity checks when
/// comparing floating point results.
pub const EPS: f64 = 1e-10;
