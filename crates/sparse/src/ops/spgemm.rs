//! Gustavson's row-wise sparse matrix–matrix multiplication.

use crate::csr::CsrMatrix;
use crate::error::{Error, Result};

/// Computes `C = A B` with Gustavson's algorithm: for each row of `A`,
/// scatter the scaled rows of `B` into a dense accumulator, then gather the
/// touched positions. Runs in `O(Σ_{a_ik ≠ 0} nnz(B_k,:))` — the classic
/// sparse-aware bound the paper's Lemma 3 assumes.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    if a.ncols() != b.nrows() {
        return Err(Error::DimensionMismatch {
            op: "spgemm",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let nrows = a.nrows();
    let ncols = b.ncols();

    let mut indptr = Vec::with_capacity(nrows + 1);
    let mut indices: Vec<usize> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    indptr.push(0);

    // Dense accumulator + "touched" stack, reset per row by replaying the
    // stack (never a full O(ncols) clear).
    let mut acc = vec![0.0f64; ncols];
    let mut mark = vec![false; ncols];
    let mut touched: Vec<usize> = Vec::new();

    for i in 0..nrows {
        let (a_cols, a_vals) = a.row(i);
        for (&k, &aik) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            for (&j, &bkj) in b_cols.iter().zip(b_vals) {
                if !mark[j] {
                    mark[j] = true;
                    touched.push(j);
                    acc[j] = aik * bkj;
                } else {
                    acc[j] += aik * bkj;
                }
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            let v = acc[j];
            mark[j] = false;
            if v != 0.0 {
                indices.push(j);
                values.push(v);
            }
        }
        touched.clear();
        indptr.push(indices.len());
    }
    Ok(CsrMatrix::from_raw_unchecked(nrows, ncols, indptr, indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::dense::DenseMatrix;

    fn to_dense(m: &CsrMatrix) -> DenseMatrix {
        m.to_dense()
    }

    #[test]
    fn identity_is_neutral() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(2, 0, -1.0);
        let a = coo.to_csr();
        let i = CsrMatrix::identity(3);
        assert_eq!(spgemm(&a, &i).unwrap(), a);
        assert_eq!(spgemm(&i, &a).unwrap(), a);
    }

    #[test]
    fn matches_dense_product() {
        let mut ca = CooMatrix::new(2, 3);
        ca.push(0, 0, 1.0);
        ca.push(0, 2, 2.0);
        ca.push(1, 1, 3.0);
        let mut cb = CooMatrix::new(3, 2);
        cb.push(0, 0, 4.0);
        cb.push(1, 1, 5.0);
        cb.push(2, 0, 6.0);
        let a = ca.to_csr();
        let b = cb.to_csr();
        let c = spgemm(&a, &b).unwrap();
        let expected = to_dense(&a).matmul(&to_dense(&b)).unwrap();
        assert!(to_dense(&c).max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::identity(3);
        assert!(spgemm(&a, &b).is_err());
    }

    #[test]
    fn cancellation_produces_no_stored_zero() {
        // A = [1 1], B = [[1], [-1]] => C = [0] exactly.
        let mut ca = CooMatrix::new(1, 2);
        ca.push(0, 0, 1.0);
        ca.push(0, 1, 1.0);
        let mut cb = CooMatrix::new(2, 1);
        cb.push(0, 0, 1.0);
        cb.push(1, 0, -1.0);
        let c = spgemm(&ca.to_csr(), &cb.to_csr()).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn zero_times_anything_is_zero() {
        let z = CsrMatrix::zeros(4, 5);
        let i = CsrMatrix::identity(5);
        let c = spgemm(&z, &i).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.nrows(), 4);
        assert_eq!(c.ncols(), 5);
    }
}
