//! Drop-tolerance sparsification (BEAR-Approx, Algorithm 1 line 9).

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;

/// Returns a copy of `a` with every entry of magnitude `< xi` removed.
/// `xi = 0` keeps everything (entries equal to the tolerance survive,
/// matching the paper's "absolute value smaller than ξ" wording).
pub fn drop_tolerance_csr(a: &CsrMatrix, xi: f64) -> CsrMatrix {
    if xi <= 0.0 {
        return a.clone();
    }
    let mut indptr = Vec::with_capacity(a.nrows() + 1);
    let mut indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    indptr.push(0);
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if v.abs() >= xi {
                indices.push(c);
                values.push(v);
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_unchecked(a.nrows(), a.ncols(), indptr, indices, values)
}

/// CSC counterpart of [`drop_tolerance_csr`].
pub fn drop_tolerance_csc(a: &CscMatrix, xi: f64) -> CscMatrix {
    if xi <= 0.0 {
        return a.clone();
    }
    let mut indptr = Vec::with_capacity(a.ncols() + 1);
    let mut indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    indptr.push(0);
    for c in 0..a.ncols() {
        let (rows, vals) = a.col(c);
        for (&r, &v) in rows.iter().zip(vals) {
            if v.abs() >= xi {
                indices.push(r);
                values.push(v);
            }
        }
        indptr.push(indices.len());
    }
    CscMatrix::from_raw_unchecked(a.nrows(), a.ncols(), indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1e-6);
        coo.push(1, 2, -1e-3);
        coo.to_csr()
    }

    #[test]
    fn zero_tolerance_keeps_everything() {
        let a = sample();
        assert_eq!(drop_tolerance_csr(&a, 0.0), a);
    }

    #[test]
    fn drops_below_threshold_keeps_above() {
        let a = sample();
        let d = drop_tolerance_csr(&a, 1e-4);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.get(1, 2), -1e-3); // |.| >= xi survives
        assert_eq!(d.get(0, 0), 1.0);
    }

    #[test]
    fn negative_values_compared_by_magnitude() {
        let a = sample();
        let d = drop_tolerance_csr(&a, 1e-2);
        assert_eq!(d.nnz(), 1);
        assert_eq!(d.get(0, 0), 1.0);
    }

    #[test]
    fn csc_agrees_with_csr() {
        let a = sample();
        let via_csr = drop_tolerance_csr(&a, 1e-4);
        let via_csc = drop_tolerance_csc(&a.to_csc(), 1e-4).to_csr();
        assert_eq!(via_csr, via_csc);
    }
}
