//! Property tests for the ordering and community machinery: RCM,
//! conductance/sweep cuts, and community orderings on arbitrary graphs.

use bear_graph::community::{community_degree_ordering, label_propagation};
use bear_graph::conductance::{conductance, sweep_cut};
use bear_graph::rcm::{bandwidth, reverse_cuthill_mckee};
use bear_graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..50).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 2))
            .prop_map(move |edges| Graph::from_edges(n, &edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn rcm_is_always_a_permutation(g in arb_graph()) {
        let order = reverse_cuthill_mckee(&g);
        prop_assert_eq!(order.len(), g.num_nodes());
        let mut seen = vec![false; g.num_nodes()];
        for &u in &order {
            prop_assert!(!seen[u]);
            seen[u] = true;
        }
    }

    #[test]
    fn bandwidth_is_order_independent_for_identity_check(g in arb_graph()) {
        // Bandwidth under any permutation is bounded by n-1 and is zero
        // iff there are no off-diagonal symmetrized edges.
        let order = reverse_cuthill_mckee(&g);
        let bw = bandwidth(&g, &order);
        prop_assert!(bw <= g.num_nodes().saturating_sub(1));
        let has_edge = g.symmetrized_pattern().nnz() > 0;
        prop_assert_eq!(bw == 0, !has_edge);
    }

    #[test]
    fn conductance_always_in_unit_range(g in arb_graph(), mask_seed in 0u64..100) {
        let sym = g.symmetrized_pattern();
        let n = g.num_nodes();
        let mut s = mask_seed.wrapping_add(3);
        let in_set: Vec<bool> = (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 40) % 2 == 0
            })
            .collect();
        let phi = conductance(&sym, &in_set);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&phi), "phi = {phi}");
    }

    #[test]
    fn sweep_cut_community_is_valid(g in arb_graph()) {
        let n = g.num_nodes();
        // Synthetic scores decaying from node 0.
        let scores: Vec<f64> = (0..n).map(|u| 1.0 / (1.0 + u as f64)).collect();
        let cut = sweep_cut(&g, &scores, n);
        prop_assert!(cut.community.len() <= n);
        // Members are distinct.
        let mut sorted = cut.community.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), cut.community.len());
        // Conductance consistent with a recomputation.
        if !cut.community.is_empty() {
            let sym = g.symmetrized_pattern();
            let mut in_set = vec![false; n];
            for &u in &cut.community {
                in_set[u] = true;
            }
            prop_assert!((cut.conductance - conductance(&sym, &in_set)).abs() < 1e-9);
        }
    }

    #[test]
    fn community_ordering_is_degree_monotone(g in arb_graph()) {
        let mut rng = StdRng::seed_from_u64(11);
        let labels = label_propagation(&g, 10, &mut rng);
        let order = community_degree_ordering(&g, &labels);
        let deg = g.undirected_degrees();
        for w in order.windows(2) {
            prop_assert!(deg[w[0]] <= deg[w[1]]);
        }
    }
}
