//! Drop-tolerance sparsification (BEAR-Approx, Algorithm 1 line 9).

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::Result;
use crate::parallel::{run_chunked, split_ranges};

/// Returns a copy of `a` with every entry of magnitude `< xi` removed.
/// `xi = 0` keeps everything (entries equal to the tolerance survive,
/// matching the paper's "absolute value smaller than ξ" wording).
///
/// The guard treats a NaN tolerance as "keep everything": with the old
/// `xi <= 0.0` form NaN fell through to the filter, where
/// `v.abs() >= NaN` is false for every entry and the whole matrix was
/// silently emptied. Config boundaries (`BearConfig`) additionally
/// reject non-finite and negative `ξ` outright.
pub fn drop_tolerance_csr(a: &CsrMatrix, xi: f64) -> CsrMatrix {
    if xi.is_nan() || xi <= 0.0 {
        return a.clone();
    }
    let mut indptr = Vec::with_capacity(a.nrows() + 1);
    let mut indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    indptr.push(0);
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if v.abs() >= xi {
                indices.push(c);
                values.push(v);
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_unchecked(a.nrows(), a.ncols(), indptr, indices, values)
}

/// CSC counterpart of [`drop_tolerance_csr`].
pub fn drop_tolerance_csc(a: &CscMatrix, xi: f64) -> CscMatrix {
    if xi.is_nan() || xi <= 0.0 {
        return a.clone();
    }
    let mut indptr = Vec::with_capacity(a.ncols() + 1);
    let mut indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    indptr.push(0);
    for c in 0..a.ncols() {
        let (rows, vals) = a.col(c);
        for (&r, &v) in rows.iter().zip(vals) {
            if v.abs() >= xi {
                indices.push(r);
                values.push(v);
            }
        }
        indptr.push(indices.len());
    }
    CscMatrix::from_raw_unchecked(a.nrows(), a.ncols(), indptr, indices, values)
}

/// Parallel [`drop_tolerance_csr`]: row ranges filtered on `threads`
/// scoped workers and stitched in row order, so the result is
/// bit-identical to the serial filter. Falls back to the serial path for
/// one thread, tiny matrices, or a no-op tolerance.
pub fn par_drop_tolerance_csr(a: &CsrMatrix, xi: f64, threads: usize) -> Result<CsrMatrix> {
    if xi.is_nan() || xi <= 0.0 {
        return Ok(a.clone());
    }
    let ranges = split_ranges(a.nrows(), threads);
    if ranges.len() <= 1 {
        return Ok(drop_tolerance_csr(a, xi));
    }
    let chunks = run_chunked(ranges, "par_drop_tolerance_csr", |range| {
        let mut row_ptr = Vec::with_capacity(range.len());
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in range {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if v.abs() >= xi {
                    indices.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(indices.len());
        }
        Ok((row_ptr, indices, values))
    })?;
    let mut indptr = Vec::with_capacity(a.nrows() + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0);
    for (row_ptr, idx, val) in chunks {
        let offset = indices.len();
        indptr.extend(row_ptr.iter().map(|&p| p + offset));
        indices.extend_from_slice(&idx);
        values.extend_from_slice(&val);
    }
    Ok(CsrMatrix::from_raw_unchecked(a.nrows(), a.ncols(), indptr, indices, values))
}

/// Parallel [`drop_tolerance_csc`]: column ranges filtered on `threads`
/// workers; see [`par_drop_tolerance_csr`].
pub fn par_drop_tolerance_csc(a: &CscMatrix, xi: f64, threads: usize) -> Result<CscMatrix> {
    if xi.is_nan() || xi <= 0.0 {
        return Ok(a.clone());
    }
    let ranges = split_ranges(a.ncols(), threads);
    if ranges.len() <= 1 {
        return Ok(drop_tolerance_csc(a, xi));
    }
    let chunks = run_chunked(ranges, "par_drop_tolerance_csc", |range| {
        let mut col_ptr = Vec::with_capacity(range.len());
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for c in range {
            let (rows, vals) = a.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                if v.abs() >= xi {
                    indices.push(r);
                    values.push(v);
                }
            }
            col_ptr.push(indices.len());
        }
        Ok((col_ptr, indices, values))
    })?;
    let mut indptr = Vec::with_capacity(a.ncols() + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0);
    for (col_ptr, idx, val) in chunks {
        let offset = indices.len();
        indptr.extend(col_ptr.iter().map(|&p| p + offset));
        indices.extend_from_slice(&idx);
        values.extend_from_slice(&val);
    }
    Ok(CscMatrix::from_raw_unchecked(a.nrows(), a.ncols(), indptr, indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1e-6);
        coo.push(1, 2, -1e-3);
        coo.to_csr()
    }

    #[test]
    fn zero_tolerance_keeps_everything() {
        let a = sample();
        assert_eq!(drop_tolerance_csr(&a, 0.0), a);
    }

    /// Regression: a NaN tolerance used to fall through to the filter
    /// where `v.abs() >= NaN` is false, silently dropping every entry.
    /// It must behave like "no tolerance" instead (and negative
    /// tolerances likewise keep everything).
    #[test]
    fn nan_tolerance_keeps_everything() {
        let a = sample();
        assert_eq!(drop_tolerance_csr(&a, f64::NAN), a);
        assert_eq!(drop_tolerance_csc(&a.to_csc(), f64::NAN), a.to_csc());
        assert_eq!(par_drop_tolerance_csr(&a, f64::NAN, 2).unwrap(), a);
        assert_eq!(drop_tolerance_csr(&a, -1.0), a);
    }

    #[test]
    fn drops_below_threshold_keeps_above() {
        let a = sample();
        let d = drop_tolerance_csr(&a, 1e-4);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.get(1, 2), -1e-3); // |.| >= xi survives
        assert_eq!(d.get(0, 0), 1.0);
    }

    #[test]
    fn negative_values_compared_by_magnitude() {
        let a = sample();
        let d = drop_tolerance_csr(&a, 1e-2);
        assert_eq!(d.nnz(), 1);
        assert_eq!(d.get(0, 0), 1.0);
    }

    #[test]
    fn csc_agrees_with_csr() {
        let a = sample();
        let via_csr = drop_tolerance_csr(&a, 1e-4);
        let via_csc = drop_tolerance_csc(&a.to_csc(), 1e-4).to_csr();
        assert_eq!(via_csr, via_csc);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut coo = CooMatrix::new(37, 23);
        for i in 0..37 {
            for j in 0..23 {
                if rng.gen_bool(0.3) {
                    coo.push(i, j, rng.gen_range(-1.0..1.0));
                }
            }
        }
        let a = coo.to_csr();
        let xi = 0.25;
        let serial_csr = drop_tolerance_csr(&a, xi);
        let serial_csc = drop_tolerance_csc(&a.to_csc(), xi);
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_drop_tolerance_csr(&a, xi, threads).unwrap(), serial_csr);
            assert_eq!(par_drop_tolerance_csc(&a.to_csc(), xi, threads).unwrap(), serial_csc);
        }
    }
}
