//! Label-propagation community detection.
//!
//! The LU-decomposition baseline (Fujiwara et al., PVLDB 2012) reorders
//! `H` "based on nodes' degrees and community structure" before factoring.
//! Synchronous-free label propagation (Raghavan et al.) is a standard
//! lightweight community detector that serves that reordering rule.

use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Runs asynchronous label propagation for at most `max_iters` sweeps and
/// returns a community label per node, relabelled to `0..num_communities`.
pub fn label_propagation<R: Rng>(g: &Graph, max_iters: usize, rng: &mut R) -> Vec<usize> {
    let n = g.num_nodes();
    let sym = g.symmetrized_pattern();
    let mut label: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = (0..n).collect();
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();

    for _ in 0..max_iters {
        order.shuffle(rng);
        let mut changed = false;
        for &u in &order {
            let (nbrs, _) = sym.row(u);
            if nbrs.is_empty() {
                continue;
            }
            counts.clear();
            for &v in nbrs {
                *counts.entry(label[v]).or_insert(0) += 1;
            }
            // Most frequent neighbor label; ties broken by smallest label
            // for determinism given the shuffled order.
            let best = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(&l, _)| l)
                .unwrap();
            if best != label[u] {
                label[u] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Compact labels to 0..k.
    let mut remap: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    label
        .iter()
        .map(|&l| {
            let next = remap.len();
            *remap.entry(l).or_insert(next)
        })
        .collect()
}

/// Ordering used by the LU-decomposition baseline: ascending degree
/// first (so the high-degree rows that cause fill-in land in the
/// bottom-right corner, mirroring Fujiwara's observation that this keeps
/// `L⁻¹`/`U⁻¹` sparse), with the community label and id as tiebreaks so
/// equal-degree nodes stay clustered. Returns the `new -> old` array.
pub fn community_degree_ordering(g: &Graph, labels: &[usize]) -> Vec<usize> {
    let deg = g.undirected_degrees();
    let mut order: Vec<usize> = (0..g.num_nodes()).collect();
    order.sort_unstable_by_key(|&u| (deg[u], labels[u], u));
    order
}

/// Number of distinct communities in a compacted labelling.
pub fn num_communities(labels: &[usize]) -> usize {
    labels.iter().copied().max().map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cliques_bridged() -> Graph {
        let edges = vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        Graph::from_edges(6, &edges).unwrap()
    }

    #[test]
    fn cliques_form_communities() {
        let g = two_cliques_bridged();
        let mut rng = StdRng::seed_from_u64(11);
        let labels = label_propagation(&g, 50, &mut rng);
        // Nodes within each clique should share labels.
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
    }

    #[test]
    fn labels_are_compacted() {
        let g = two_cliques_bridged();
        let mut rng = StdRng::seed_from_u64(5);
        let labels = label_propagation(&g, 50, &mut rng);
        let k = num_communities(&labels);
        assert!(labels.iter().all(|&l| l < k));
        assert!(k <= 6);
    }

    #[test]
    fn isolated_nodes_keep_own_labels() {
        let g = Graph::from_edges(3, &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let labels = label_propagation(&g, 10, &mut rng);
        assert_eq!(num_communities(&labels), 3);
    }

    #[test]
    fn ordering_is_a_permutation_grouped_by_community() {
        let g = two_cliques_bridged();
        let mut rng = StdRng::seed_from_u64(2);
        let labels = label_propagation(&g, 50, &mut rng);
        let order = community_degree_ordering(&g, &labels);
        let mut seen = [false; 6];
        for &u in &order {
            seen[u] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Degree must be non-decreasing along the order (hubs last).
        let deg = g.undirected_degrees();
        for w in order.windows(2) {
            assert!(deg[w[0]] <= deg[w[1]]);
        }
    }
}
