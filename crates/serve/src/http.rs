//! Minimal HTTP/1.1 wire handling: request parsing, response writing,
//! and a tiny blocking client for tests and load generation.
//!
//! This is deliberately a small subset of the protocol — exactly what
//! the serving front-end needs and nothing more:
//!
//! * requests: request line + headers, optional `Content-Length` body
//!   (bodies are read and discarded; every endpoint takes its input
//!   from the URL query string and headers);
//! * responses: fixed status line, explicit `Content-Length`, optional
//!   keep-alive;
//! * no chunked transfer encoding, no `Expect: continue`, no TLS.
//!
//! Hard limits keep a malicious or broken peer from pinning a
//! connection worker: header blocks over [`MAX_HEAD_BYTES`] and bodies
//! over [`MAX_BODY_BYTES`] are rejected with a typed [`HttpError`].

use std::io::{BufRead, Read, Write};

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body, in bytes (bodies are discarded).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire do not form a well-formed request.
    BadRequest(String),
    /// The request exceeded [`MAX_HEAD_BYTES`] or [`MAX_BODY_BYTES`].
    TooLarge,
    /// The underlying socket failed or timed out *before any byte of a
    /// request was consumed* — an idle connection. Retrying the read is
    /// safe.
    Io(std::io::Error),
    /// The socket timed out or failed *mid-request*: bytes of a partial
    /// request were already consumed off the wire, so the stream
    /// position is unrecoverable. Retrying the read would parse from the
    /// middle of the torn request (connection poisoning); the only safe
    /// move is to close.
    TornRead(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::TornRead(e) => write!(f, "torn read mid-request: {e}"),
        }
    }
}

/// One parsed request: method, decoded path, decoded query parameters,
/// and headers with lower-cased names.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Percent-decoded `key=value` pairs from the query string, in
    /// order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers as `(lowercase-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Whether the peer asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First query parameter named `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }
}

/// Decodes `%XX` escapes and `+` (as space) in a URL component. Invalid
/// escapes pass through literally — query values here are node ids and
/// graph names, not arbitrary payloads.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw target (`/v1/query?seed=3&graph=g`) into a decoded path
/// and decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), pairs)
}

/// Reads one CRLF- (or bare-LF-) terminated line, enforcing the running
/// head-size budget.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let take = *budget as u64 + 1;
    let n = match reader.by_ref().take(take).read_until(b'\n', &mut raw) {
        Ok(n) => n,
        // `read_until` may consume bytes *before* failing (e.g. a slow
        // peer trickles half a line, then the read timeout fires). Those
        // bytes are gone from the stream; report the loss as a torn read
        // so the caller closes instead of re-parsing from mid-line.
        Err(e) => {
            return Err(if raw.is_empty() { HttpError::Io(e) } else { HttpError::TornRead(e) })
        }
    };
    if n == 0 {
        return Ok(None); // clean EOF
    }
    if raw.last() != Some(&b'\n') {
        // Either the peer sent a torn line or the budget ran out.
        return Err(if n as u64 >= take {
            HttpError::TooLarge
        } else {
            HttpError::Io(std::io::ErrorKind::UnexpectedEof.into())
        });
    }
    *budget -= n.min(*budget);
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 bytes in request head".into()))
}

/// Escalates a retryable idle-socket error into a fatal torn read. Used
/// once the request line is in hand: from that point, any timeout left
/// a partial request on the wire.
fn escalate(e: HttpError) -> HttpError {
    match e {
        HttpError::Io(io)
            if matches!(
                io.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            HttpError::TornRead(io)
        }
        other => other,
    }
}

/// Parses one request off `reader`. Returns `Ok(None)` on a clean EOF
/// before any bytes (the peer closed an idle keep-alive connection).
/// A timeout before the first byte is [`HttpError::Io`] (retry is
/// safe); a timeout after any byte was consumed is
/// [`HttpError::TornRead`] (the connection must close).
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(request_line) = read_line(reader, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_ascii_uppercase(), t, v),
        _ => return Err(HttpError::BadRequest(format!("malformed request line '{request_line}'"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version '{version}'")));
    }
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader, &mut budget).map_err(escalate)? else {
            return Err(HttpError::Io(std::io::ErrorKind::UnexpectedEof.into()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header line '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query) = parse_target(target);
    let request =
        Request { keep_alive: keep_alive_of(version, &headers), method, path, query, headers };
    // Read and discard any body so the next keep-alive request parses
    // from a clean stream position.
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length '{len}'")))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge);
        }
        std::io::copy(&mut reader.by_ref().take(len as u64), &mut std::io::sink())
            .map_err(|e| escalate(HttpError::Io(e)))?;
    }
    Ok(Some(request))
}

/// HTTP/1.1 defaults to keep-alive unless `Connection: close`; HTTP/1.0
/// defaults to close unless `Connection: keep-alive`.
fn keep_alive_of(version: &str, headers: &[(String, String)]) -> bool {
    let connection =
        headers.iter().find(|(k, _)| k == "connection").map(|(_, v)| v.to_ascii_lowercase());
    match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => version != "HTTP/1.0",
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// One response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the always-emitted `Content-Length`,
    /// `Content-Type`, and `Connection`.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` value.
    pub content_type: &'static str,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// Appends a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response onto `w`.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, status_text(self.status))?;
        write!(w, "Content-Type: {}\r\n", self.content_type)?;
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: {}\r\n", if keep_alive { "keep-alive" } else { "close" })?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

// ---------------------------------------------------------------------------
// Blocking one-shot client (tests + load generator)
// ---------------------------------------------------------------------------

/// A response as seen by the [`client`] helpers.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers as `(lowercase-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Minimal blocking HTTP client: one request per connection
/// (`Connection: close`), used by the integration tests and the load
/// generator. Not exposed as a general-purpose client.
pub mod client {
    use super::ClientResponse;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    /// Issues `method` `target` against `addr` with extra `headers` and
    /// returns the parsed response.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut w = stream.try_clone()?;
        write!(w, "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n")?;
        for (name, value) in headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line '{status_line}'")))?;
        let mut headers = Vec::new();
        let mut content_length = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse::<usize>().ok();
                }
                headers.push((name, value));
            }
        }
        let mut body = Vec::new();
        match content_length {
            Some(len) => {
                body.resize(len, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
        Ok(ClientResponse { status, headers, body })
    }

    /// `GET target`.
    pub fn get(
        addr: SocketAddr,
        target: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        request(addr, "GET", target, headers)
    }

    /// `POST target` (no body — every endpoint takes URL parameters).
    pub fn post(
        addr: SocketAddr,
        target: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        request(addr, "POST", target, headers)
    }

    /// Extracts the JSON number array stored under `"key":[...]` in
    /// `body`. Good enough for the fixed shapes this server emits; not a
    /// general JSON parser.
    pub fn json_number_array(body: &str, key: &str) -> Option<Vec<f64>> {
        let needle = format!("\"{key}\":[");
        let start = body.find(&needle)? + needle.len();
        let end = start + body[start..].find(']')?;
        let inner = &body[start..end];
        if inner.trim().is_empty() {
            return Some(Vec::new());
        }
        inner.split(',').map(|tok| tok.trim().parse::<f64>().ok()).collect()
    }

    /// Extracts the JSON number stored under `"key":` in `body`.
    pub fn json_number(body: &str, key: &str) -> Option<f64> {
        let needle = format!("\"{key}\":");
        let start = body.find(&needle)? + needle.len();
        let rest = body[start..].trim_start();
        let end =
            rest.find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c))).unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_line_query_and_headers() {
        let req = parse(
            "GET /v1/query?graph=web%20graph&seed=42&flag HTTP/1.1\r\n\
             Host: localhost\r\nX-Deadline-Ms: 250\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.query_param("graph"), Some("web graph"));
        assert_eq!(req.query_param("seed"), Some("42"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.header("x-deadline-ms"), Some("250"));
        assert_eq!(req.header("X-DEADLINE-MS"), Some("250"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none_torn_requests_are_errors() {
        assert!(parse("").unwrap().is_none());
        assert!(matches!(parse("GET /incomplete"), Err(HttpError::Io(_))));
        assert!(matches!(parse("NONSENSE\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse("GET / SPDY/3\r\n\r\n"), Err(HttpError::BadRequest(_))));
    }

    /// Yields `data`, then fails every further read with `WouldBlock` —
    /// the shape of a slow peer tripping the socket read timeout.
    struct StallAfter(&'static [u8]);

    impl std::io::Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let n = self.0.len().min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }

    #[test]
    fn timeout_before_any_byte_is_retryable_io() {
        let mut reader = BufReader::new(StallAfter(b""));
        assert!(matches!(read_request(&mut reader), Err(HttpError::Io(_))));
    }

    #[test]
    fn timeout_mid_request_line_is_a_torn_read() {
        // Half a request line trickles in, then the timeout fires: the
        // consumed bytes are unrecoverable, so retrying the read would
        // parse from mid-stream. Must be TornRead, not retryable Io.
        let mut reader = BufReader::new(StallAfter(b"GET /v1/que"));
        assert!(matches!(read_request(&mut reader), Err(HttpError::TornRead(_))));
    }

    #[test]
    fn timeout_mid_headers_is_a_torn_read() {
        // The request line parsed cleanly but a header is in flight: the
        // stream holds a partial request, so an idle-style retry would
        // poison the connection.
        let mut reader = BufReader::new(StallAfter(b"GET / HTTP/1.1\r\nHost: lo"));
        assert!(matches!(read_request(&mut reader), Err(HttpError::TornRead(_))));
        let mut reader = BufReader::new(StallAfter(b"GET / HTTP/1.1\r\n"));
        assert!(matches!(read_request(&mut reader), Err(HttpError::TornRead(_))));
    }

    #[test]
    fn timeout_mid_body_drain_is_a_torn_read() {
        let mut reader = BufReader::new(StallAfter(
            b"POST /admin/load HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel",
        ));
        assert!(matches!(read_request(&mut reader), Err(HttpError::TornRead(_))));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let huge = format!("GET / HTTP/1.1\r\nX-Filler: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&huge), Err(HttpError::TooLarge)));
    }

    #[test]
    fn body_is_drained_for_keep_alive_reuse() {
        let raw = "POST /admin/load HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /healthz HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.method, "POST");
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
    }

    #[test]
    fn response_serialization_round_trips_through_client_parser() {
        let resp = Response::json(200, "{\"ok\":true}".into()).header("X-Graph-Version", "3");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, false).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Graph-Version: 3\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn json_helpers_extract_numbers() {
        let body = "{\"seed\":7,\"scores\":[0.5,1e-3,-2.25],\"empty\":[]}";
        assert_eq!(client::json_number(body, "seed"), Some(7.0));
        assert_eq!(client::json_number_array(body, "scores"), Some(vec![0.5, 1e-3, -2.25]));
        assert_eq!(client::json_number_array(body, "empty"), Some(vec![]));
        assert_eq!(client::json_number_array(body, "missing"), None);
    }
}
