//! Erdős–Rényi `G(n, m)` random graphs (used by tests and as a
//! structure-free control in the experiments).

use crate::graph::Graph;
use rand::Rng;

/// Samples a directed graph with `n` nodes and (up to) `m` edges drawn
/// uniformly; duplicate samples merge, self-loops are excluded.
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let mut edges = Vec::with_capacity(m);
    if n >= 2 {
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_node_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(50, 200, &mut rng);
        assert_eq!(g.num_nodes(), 50);
        assert!(g.num_edges() <= 200);
    }

    #[test]
    fn no_self_loops() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi(20, 500, &mut rng);
        assert!(g.edges().iter().all(|&(u, v, _)| u != v));
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(erdos_renyi(0, 10, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi(1, 10, &mut rng).num_edges(), 0);
    }
}
