//! Deterministic synthetic stand-ins for the BEAR paper's datasets.
//!
//! The paper evaluates on nine real-world graphs (Table 4, Appendix C)
//! that we do not redistribute. Each stand-in here is generated
//! deterministically (fixed seeds) and tuned so the *structural knobs
//! BEAR's complexity depends on* — the hub fraction `n₂/n` after
//! SlashBurn, the spoke block-size profile `Σ n₁ᵢ²`, and the density
//! `m/n` — qualitatively track the corresponding real dataset's profile,
//! at roughly 1/10–1/100 scale so the full method comparison runs on a
//! laptop. Section 3.3 of the paper shows these quantities are exactly
//! what drives every method's time and space, so matching them preserves
//! the evaluation's who-wins/crossover shapes.
//!
//! | Stand-in | Mimics | Profile targeted |
//! |---|---|---|
//! | `routing_like` | AS Routing | few hubs, tiny spoke blocks |
//! | `coauthor_like` | Condensed-matter co-authorship | moderate hubs, small communities |
//! | `trust_like` | Epinions trust | denser, larger hub set |
//! | `email_like` | EU research email | extremely spoke-heavy, tiny hub set |
//! | `web_stan_like` | Stanford web | large spoke blocks (big Σ n₁ᵢ²) |
//! | `web_notre_like` | Notre Dame web | medium blocks |
//! | `web_bs_like` | Berkeley–Stanford web | largest blocks + many hubs |
//! | `talk_like` | Wikipedia talk | huge, shallow, tiny blocks |
//! | `citation_like` | US patents | very large hub fraction |

pub mod registry;

pub use registry::{all_datasets, dataset_by_name, rmat_family, small_suite, DatasetSpec};
