//! Ablation (DESIGN.md §6): the two ordering rules inside BEAR's
//! preprocessing — hub reordering within `S` (Algorithm 1 line 7) and
//! ascending-degree ordering inside spoke blocks (Observation 1). Each is
//! toggled independently; the payoff shows up as nonzeros of the inverted
//! factors and preprocessing time.
//!
//! ```text
//! cargo run --release -p bear-bench --bin ablation_ordering \
//!     [--datasets a,b] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::load_dataset;
use bear_bench::harness::{measure, ExperimentResult, ResultRow};
use bear_core::{Bear, BearConfig};

fn main() {
    let args = Args::from_env();
    let opts = CommonOpts::from_args(&args, &["routing_like", "web_notre_like"]);
    let mut out = ExperimentResult::new(
        "ablation_ordering",
        "effect of hub reordering and block degree ordering on factor fill",
    );
    println!(
        "{:<16} {:<24} {:>9} {:>14} {:>14}",
        "dataset", "variant", "pre(s)", "|L1-1|+|U1-1|", "|L2-1|+|U2-1|"
    );
    for dataset in &opts.datasets {
        let g = load_dataset(dataset);
        for (label, reorder_hubs, sort_blocks) in [
            ("full (paper)", true, true),
            ("no hub reorder", false, true),
            ("no block ordering", true, false),
            ("neither", false, false),
        ] {
            let config = BearConfig {
                reorder_hubs,
                sort_blocks_by_degree: sort_blocks,
                ..BearConfig::default()
            };
            let (bear, pre_s) = measure(|| Bear::new(&g, &config).expect("preprocess"));
            let st = bear.stats();
            println!(
                "{:<16} {:<24} {:>9.3} {:>14} {:>14}",
                dataset,
                label,
                pre_s,
                st.nnz_spoke_factors(),
                st.nnz_hub_factors()
            );
            let mut row = ResultRow::new(dataset, "BEAR-Exact");
            row.param = Some(format!(
                "{label} spoke_nnz={} hub_nnz={}",
                st.nnz_spoke_factors(),
                st.nnz_hub_factors()
            ));
            row.preprocess_s = Some(pre_s);
            row.memory_bytes = Some(st.bytes);
            out.rows.push(row);
        }
    }
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
