//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API that this workspace's tests
//! use: range and tuple strategies, `prop_map` / `prop_flat_map`,
//! `collection::vec`, `Just`, the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim (they are `Debug`-printed before the body runs).
//! * **No regression-file replay.** `.proptest-regressions` files are
//!   not read (and are not kept in the tree); every recorded failure
//!   case is pinned as a concrete `#[test]` instead so it keeps running
//!   (see `tests/proptest_end_to_end.rs` for the pattern). Case counts
//!   scale with the upstream `PROPTEST_CASES` environment override.
//! * **Deterministic.** Case `i` of test `t` is generated from a seed
//!   derived from `(module_path, test name, i)`, so failures reproduce
//!   across runs without any persisted state.

use std::fmt::Debug;

/// Deterministic generator driving all strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the test identified by `test_id`.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        // FNV-1a over the id, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9e3779b97f4a7c15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` environment
    /// override, mirroring upstream proptest: `PROPTEST_CASES=1000
    /// cargo test` scales every property test without touching source.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

/// A value generator. Unlike real proptest there is no intermediate
/// `ValueTree`; strategies produce final values directly.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `f` (rejection sampling, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive values", self.whence);
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64 as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            // The macro reuses the generic parameter names (A, B, ...)
            // as local bindings, the standard trick for variadic tuple
            // impls; the allow is scoped to just this generated fn.
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Length bounds accepted by [`vec`].
    pub trait SizeRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + (rng.next_u64() as usize) % (self.max - self.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the message
/// on failure. Panics (real proptest returns an error for shrinking; with
/// no shrinking a panic reports identically).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("[proptest] {}", format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

/// Skips the current case when an assumption fails. Without shrinking or
/// rejection bookkeeping, the case simply returns early.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests. Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in collection::vec(0..5usize, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` in a `proptest!` block. A tt-muncher so a
/// single block can hold any number of test functions.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = config.resolved_cases();
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cases as u64 {
                let mut rng = $crate::TestRng::for_case(test_id, case);
                // One tuple strategy so generation order is left to right.
                let strategy = ($($strat,)+);
                let values = $crate::Strategy::generate(&strategy, &mut rng);
                let rendered = format!("{:?}", values);
                let ($($arg,)+) = values;
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body
                ));
                if let Err(payload) = outcome {
                    eprintln!(
                        "[proptest] {} failed at case {}/{} with inputs ({}) = {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        stringify!($($arg),+),
                        rendered
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..500 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let mut rng = TestRng::for_case("t", 1);
        let s = collection::vec(0usize..5, 2..7);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = collection::vec(0usize..5, 4..=4);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 4);
    }

    #[test]
    fn flat_map_threads_the_rng() {
        let mut rng = TestRng::for_case("t", 2);
        let s = (2usize..10).prop_flat_map(|n| collection::vec(0..n, n..=n));
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = collection::vec((0usize..100, 0.0f64..1.0), 0..20);
        let a = Strategy::generate(&s, &mut TestRng::for_case("same", 7));
        let b = Strategy::generate(&s, &mut TestRng::for_case("same", 7));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_binds(x in 0usize..10, v in collection::vec(0usize..5, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(x, x);
        }
    }
}
