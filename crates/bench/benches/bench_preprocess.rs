//! Criterion micro-benchmark: preprocessing cost of BEAR-Exact vs the
//! other preprocessing methods (the fast core of Figure 1(a)).

use bear_bench::params::params_for;
use bear_bench::{build_method, MethodSpec};
use bear_datasets::dataset_by_name;
use bear_sparse::mem::MemBudget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    let dataset = "small_routing";
    let g = dataset_by_name(dataset).unwrap().load();
    let params = params_for(dataset);
    let budget = MemBudget::unlimited();
    for spec in [
        MethodSpec::Bear { xi: 0.0 },
        MethodSpec::LuDecomp,
        MethodSpec::QrDecomp,
        MethodSpec::Inversion,
        MethodSpec::NbLin { xi: 0.0 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.display_name()),
            &spec,
            |b, spec| {
                b.iter(|| std::hint::black_box(build_method(spec, &g, &params, &budget).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_preprocess);
criterion_main!(benches);
