//! The eight RWR baselines the BEAR paper evaluates against
//! (Section 2.2), each behind the shared
//! [`RwrSolver`](bear_core::RwrSolver) trait:
//!
//! | Module | Method | Kind |
//! |---|---|---|
//! | [`iterative`] | power iteration on Equation (3) | exact (to ε) |
//! | [`rppr`] | restricted personalized PageRank (Gleich & Polito) | approximate |
//! | [`brppr`] | boundary-restricted PPR (Gleich & Polito) | approximate |
//! | [`inversion`] | dense `H⁻¹` | exact |
//! | [`lu_decomp`] | sparse LU of reordered `H`, inverted factors (Fujiwara et al.) | exact |
//! | [`qr_decomp`] | QR of reordered `H`, `Qᵀ` and `R⁻¹` (Fujiwara et al.) | exact |
//! | [`blin`] | partition + low-rank on cross edges + SMW (Tong et al.) | approximate |
//! | [`nblin`] | global low-rank + SMW (Tong et al.) | approximate |

pub mod blin;
pub mod brppr;
pub mod inversion;
pub mod iterative;
pub mod lu_decomp;
pub mod nblin;
pub mod qr_decomp;
pub mod rppr;

pub use blin::{BLin, BLinConfig};
pub use brppr::{Brppr, BrpprConfig};
pub use inversion::Inversion;
pub use iterative::{Iterative, IterativeConfig};
pub use lu_decomp::LuDecomp;
pub use nblin::{NbLin, NbLinConfig};
pub use qr_decomp::QrDecomp;
pub use rppr::{Rppr, RpprConfig};
