//! Block stacking of sparse matrices (used to reassemble partitioned
//! systems in tests and in the block-diagonal LU machinery).

use crate::csr::CsrMatrix;
use crate::error::{Error, Result};

/// Stacks `top` above `bottom` (they must have equal column counts).
pub fn vstack(top: &CsrMatrix, bottom: &CsrMatrix) -> Result<CsrMatrix> {
    if top.ncols() != bottom.ncols() {
        return Err(Error::DimensionMismatch {
            op: "vstack",
            lhs: (top.nrows(), top.ncols()),
            rhs: (bottom.nrows(), bottom.ncols()),
        });
    }
    let mut indptr = Vec::with_capacity(top.nrows() + bottom.nrows() + 1);
    indptr.extend_from_slice(top.indptr());
    let offset = top.nnz();
    indptr.extend(bottom.indptr()[1..].iter().map(|&p| p + offset));
    let mut indices = Vec::with_capacity(top.nnz() + bottom.nnz());
    indices.extend_from_slice(top.indices());
    indices.extend_from_slice(bottom.indices());
    let mut values = Vec::with_capacity(top.nnz() + bottom.nnz());
    values.extend_from_slice(top.values());
    values.extend_from_slice(bottom.values());
    Ok(CsrMatrix::from_raw_unchecked(
        top.nrows() + bottom.nrows(),
        top.ncols(),
        indptr,
        indices,
        values,
    ))
}

/// Stacks `left` beside `right` (they must have equal row counts).
pub fn hstack(left: &CsrMatrix, right: &CsrMatrix) -> Result<CsrMatrix> {
    if left.nrows() != right.nrows() {
        return Err(Error::DimensionMismatch {
            op: "hstack",
            lhs: (left.nrows(), left.ncols()),
            rhs: (right.nrows(), right.ncols()),
        });
    }
    let ncols = left.ncols() + right.ncols();
    let mut indptr = Vec::with_capacity(left.nrows() + 1);
    let mut indices = Vec::with_capacity(left.nnz() + right.nnz());
    let mut values = Vec::with_capacity(left.nnz() + right.nnz());
    indptr.push(0);
    for r in 0..left.nrows() {
        let (lc, lv) = left.row(r);
        indices.extend_from_slice(lc);
        values.extend_from_slice(lv);
        let (rc, rv) = right.row(r);
        indices.extend(rc.iter().map(|&c| c + left.ncols()));
        values.extend_from_slice(rv);
        indptr.push(indices.len());
    }
    Ok(CsrMatrix::from_raw_unchecked(left.nrows(), ncols, indptr, indices, values))
}

/// Assembles the 2×2 block matrix `[[a11, a12], [a21, a22]]`.
pub fn block2x2(
    a11: &CsrMatrix,
    a12: &CsrMatrix,
    a21: &CsrMatrix,
    a22: &CsrMatrix,
) -> Result<CsrMatrix> {
    let top = hstack(a11, a12)?;
    let bottom = hstack(a21, a22)?;
    vstack(&top, &bottom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    #[test]
    fn vstack_preserves_entries() {
        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::zeros(1, 2);
        let s = vstack(&a, &b).unwrap();
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(2, 0), 0.0);
    }

    #[test]
    fn hstack_offsets_columns() {
        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::identity(2);
        let s = hstack(&a, &b).unwrap();
        assert_eq!(s.ncols(), 4);
        assert_eq!(s.get(0, 2), 1.0);
        assert_eq!(s.get(1, 3), 1.0);
    }

    #[test]
    fn block2x2_reassembles_partition() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 1, 3.0);
        let a = coo.to_csr();
        let a11 = a.submatrix(0, 2, 0, 2).unwrap();
        let a12 = a.submatrix(0, 2, 2, 3).unwrap();
        let a21 = a.submatrix(2, 3, 0, 2).unwrap();
        let a22 = a.submatrix(2, 3, 2, 3).unwrap();
        let whole = block2x2(&a11, &a12, &a21, &a22).unwrap();
        assert_eq!(whole, a);
    }

    #[test]
    fn mismatched_shapes_rejected() {
        assert!(vstack(&CsrMatrix::identity(2), &CsrMatrix::identity(3)).is_err());
        assert!(hstack(&CsrMatrix::identity(2), &CsrMatrix::identity(3)).is_err());
    }
}
