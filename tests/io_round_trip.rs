//! Integration test: datasets survive an edge-list round trip through
//! disk, and a BEAR instance built from the reloaded graph answers
//! queries identically.

use bear_core::{Bear, BearConfig};
use bear_datasets::small_suite;
use bear_graph::io::{read_edge_list, write_edge_list};

#[test]
fn dataset_round_trips_through_edge_list_file() {
    let spec = &small_suite()[0];
    let g = spec.load();
    let path = std::env::temp_dir().join("bear_io_round_trip.txt");
    write_edge_list(&g, &path).unwrap();
    let reloaded = read_edge_list(&path, Some(g.num_nodes())).unwrap();
    assert_eq!(reloaded, g);
    std::fs::remove_file(&path).ok();
}

#[test]
fn reloaded_graph_produces_identical_rwr_scores() {
    let spec = &small_suite()[1];
    let g = spec.load();
    let path = std::env::temp_dir().join("bear_io_round_trip_scores.txt");
    write_edge_list(&g, &path).unwrap();
    let reloaded = read_edge_list(&path, Some(g.num_nodes())).unwrap();
    std::fs::remove_file(&path).ok();

    let bear1 = Bear::new(&g, &BearConfig::default()).unwrap();
    let bear2 = Bear::new(&reloaded, &BearConfig::default()).unwrap();
    for seed in [0, 5, g.num_nodes() - 1] {
        assert_eq!(bear1.query(seed).unwrap(), bear2.query(seed).unwrap());
    }
}
