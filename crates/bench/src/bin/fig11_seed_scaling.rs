//! Reproduces **Figure 11** (Appendix E.1): the effect of the number of
//! seeds on BEAR-Exact's query time across datasets. Expected shape: the
//! query time grows with the seed count but the rate of increase slows.
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig11_seed_scaling \
//!     [--datasets a,b,...] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::load_dataset;
use bear_bench::harness::{measure, ExperimentResult, ResultRow};
use bear_bench::methods::{build_method, MethodSpec};
use bear_bench::params::params_for;
use bear_datasets::all_datasets;
use bear_sparse::mem::MemBudget;

fn main() {
    let args = Args::from_env();
    let default_names: Vec<String> = all_datasets().iter().map(|d| d.name.to_string()).collect();
    let defaults: Vec<&str> = default_names.iter().map(|s| s.as_str()).collect();
    let opts = CommonOpts::from_args(&args, &defaults);
    let repeats = 5;

    let mut out = ExperimentResult::new("figure_11", "BEAR-Exact query time vs number of seeds");
    for dataset in &opts.datasets {
        let g = load_dataset(dataset);
        let params = params_for(dataset);
        let solver =
            build_method(&MethodSpec::Bear { xi: 0.0 }, &g, &params, &MemBudget::unlimited())
                .expect("BEAR-Exact preprocessing");
        let n = g.num_nodes();
        for k in [1usize, 10, 100, 1000] {
            let k_eff = k.min(n);
            let mut q = vec![0.0; n];
            for i in 0..k_eff {
                q[(i * 2654435761) % n] += 1.0;
            }
            let sum: f64 = q.iter().sum();
            for v in &mut q {
                *v /= sum;
            }
            let mut total = 0.0;
            for _ in 0..repeats {
                let (_, secs) = measure(|| solver.query_distribution(&q).expect("query"));
                total += secs;
            }
            let mut row = ResultRow::new(dataset, "BEAR-Exact");
            row.param = Some(format!("seeds={k}"));
            row.query_s = Some(total / repeats as f64);
            out.rows.push(row);
        }
    }
    out.print_table();
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
