//! Integration tests for the approximate methods: the qualitative claims
//! of Figures 6 and 8 — drop tolerance trades space for accuracy, small
//! tolerances stay near-exact, and the space footprint is monotone
//! non-increasing in the tolerance.

use bear_baselines::{Brppr, BrpprConfig, NbLin, NbLinConfig, Rppr, RpprConfig};
use bear_core::metrics::{cosine_similarity, l2_error};
use bear_core::{Bear, BearConfig, RwrSolver};
use bear_datasets::small_suite;

fn xi_grid(n: usize) -> Vec<f64> {
    let nf = n as f64;
    vec![0.0, nf.powf(-2.0), nf.powf(-1.0), nf.powf(-0.5), nf.powf(-0.25)]
}

#[test]
fn bear_approx_memory_monotone_in_drop_tolerance() {
    for spec in small_suite() {
        let g = spec.load();
        let mut last = usize::MAX;
        for xi in xi_grid(g.num_nodes()) {
            let bear = Bear::new(&g, &BearConfig::approx(0.05, xi)).unwrap();
            let bytes = bear.memory_bytes();
            assert!(bytes <= last, "{}: memory grew from {last} to {bytes} at xi={xi}", spec.name);
            last = bytes;
        }
    }
}

#[test]
fn bear_approx_accuracy_high_at_small_tolerance() {
    let spec = &small_suite()[0];
    let g = spec.load();
    let exact = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
    let n = g.num_nodes();
    let xi = (n as f64).powf(-1.0);
    let approx = Bear::new(&g, &BearConfig::approx(0.05, xi)).unwrap();
    for seed in [0, n / 3, 2 * n / 3] {
        let re = exact.query(seed).unwrap();
        let ra = approx.query(seed).unwrap();
        // The paper reports cosine > 0.999 and L2 < 1e-4 at xi = n^-1.
        let cos = cosine_similarity(&re, &ra);
        let l2 = l2_error(&re, &ra);
        assert!(cos > 0.99, "cosine {cos} too low at xi=n^-1");
        assert!(l2 < 1e-2, "L2 {l2} too high at xi=n^-1");
    }
}

#[test]
fn bear_approx_still_usable_at_large_tolerance() {
    // Note: on these few-hundred-node test graphs, `n^-1/4` is a far more
    // aggressive tolerance (≈0.24) than on the paper's graphs (n ≥ 23k ⇒
    // ≈0.08), so the aggressive-but-usable regime here is `n^-1/2`.
    let spec = &small_suite()[0];
    let g = spec.load();
    let exact = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
    let re = exact.query(1).unwrap();

    let xi = (g.num_nodes() as f64).powf(-0.5);
    let approx = Bear::new(&g, &BearConfig::approx(0.05, xi)).unwrap();
    let cos = cosine_similarity(&re, &approx.query(1).unwrap());
    assert!(cos > 0.9, "cosine {cos} collapsed at xi=n^-1/2");
    assert!(approx.memory_bytes() < exact.memory_bytes());

    // The most aggressive tolerance still yields a directionally useful
    // (positively correlated) ranking at a fraction of the space.
    let xi = (g.num_nodes() as f64).powf(-0.25);
    let coarse = Bear::new(&g, &BearConfig::approx(0.05, xi)).unwrap();
    let cos = cosine_similarity(&re, &coarse.query(1).unwrap());
    assert!(cos > 0.3, "cosine {cos} fully collapsed at xi=n^-1/4");
    assert!(coarse.memory_bytes() < approx.memory_bytes());
}

/// Sweeping the drop tolerance across fixed decades: the L1 error versus
/// exact BEAR is *zero* at ξ = 0 (the ξ = 0 factorization drops nothing,
/// so every query is bit-identical) and monotone non-decreasing as ξ
/// grows — more aggressive dropping can only lose information.
#[test]
fn bear_approx_l1_error_monotone_in_drop_tolerance() {
    let l1 = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>();
    for spec in &small_suite()[..2] {
        let g = spec.load();
        let n = g.num_nodes();
        let exact = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        let seeds = [0, n / 2, n - 1];
        let truth: Vec<Vec<f64>> = seeds.iter().map(|&s| exact.query(s).unwrap()).collect();
        let mut last = 0.0f64;
        for xi in [0.0, 1e-8, 1e-4, 1e-2] {
            let approx = Bear::new(&g, &BearConfig::approx(0.05, xi)).unwrap();
            let err: f64 = seeds
                .iter()
                .zip(&truth)
                .map(|(&s, want)| l1(&approx.query(s).unwrap(), want))
                .sum();
            if xi == 0.0 {
                assert_eq!(err, 0.0, "{}: xi=0 must be exactly exact", spec.name);
            }
            assert!(
                err >= last - 1e-12,
                "{}: L1 error fell from {last:.3e} to {err:.3e} at xi={xi}",
                spec.name
            );
            last = err;
        }
    }
}

#[test]
fn rppr_tightens_with_threshold() {
    let spec = &small_suite()[1];
    let g = spec.load();
    let exact = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
    let re = exact.query(20).unwrap();
    let err_at = |threshold: f64| {
        let solver =
            Rppr::new(&g, &RpprConfig { expand_threshold: threshold, ..RpprConfig::default() })
                .unwrap();
        l2_error(&solver.query(20).unwrap(), &re)
    };
    let tight = err_at(1e-9);
    let loose = err_at(0.3);
    assert!(tight <= loose + 1e-12, "tight {tight} worse than loose {loose}");
    assert!(tight < 1e-4, "RPPR at tiny threshold should be near exact: {tight}");
}

#[test]
fn brppr_tightens_with_threshold() {
    let spec = &small_suite()[1];
    let g = spec.load();
    let exact = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
    let re = exact.query(20).unwrap();
    let err_at = |threshold: f64| {
        let solver = Brppr::new(
            &g,
            &BrpprConfig { boundary_threshold: threshold, ..BrpprConfig::default() },
        )
        .unwrap();
        l2_error(&solver.query(20).unwrap(), &re)
    };
    assert!(err_at(1e-9) < 1e-4);
    assert!(err_at(1e-9) <= err_at(0.3) + 1e-12);
}

#[test]
fn nblin_accuracy_improves_with_rank() {
    let spec = &small_suite()[3];
    let g = spec.load();
    let exact = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
    let re = exact.query(7).unwrap();
    let cos_at = |rank: usize| {
        let nb = NbLin::new(&g, &NbLinConfig { rank, ..NbLinConfig::default() }).unwrap();
        cosine_similarity(&nb.query(7).unwrap(), &re)
    };
    let low = cos_at(5);
    let high = cos_at(60);
    assert!(high >= low - 0.05, "rank 60 ({high}) much worse than rank 5 ({low})");
    assert!(high > 0.9, "rank-60 NB_LIN cosine only {high}");
}

#[test]
fn bear_approx_beats_nblin_space_at_comparable_accuracy() {
    // The paper's headline trade-off claim (Figure 8(b)), checked in a
    // weak directional form on one dataset.
    let spec = &small_suite()[0];
    let g = spec.load();
    let exact = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
    let re = exact.query(3).unwrap();
    let xi = (g.num_nodes() as f64).powf(-0.5);
    let bear = Bear::new(&g, &BearConfig::approx(0.05, xi)).unwrap();
    let nb = NbLin::new(&g, &NbLinConfig { rank: 50, ..NbLinConfig::default() }).unwrap();
    let bear_cos = cosine_similarity(&bear.query(3).unwrap(), &re);
    let nb_cos = cosine_similarity(&nb.query(3).unwrap(), &re);
    assert!(bear_cos >= nb_cos - 0.02, "BEAR-Approx cosine {bear_cos} vs NB_LIN {nb_cos}");
    assert!(
        bear.memory_bytes() < nb.memory_bytes(),
        "BEAR-Approx {} bytes vs NB_LIN {} bytes",
        bear.memory_bytes(),
        nb.memory_bytes()
    );
}
