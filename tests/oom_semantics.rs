//! Integration tests for the memory-budget ("out of memory") semantics
//! the harness uses to reproduce the paper's omitted bars: dense methods
//! refuse before allocating, fill-bounded methods abort mid-flight, and
//! no-preprocessing methods are unaffected.

use bear_baselines::{Inversion, Iterative, IterativeConfig, LuDecomp, QrDecomp};
use bear_core::rwr::RwrConfig;
use bear_core::{Bear, BearConfig, RwrSolver};
use bear_datasets::small_suite;
use bear_sparse::mem::MemBudget;
use bear_sparse::Error;

#[test]
fn dense_methods_refuse_under_tiny_budget() {
    let g = small_suite()[0].load();
    let rwr = RwrConfig::default();
    let tiny = MemBudget::bytes(4096);
    assert!(matches!(Inversion::new(&g, &rwr, &tiny), Err(Error::OutOfBudget { .. })));
    assert!(matches!(QrDecomp::new(&g, &rwr, &tiny), Err(Error::OutOfBudget { .. })));
}

#[test]
fn lu_decomp_aborts_rather_than_filling_in() {
    let g = small_suite()[2].load(); // hub-heavy: whole-matrix inverse fills
    let rwr = RwrConfig::default();
    let tiny = MemBudget::bytes(16 * 1024);
    assert!(matches!(LuDecomp::new(&g, &rwr, &tiny), Err(Error::OutOfBudget { .. })));
}

#[test]
fn bear_honours_its_budget() {
    let g = small_suite()[0].load();
    let config = BearConfig { budget: MemBudget::bytes(256), ..BearConfig::default() };
    assert!(matches!(Bear::new(&g, &config), Err(Error::OutOfBudget { .. })));
}

#[test]
fn bear_fits_where_dense_methods_do_not() {
    // A budget sized so BEAR succeeds while inversion/QR refuse — the
    // crossover the paper's Figure 5 shows.
    let g = small_suite()[0].load();
    let rwr = RwrConfig::default();
    let bear = Bear::new(&g, &BearConfig::default()).unwrap();
    let budget_bytes = bear.memory_bytes() * 2;
    let budget = MemBudget::bytes(budget_bytes);
    let config = BearConfig { budget, ..BearConfig::default() };
    assert!(Bear::new(&g, &config).is_ok());
    assert!(matches!(Inversion::new(&g, &rwr, &budget), Err(Error::OutOfBudget { .. })));
    assert!(matches!(QrDecomp::new(&g, &rwr, &budget), Err(Error::OutOfBudget { .. })));
}

#[test]
fn iterative_method_needs_no_budget() {
    let g = small_suite()[0].load();
    let it = Iterative::new(&g, &IterativeConfig::default()).unwrap();
    assert_eq!(it.memory_bytes(), 0);
    assert!(it.query(0).is_ok());
}

#[test]
fn unlimited_budget_never_fails_for_budget_reasons() {
    let g = small_suite()[0].load();
    let rwr = RwrConfig::default();
    let unlimited = MemBudget::unlimited();
    assert!(Inversion::new(&g, &rwr, &unlimited).is_ok());
    assert!(QrDecomp::new(&g, &rwr, &unlimited).is_ok());
    assert!(LuDecomp::new(&g, &rwr, &unlimited).is_ok());
}
