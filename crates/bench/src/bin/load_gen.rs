//! Open-loop HTTP load generator for the serving front-end.
//!
//! Stands up a complete serving stack in-process — dataset →
//! preprocess → save → [`bear_serve::Server`] — then drives it with
//! open-loop traffic: each client thread sends on a fixed schedule
//! derived from `--rate`, never waiting for the previous response to
//! come back on time, so queueing delay shows up in the measured
//! latencies instead of silently throttling the offered load.
//!
//! Midway through the run (unless `--no-swap`), a new index version is
//! published through `POST /admin/load` while traffic flows, so the
//! recorded distribution includes the hot-swap window.
//!
//! ```text
//! cargo run --release -p bear-bench --bin load_gen -- \
//!     [--dataset small_routing] [--duration-ms 3000] [--rate 400]
//!     [--clients 4] [--deadline-ms 0] [--no-swap] [--retries 3]
//!     [--retry-base-ms 10] [--json results/BENCH_serving.json]
//! ```
//!
//! Retryable rejections (`429`, `503`) are retried up to `--retries`
//! times with jittered exponential backoff (deterministic LCG jitter,
//! so runs are reproducible), honoring the server's `Retry-After`
//! header as a floor on the wait; a request that exhausts its attempts
//! counts as `gave_up`, never as a transport failure. Backoff sleeps
//! delay that client's open-loop schedule — visible backpressure, by
//! design.
//!
//! Any `500`-class response other than the deadline-mapped `504` fails
//! the run — the smoke gate CI relies on.

use bear_bench::cli::Args;
use bear_bench::harness::{ExperimentResult, ResultRow};
use bear_core::{Bear, BearConfig, EngineConfig, QueryEngine};
use bear_serve::{client, ClientResponse, Registry, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    status_429: AtomicU64,
    status_504: AtomicU64,
    other_4xx: AtomicU64,
    failures: AtomicU64,
    /// Individual retry attempts issued after a 429/503.
    retries: AtomicU64,
    /// Requests still rejected (429/503) after the attempt budget.
    gave_up: AtomicU64,
}

/// Deterministic 64-bit LCG step (Knuth's MMIX constants) — the jitter
/// source, so two runs with the same flags back off identically.
fn lcg(state: u64) -> u64 {
    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// Retry policy for one request: jittered exponential backoff on
/// retryable rejections, bounded attempts, `Retry-After` honored as a
/// floor. Returns the final response (or transport error) and how many
/// retries were spent.
fn get_with_retry(
    addr: std::net::SocketAddr,
    target: &str,
    headers: &[(&str, &str)],
    max_retries: u32,
    base: Duration,
    mut rng: u64,
) -> (std::io::Result<ClientResponse>, u64) {
    let mut attempt = 0u32;
    loop {
        let result = client::get(addr, target, headers);
        let retryable = matches!(&result, Ok(resp) if resp.status == 429 || resp.status == 503);
        if !retryable || attempt >= max_retries {
            return (result, attempt as u64);
        }
        let retry_after = match &result {
            Ok(resp) => resp
                .header("retry-after")
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_secs),
            Err(_) => None,
        };
        // Exponential base doubling per attempt, jittered into
        // [0.5x, 1.5x] to decorrelate clients that were rejected by the
        // same overload spike.
        rng = lcg(rng);
        let jitter = 0.5 + (rng >> 40) as f64 / (1u64 << 24) as f64;
        let mut wait = base.mul_f64(f64::from(1u32 << attempt.min(6))).mul_f64(jitter);
        if let Some(floor) = retry_after {
            wait = wait.max(floor);
        }
        std::thread::sleep(wait);
        attempt += 1;
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let args = Args::from_env();
    let dataset = args.get("--dataset").unwrap_or("small_routing").to_string();
    let duration = Duration::from_millis(args.get_or("--duration-ms", 3000u64).max(100));
    let rate: f64 = args.get_or("--rate", 400.0f64).max(1.0);
    let clients: usize = args.get_or("--clients", 4usize).max(1);
    let deadline_ms: u64 = args.get_or("--deadline-ms", 0u64);
    let max_retries: u32 = args.get_or("--retries", 3u32);
    let retry_base = Duration::from_millis(args.get_or("--retry-base-ms", 10u64).max(1));
    let swap = !args.has("--no-swap");
    let json_path = args.get("--json").unwrap_or("results/BENCH_serving.json").to_string();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let spec = bear_datasets::dataset_by_name(&dataset)
        .unwrap_or_else(|| panic!("unknown dataset '{dataset}'"));
    let g = spec.load();
    let bear = Bear::new(&g, &BearConfig::exact(0.05)).expect("preprocess");
    let n = bear.num_nodes();
    let index_path = std::env::temp_dir().join("bear_load_gen.idx");
    bear.save(&index_path).expect("save index");

    let engine_config = EngineConfig::default();
    let engine = QueryEngine::new(Arc::new(bear), engine_config.clone()).expect("engine");
    let registry = Arc::new(Registry::new());
    registry.publish("bench", Arc::new(engine));
    let server = Server::start(
        registry,
        ServerConfig { http_threads: clients.max(2), engine_config, ..ServerConfig::default() },
    )
    .expect("start server");
    let addr = server.addr();
    println!(
        "load_gen: dataset={dataset} n={n} | host cores: {host_cores} | \
         {rate:.0} req/s open-loop x {:?} over {clients} client(s), \
         deadline={deadline_ms}ms swap={swap} @ http://{addr}",
        duration
    );

    let tally = Arc::new(Tally::default());
    let interval = Duration::from_secs_f64(clients as f64 / rate);
    let start = Instant::now();
    let deadline_header = format!("{deadline_ms}");
    let senders: Vec<_> = (0..clients)
        .map(|c| {
            let tally = Arc::clone(&tally);
            let deadline_header = deadline_header.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let mut k = 0u64;
                loop {
                    // Open-loop schedule: request k fires at start +
                    // offset + k*interval regardless of earlier replies.
                    let due = start
                        + interval.mul_f64(c as f64 / clients as f64)
                        + interval.mul_f64(k as f64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    if start.elapsed() >= duration {
                        return latencies;
                    }
                    let seed = (k as usize * 2654435761 + c * 97) % n;
                    let headers: &[(&str, &str)] =
                        if deadline_ms > 0 { &[("X-Deadline-Ms", &deadline_header)] } else { &[] };
                    let sent = Instant::now();
                    let jitter_seed = lcg((c as u64) << 32 | k);
                    let (result, retries) = get_with_retry(
                        addr,
                        &format!("/v1/query?graph=bench&seed={seed}"),
                        headers,
                        max_retries,
                        retry_base,
                        jitter_seed,
                    );
                    tally.retries.fetch_add(retries, Ordering::Relaxed);
                    match result {
                        Ok(resp) => {
                            // Latency spans the whole retry ladder: what
                            // a caller with this policy actually waits.
                            latencies.push(sent.elapsed().as_secs_f64());
                            match resp.status {
                                200 => tally.ok.fetch_add(1, Ordering::Relaxed),
                                429 | 503 => {
                                    tally.gave_up.fetch_add(1, Ordering::Relaxed);
                                    tally.status_429.fetch_add(1, Ordering::Relaxed)
                                }
                                504 => tally.status_504.fetch_add(1, Ordering::Relaxed),
                                400..=499 => tally.other_4xx.fetch_add(1, Ordering::Relaxed),
                                _ => tally.failures.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                        Err(_) => {
                            tally.failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    k += 1;
                }
            })
        })
        .collect();

    if swap {
        std::thread::sleep(duration / 2);
        let resp = client::post(
            addr,
            &format!("/admin/load?graph=bench&index={}", index_path.display()),
            &[],
        )
        .expect("hot swap request");
        assert_eq!(resp.status, 200, "hot swap must publish: {}", resp.body_str());
        println!("hot-swapped to version 2 at t={:?}", start.elapsed());
    }

    let mut latencies: Vec<f64> = Vec::new();
    for s in senders {
        latencies.extend(s.join().expect("sender thread"));
    }
    let wall = start.elapsed().as_secs_f64();
    server.shutdown();
    std::fs::remove_file(&index_path).ok();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let total = latencies.len() as u64 + tally.failures.load(Ordering::Relaxed);
    let ok = tally.ok.load(Ordering::Relaxed);
    let r429 = tally.status_429.load(Ordering::Relaxed);
    let r504 = tally.status_504.load(Ordering::Relaxed);
    let r4xx = tally.other_4xx.load(Ordering::Relaxed);
    let failures = tally.failures.load(Ordering::Relaxed);
    let retries = tally.retries.load(Ordering::Relaxed);
    let gave_up = tally.gave_up.load(Ordering::Relaxed);
    let throughput = ok as f64 / wall;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    let mut out = ExperimentResult::new(
        "serving_load",
        &format!(
            "open-loop HTTP load against the bear-serve front-end \
             ({rate:.0} req/s x {clients} clients, deadline={deadline_ms}ms, \
             hot_swap={swap}); host_cores={host_cores}"
        ),
    );
    let base_param = format!(
        "rate={rate:.0} clients={clients} deadline_ms={deadline_ms} host_cores={host_cores}"
    );
    let mut row = ResultRow::new(&dataset, "http_p50");
    row.param = Some(base_param.clone());
    row.query_s = Some(p50);
    out.rows.push(row);
    let mut row = ResultRow::new(&dataset, "http_p99");
    row.param = Some(base_param.clone());
    row.query_s = Some(p99);
    out.rows.push(row);
    let mut row = ResultRow::new(&dataset, "http_throughput");
    row.param = Some(format!(
        "{base_param} qps={throughput:.1} total={total} ok={ok} \
         r429={r429} r504={r504} other_4xx={r4xx} transport_failures={failures} \
         retries={retries} gave_up={gave_up} max_retries={max_retries}"
    ));
    row.query_s = Some(if throughput > 0.0 { 1.0 / throughput } else { 0.0 });
    out.rows.push(row);
    out.print_table();
    out.write_json(&json_path).expect("write json");
    println!("wrote {json_path}");

    assert!(ok > 0, "no successful responses at all");
    assert_eq!(failures, 0, "transport-level failures (connect/read errors or 5xx) detected");
    let served = ok + r429 + r504;
    println!(
        "done: {served} served / {total} sent in {wall:.2}s -> {throughput:.1} ok/s \
         (p50 {:.3}ms, p99 {:.3}ms; {retries} retries, {gave_up} gave up)",
        p50 * 1e3,
        p99 * 1e3
    );
}
