//! Pruned top-k query speedup: the recordable evidence for the exact
//! pruned top-k path ([`Bear::query_top_k_pruned`]). Two generated
//! datasets, answering the same seed set at k ∈ {1, 8, 32} through
//!
//! * the full path: `query_into` over all n nodes, then
//!   `top_k_excluding_seed`, and
//! * the pruned path: hub sweep + certified partial spoke resolution,
//!
//! verifying on both that the pruned ranking is **bit-identical** to the
//! full one (nodes, order, and `f64` bits — correctness gates, perf is
//! recorded), and reporting per-query latency, the speedup, the fraction
//! of spoke nodes never resolved (prune ratio), and how many queries
//! certified without falling back.
//!
//! The datasets probe opposite ends of the block-size spectrum:
//!
//! * `rmat_scale{s}` — the paper's Section 4.4 generator (p_ul = 0.7).
//!   SlashBurn shreds R-MAT spokes into thousands of singleton blocks
//!   and the hub factors carry ~98% of the query flops, so spoke
//!   pruning cannot repay its bookkeeping; many leaf spokes also tie
//!   bit-for-bit, which the strict certificate refuses to prune.
//!   Recorded as honest adversarial evidence.
//! * `hub_spoke` — the repo's dataset stand-in generator ("cave"
//!   components per Table 4): ~120 dense blocks of up to 120 nodes
//!   behind a small hub core. Spoke back-substitution dominates the
//!   query, bounds certify every seed, and ~95% of spoke nodes are
//!   never resolved — the regime the pruned path exists for, where the
//!   ≥ 5× target applies.
//!
//! ```text
//! cargo run --release -p bear-bench --bin topk_speedup \
//!     [--reps 5] [--seeds 64] [--scale 13] [--json results/BENCH_topk.json]
//! ```

use bear_bench::cli::Args;
use bear_bench::harness::{measure, ExperimentResult, ResultRow};
use bear_core::topk::top_k_excluding_seed;
use bear_core::{Bear, BearConfig, QueryWorkspace, TopKPruneOptions};
use bear_graph::generators::{hub_and_spoke, rmat, HubSpokeConfig, RmatConfig};
use bear_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let reps: usize = args.get_or("--reps", 5usize).max(1);
    let num_seeds: usize = args.get_or("--seeds", 64usize).max(1);
    let scale: u32 = args.get_or("--scale", 13u32).clamp(8, 20);
    let json_path = args.get("--json").unwrap_or("results/BENCH_topk.json").to_string();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let nodes = 1usize << scale;
    let rmat_graph =
        rmat(&RmatConfig::paper(scale, nodes * 8, 0.7), &mut StdRng::seed_from_u64(42));
    let hub_spoke_graph = hub_and_spoke(
        &HubSpokeConfig {
            num_hubs: 64,
            num_caves: 120,
            max_cave_size: 120,
            cave_density: 0.3,
            hub_links: 2,
            hub_density: 0.3,
        },
        &mut StdRng::seed_from_u64(7),
    );
    let datasets: [(String, &Graph); 2] =
        [(format!("rmat_scale{scale}"), &rmat_graph), ("hub_spoke".to_string(), &hub_spoke_graph)];

    let mut out = ExperimentResult::new(
        "topk_speedup",
        &format!(
            "pruned exact top-k vs full-vector ranking on R-MAT scale {scale} and the \
             hub_spoke dataset stand-in (best of {reps} passes over {num_seeds} seeds); \
             host grants {host_cores} core(s); pruned rankings bit-identical to full"
        ),
    );

    for (dataset, g) in &datasets {
        let bear = Bear::new(g, &BearConfig::exact(0.05)).expect("preprocess");
        let n = bear.num_nodes();
        let seeds: Vec<usize> = (0..num_seeds).map(|i| (i * 2654435761) % n).collect();
        println!(
            "[{dataset}] n={} m={} | n1={} spokes, n2={} hubs | host cores: {host_cores} | \
             {num_seeds} seeds, best of {reps} passes",
            g.num_nodes(),
            g.num_edges(),
            bear.n_spokes(),
            bear.n_hubs()
        );

        let mut ws = QueryWorkspace::for_bear(&bear);
        let mut full = vec![0.0; n];
        let opts = TopKPruneOptions::default();
        println!(
            "{:<8} {:>14} {:>14} {:>9} {:>12} {:>10}",
            "k", "full(us)", "pruned(us)", "speedup", "prune-ratio", "certified"
        );

        for k in [1usize, 8, 32] {
            // Full path: solve all n scores, then select.
            let mut full_s = f64::INFINITY;
            for _ in 0..reps {
                let (_, secs) = measure(|| {
                    for &seed in &seeds {
                        bear.query_into(seed, &mut ws, &mut full).expect("query");
                        std::hint::black_box(top_k_excluding_seed(&full, seed, k));
                    }
                });
                full_s = full_s.min(secs);
            }

            // Pruned path, timed.
            let mut pruned_s = f64::INFINITY;
            for _ in 0..reps {
                let (_, secs) = measure(|| {
                    for &seed in &seeds {
                        std::hint::black_box(
                            bear.query_top_k_pruned_in(seed, k, &opts, &mut ws).expect("pruned"),
                        );
                    }
                });
                pruned_s = pruned_s.min(secs);
            }

            // Correctness gate + stats pass (untimed): every pruned ranking
            // bit-identical to the full one, accounting covers every node.
            let mut certified = 0usize;
            let mut pruned_nodes = 0u64;
            let mut candidates = 0u64;
            for &seed in &seeds {
                bear.query_into(seed, &mut ws, &mut full).expect("query");
                let want = top_k_excluding_seed(&full, seed, k);
                let (got, stats) =
                    bear.query_top_k_pruned_in(seed, k, &opts, &mut ws).expect("pruned");
                assert_eq!(got.len(), want.len(), "k={k} seed={seed}: length");
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.node, b.node, "k={k} seed={seed}: rank order diverged");
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "k={k} seed={seed}: score bits diverged"
                    );
                }
                certified += stats.certified as usize;
                pruned_nodes += stats.nodes_pruned as u64;
                candidates += stats.candidates as u64;
            }

            let full_q = full_s / num_seeds as f64;
            let pruned_q = pruned_s / num_seeds as f64;
            let speedup = full_q / pruned_q;
            let prune_ratio = pruned_nodes as f64 / (pruned_nodes + candidates).max(1) as f64;
            println!(
                "{:<8} {:>14.3} {:>14.3} {:>8.2}x {:>11.1}% {:>7}/{}",
                k,
                full_q * 1e6,
                pruned_q * 1e6,
                speedup,
                prune_ratio * 100.0,
                certified,
                num_seeds
            );

            let mut row = ResultRow::new(dataset, "topk_full");
            row.param = Some(format!("k={k} host_cores={host_cores}"));
            row.query_s = Some(full_q);
            out.rows.push(row);
            let mut row = ResultRow::new(dataset, "topk_pruned");
            row.param = Some(format!(
                "k={k} speedup_vs_full={speedup:.3} prune_ratio={prune_ratio:.4} \
                 certified={certified}/{num_seeds} host_cores={host_cores}"
            ));
            row.query_s = Some(pruned_q);
            out.rows.push(row);

            if speedup < 5.0 {
                println!(
                    "  note: speedup {speedup:.2}x below the 5x target at k={k} \
                     (recorded as evidence; correctness is the gate)"
                );
            }
        }
    }

    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    out.write_json(&json_path).expect("write json");
    println!("wrote {json_path}");
}
