//! Deep structural validation of sparse-matrix invariants.
//!
//! Every format in this crate carries invariants the type system cannot
//! see: CSR/CSC index sortedness, `indptr` monotonicity, permutation
//! bijectivity, block layouts that tile the partition dimension, and
//! finiteness of stored values. The [`Invariant`] trait makes each of them
//! checkable on demand:
//!
//! * [`Invariant::validate`] performs a *complete* O(size) audit of a
//!   value, returning the first violation as a typed [`Error`]. Unlike the
//!   `from_raw` constructors (which check structure only), `validate` also
//!   rejects NaN/infinite values, because every downstream consumer — LU
//!   factorization, RWR iteration, the serving engine — silently poisons
//!   its output when fed a non-finite entry.
//! * The `try_from_parts` constructors on each type build a value and run
//!   `validate` on it, giving callers on trust boundaries (deserialization
//!   in `bear-core::persist`, file ingestion) a single fallible entry
//!   point.
//! * With the `strict-invariants` cargo feature enabled, the
//!   `from_raw_unchecked` constructors run `validate` too and panic on
//!   violation — turning "garbage in, garbage out" into a crash at the
//!   construction site. This is a debugging mode: release builds without
//!   the feature keep the unchecked fast path.
//!
//! The [`Mutation`] catalogue (and `apply_mutation` on the compressed
//! formats) deliberately breaks one invariant at a time by reaching past
//! the public constructors; the property tests use it to prove that every
//! class of corruption is rejected.

use crate::error::{Error, Result};

/// A type with machine-checkable structural invariants.
pub trait Invariant {
    /// Audits every invariant of `self`, returning the first violation.
    ///
    /// A `Ok(())` from `validate` means the value is safe to hand to any
    /// kernel in this crate: all checks performed by the checked
    /// constructors hold, and every stored `f64` is finite.
    fn validate(&self) -> Result<()>;
}

/// Validates the shared structure of a compressed (CSR/CSC) format:
/// `indptr` covers `outer + 1` entries, starts at zero, is monotone, ends
/// at `nnz`; inner indices are strictly increasing within each segment and
/// `< inner`; `indices` and `values` have equal length.
///
/// `axis` names the outer dimension in error messages ("row" for CSR,
/// "column" for CSC).
pub(crate) fn check_compressed(
    axis: &str,
    outer: usize,
    inner: usize,
    indptr: &[usize],
    indices: &[usize],
    values: &[f64],
) -> Result<()> {
    if indptr.len() != outer + 1 {
        return Err(Error::InvalidStructure(format!(
            "indptr length {} != {axis} count + 1 = {}",
            indptr.len(),
            outer + 1
        )));
    }
    if indptr[0] != 0 {
        return Err(Error::InvalidStructure("indptr[0] != 0".into()));
    }
    if indices.len() != values.len() {
        return Err(Error::InvalidStructure(format!(
            "indices length {} != values length {}",
            indices.len(),
            values.len()
        )));
    }
    if *indptr.last().unwrap() != indices.len() {
        return Err(Error::InvalidStructure(format!(
            "indptr[last] {} != nnz {}",
            indptr.last().unwrap(),
            indices.len()
        )));
    }
    for seg in 0..outer {
        if indptr[seg] > indptr[seg + 1] {
            return Err(Error::InvalidStructure(format!("indptr decreases at {axis} {seg}")));
        }
        // Must hold before slicing: only the *final* entry was checked
        // against nnz above, so a corrupt intermediate entry (monotone so
        // far, out of bounds) would otherwise panic here instead of
        // returning a typed error.
        if indptr[seg + 1] > indices.len() {
            return Err(Error::InvalidStructure(format!(
                "indptr[{}] = {} exceeds nnz {} at {axis} {seg}",
                seg + 1,
                indptr[seg + 1],
                indices.len()
            )));
        }
        let segment = &indices[indptr[seg]..indptr[seg + 1]];
        for w in segment.windows(2) {
            if w[0] >= w[1] {
                return Err(Error::InvalidStructure(format!(
                    "indices not strictly increasing in {axis} {seg}"
                )));
            }
        }
        if let Some(&i) = segment.last() {
            if i >= inner {
                return Err(Error::IndexOutOfBounds { index: i, bound: inner });
            }
        }
    }
    Ok(())
}

/// Rejects the first NaN or infinite entry in `values`.
pub(crate) fn check_finite(values: &[f64]) -> Result<()> {
    match values.iter().position(|v| !v.is_finite()) {
        Some(at) => Err(Error::NonFiniteValue { at }),
        None => Ok(()),
    }
}

/// Panics with a diagnostic if `value` fails validation. Called from the
/// `from_raw_unchecked` constructors when `strict-invariants` is enabled.
#[cfg(feature = "strict-invariants")]
pub(crate) fn assert_strict<T: Invariant>(value: &T, site: &str) {
    if let Err(e) = value.validate() {
        panic!("strict-invariants: {site} produced an invalid value: {e}");
    }
}

/// One deliberately broken invariant, applied by `apply_mutation` on
/// [`crate::CsrMatrix`] / [`crate::CscMatrix`].
///
/// These helpers exist so tests can prove [`Invariant::validate`] rejects
/// each corruption class; they bypass every constructor check (including
/// `strict-invariants`) by mutating private fields directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Swaps the first two inner indices of the first segment holding at
    /// least two entries, breaking sortedness.
    SwapAdjacentIndices,
    /// Overwrites an inner index with its neighbour, creating a duplicate.
    DuplicateIndex,
    /// Sets an inner index to the inner dimension (one past the bound).
    OutOfBoundsIndex,
    /// Makes `indptr` inconsistent by incrementing its final entry.
    BreakIndptr,
    /// Replaces the first stored value with NaN.
    InjectNan,
}

/// One deliberately broken permutation invariant, applied by
/// `apply_mutation` on [`crate::Permutation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermMutation {
    /// Duplicates the first entry of the `new -> old` array, so the map is
    /// no longer injective.
    DuplicateEntry,
    /// Sets the first entry of the `new -> old` array out of bounds.
    OutOfBoundsEntry,
    /// Desynchronizes the cached inverse from the forward array.
    InconsistentInverse,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::dense::DenseMatrix;
    use crate::lu::BlockDiagLu;
    use crate::perm::Permutation;

    fn sample() -> CsrMatrix {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 2.0);
        m.push(0, 2, 1.0);
        m.push(1, 1, 3.0);
        m.push(2, 0, 4.0);
        m.to_csr()
    }

    #[test]
    fn valid_instances_pass() {
        assert!(sample().validate().is_ok());
        assert!(sample().to_csc().validate().is_ok());
        assert!(CsrMatrix::zeros(4, 2).validate().is_ok());
        assert!(Permutation::identity(5).validate().is_ok());
        assert!(DenseMatrix::identity(3).validate().is_ok());
    }

    #[test]
    fn try_from_parts_accepts_valid_and_rejects_nan() {
        let m = sample();
        let ok = CsrMatrix::try_from_parts(
            3,
            3,
            m.indptr().to_vec(),
            m.indices().to_vec(),
            m.values().to_vec(),
        );
        assert_eq!(ok.unwrap(), m);
        let err = CsrMatrix::try_from_parts(
            3,
            3,
            m.indptr().to_vec(),
            m.indices().to_vec(),
            vec![f64::NAN; m.nnz()],
        )
        .unwrap_err();
        assert!(matches!(err, Error::NonFiniteValue { at: 0 }));
    }

    #[test]
    fn each_mutation_is_rejected() {
        for mutation in [
            Mutation::SwapAdjacentIndices,
            Mutation::DuplicateIndex,
            Mutation::OutOfBoundsIndex,
            Mutation::BreakIndptr,
            Mutation::InjectNan,
        ] {
            let mut m = sample();
            assert!(m.apply_mutation(mutation), "mutation {mutation:?} not applicable");
            assert!(m.validate().is_err(), "mutation {mutation:?} not rejected");

            let mut c = sample().to_csc();
            assert!(c.apply_mutation(mutation), "csc mutation {mutation:?} not applicable");
            assert!(c.validate().is_err(), "csc mutation {mutation:?} not rejected");
        }
    }

    #[test]
    fn each_perm_mutation_is_rejected() {
        for mutation in [
            PermMutation::DuplicateEntry,
            PermMutation::OutOfBoundsEntry,
            PermMutation::InconsistentInverse,
        ] {
            let mut p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
            assert!(p.apply_mutation(mutation), "mutation {mutation:?} not applicable");
            assert!(p.validate().is_err(), "mutation {mutation:?} not rejected");
        }
    }

    /// Regression: an intermediate `indptr` entry past `nnz` (monotone
    /// so far, so earlier checks pass) must be a typed error, not a
    /// slice-bounds panic during the segment scan.
    #[test]
    fn out_of_range_intermediate_indptr_is_typed_error() {
        let m = sample();
        let mut indptr = m.indptr().to_vec();
        indptr[1] = m.nnz() + 200; // monotone w.r.t. indptr[0], way past nnz
        let err = check_compressed("row", m.nrows(), m.ncols(), &indptr, m.indices(), m.values())
            .unwrap_err();
        assert!(
            matches!(&err, Error::InvalidStructure(msg) if msg.contains("exceeds nnz")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn block_diag_lu_validates() {
        // Two 1x1 blocks and one 2x2 block, diagonally dominant.
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 4.0);
        }
        coo.push(2, 3, 1.0);
        coo.push(3, 2, 1.0);
        let lu = BlockDiagLu::factor(&coo.to_csr().to_csc(), &[1, 1, 2]).unwrap();
        assert!(lu.validate().is_ok());
    }

    #[test]
    fn dense_rejects_non_finite() {
        let err = DenseMatrix::try_from_parts(1, 2, vec![1.0, f64::INFINITY]).unwrap_err();
        assert!(matches!(err, Error::NonFiniteValue { at: 1 }));
    }

    #[test]
    fn coo_rejects_non_finite() {
        let err = CooMatrix::try_from_parts(2, 2, vec![0, 1], vec![0, 1], vec![1.0, f64::NAN])
            .unwrap_err();
        assert!(matches!(err, Error::NonFiniteValue { at: 1 }));
    }
}
