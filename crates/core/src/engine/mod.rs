//! Concurrent query serving engine.
//!
//! BEAR's preprocessing is paid once so that each query is a handful of
//! sparse matrix–vector products (Algorithm 2). This module turns that
//! per-query cost into a serving path fit for sustained traffic:
//!
//! * [`QueryWorkspace`] preallocates every intermediate buffer the block
//!   elimination sweeps need (`q`, `q_perm`, `t1..t4`, `r`), sized from
//!   the [`Bear`] partition, so the steady-state compute path performs no
//!   heap allocation — the only allocation per answered query is the
//!   result vector handed to the caller, and a cache hit avoids even that
//!   by sharing an `Arc`.
//! * [`QueryEngine`] owns a persistent worker pool: threads are spawned
//!   once at construction and fed seeds over a shared job queue,
//!   replacing the scoped-thread fan-out that previously re-spawned
//!   workers on every `query_batch` call. Each worker keeps its own
//!   workspace for its whole lifetime. The submitting thread *assists*:
//!   while waiting for replies it drains the same queue with the
//!   engine's spare workspace, so a small pool (or a single-core host)
//!   answers a batch inline instead of ping-ponging between threads.
//! * An optional bounded LRU cache memoizes full score vectors and top-k
//!   answers keyed by seed, motivated by the skew of real query traffic
//!   (a few hub seeds dominate).
//! * [`Metrics`] tracks query count, cache hit rate, and latency
//!   percentiles via a fixed-bucket log₂ histogram — no dependencies.
//!
//! Results are bit-identical to sequential [`Bear::query`]: workers run
//! the exact same floating-point operations in the exact same order
//! (`Bear::query_into` is the single implementation behind both paths).
//!
//! # Concurrency audit
//!
//! The synchronization skeleton — [`queue::JobQueue`] and [`Metrics`] —
//! imports its primitives through the `crate::sync` shim, so building
//! with `RUSTFLAGS="--cfg loom"` model-checks it against every relevant
//! thread interleaving (`cargo xtask analyze loom`, or directly:
//! `RUSTFLAGS="--cfg loom" cargo test -p bear-core --test loom_engine
//! --release`). The serving layer itself ([`QueryEngine`]) is compiled
//! out under `cfg(loom)` because it drives real OS worker threads.

use crate::precompute::Bear;
use bear_sparse::DenseBlock;

pub mod metrics;
pub mod queue;
#[cfg(not(loom))]
mod serving;

pub use metrics::{Metrics, MetricsSnapshot};
#[cfg(not(loom))]
pub use serving::{
    CancelToken, DegradedInfo, EngineConfig, EngineConfigBuilder, OverloadPolicy, QueryEngine,
    QueryOptions, Served, TopKServed, TopKStrategy,
};

/// Preallocated buffers for one query's block-elimination sweeps.
///
/// Sized once from a [`Bear`] partition (`n1` spokes, `n2` hubs); after
/// construction, answering a query through [`Bear::query_into`] touches
/// only these buffers and the caller's output slice.
pub struct QueryWorkspace {
    /// One-hot query vector in original node ids (kept zeroed between
    /// queries; `query_into` sets and clears the seed entry).
    pub(crate) q: Vec<f64>,
    /// `q` moved to the SlashBurn ordering (length `n`).
    pub(crate) q_perm: Vec<f64>,
    /// Spoke-block scratch (length `n1`).
    pub(crate) t1: Vec<f64>,
    /// Spoke-block scratch (length `n1`).
    pub(crate) t2: Vec<f64>,
    /// Hub-block scratch (length `n2`).
    pub(crate) t3: Vec<f64>,
    /// Hub-block scratch (length `n2`).
    pub(crate) t4: Vec<f64>,
    /// Assembled result in the reordered index space (length `n`).
    pub(crate) r: Vec<f64>,
}

impl QueryWorkspace {
    /// Buffers sized for `bear`'s partition.
    pub fn for_bear(bear: &Bear) -> Self {
        let n = bear.num_nodes();
        QueryWorkspace {
            q: vec![0.0; n],
            q_perm: vec![0.0; n],
            t1: vec![0.0; bear.n1],
            t2: vec![0.0; bear.n1],
            t3: vec![0.0; bear.n2],
            t4: vec![0.0; bear.n2],
            r: vec![0.0; n],
        }
    }
}

/// Preallocated buffers for a blocked multi-seed query
/// ([`Bear::query_block_into`]): the multi-RHS counterpart of
/// [`QueryWorkspace`], with each scratch vector widened to a column-major
/// [`DenseBlock`] holding one column per seed.
///
/// The workspace is reusable across batches of different widths — blocks
/// are reshaped in place ([`DenseBlock::reset`]), keeping their backing
/// allocations, so a serving worker that coalesces variable-size batches
/// allocates nothing in steady state.
pub struct BlockWorkspace {
    /// One-hot scratch in original node ids (kept zeroed between seeds).
    pub(crate) q: Vec<f64>,
    /// Per-seed permutation scratch (length `n`).
    pub(crate) q_perm: Vec<f64>,
    /// Per-seed result-assembly scratch (length `n`).
    pub(crate) r: Vec<f64>,
    /// Permuted seed columns, spoke part (`n1 × k`).
    pub(crate) q1: DenseBlock,
    /// Permuted seed columns, hub part (`n2 × k`).
    pub(crate) q2: DenseBlock,
    /// Spoke-block scratch (`n1 × k`).
    pub(crate) t1: DenseBlock,
    /// Spoke-block scratch (`n1 × k`).
    pub(crate) t2: DenseBlock,
    /// Hub-block scratch (`n2 × k`).
    pub(crate) t3: DenseBlock,
    /// Hub-block scratch (`n2 × k`).
    pub(crate) t4: DenseBlock,
    /// Hub-part results `r₂` (`n2 × k`).
    pub(crate) r2: DenseBlock,
}

impl BlockWorkspace {
    /// Buffers sized for `bear`'s partition, starting at width zero; the
    /// first [`Bear::query_block_into`] call widens them to its batch.
    pub fn for_bear(bear: &Bear) -> Self {
        let n = bear.num_nodes();
        BlockWorkspace {
            q: vec![0.0; n],
            q_perm: vec![0.0; n],
            r: vec![0.0; n],
            q1: DenseBlock::zeros(bear.n1, 0),
            q2: DenseBlock::zeros(bear.n2, 0),
            t1: DenseBlock::zeros(bear.n1, 0),
            t2: DenseBlock::zeros(bear.n1, 0),
            t3: DenseBlock::zeros(bear.n2, 0),
            t4: DenseBlock::zeros(bear.n2, 0),
            r2: DenseBlock::zeros(bear.n2, 0),
        }
    }

    /// Reshapes every block to width `k` for `bear`'s partition, reusing
    /// backing allocations.
    pub(crate) fn ensure_width(&mut self, bear: &Bear, k: usize) {
        if self.q1.ncols() == k && self.q1.nrows() == bear.n1 && self.q2.nrows() == bear.n2 {
            return;
        }
        self.q1.reset(bear.n1, k);
        self.q2.reset(bear.n2, k);
        self.t1.reset(bear.n1, k);
        self.t2.reset(bear.n1, k);
        self.t3.reset(bear.n2, k);
        self.t4.reset(bear.n2, k);
        self.r2.reset(bear.n2, k);
    }
}
