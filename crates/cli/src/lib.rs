//! Implementation of the `bear` command-line tool.
//!
//! Subcommands:
//!
//! * `bear preprocess <graph.txt> <index.bear> [--c 0.05] [--xi 0]` —
//!   read an edge list, run BEAR preprocessing, write the query index;
//! * `bear query <index.bear> <seed> [--top 10] [--threads 0]` — answer
//!   one RWR query from a saved index (0 threads = all cores);
//! * `bear batch <index.bear> <seed>... [--top 10] [--threads 0]` —
//!   answer many queries through the persistent [`QueryEngine`] pool;
//! * `bear stats <graph.txt>` — graph and SlashBurn structure statistics;
//! * `bear generate <dataset> <out.txt>` — materialize a registry dataset
//!   as an edge list.
//!
//! `query` and `batch` both run through [`bear_core::QueryEngine`] and
//! finish by reporting its metrics (query count, cache hit rate, and
//! latency percentiles).
//!
//! The library half exists so the command logic is unit-testable without
//! spawning processes; `main.rs` is a thin argv adapter.

use bear_core::{Bear, BearConfig, EngineConfig, MetricsSnapshot, QueryEngine};
use bear_graph::io::{read_edge_list, write_edge_list};
use bear_graph::{slashburn, SlashBurnConfig};
use bear_sparse::{Error, Result};
use std::path::Path;
use std::sync::Arc;

/// Parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Preprocess an edge list into an index file.
    Preprocess {
        /// Input edge-list path.
        graph: String,
        /// Output index path.
        index: String,
        /// Restart probability.
        c: f64,
        /// Drop tolerance (0 = exact).
        xi: f64,
    },
    /// Query a saved index.
    Query {
        /// Index path.
        index: String,
        /// Seed node.
        seed: usize,
        /// How many top nodes to print.
        top: usize,
        /// Worker threads for the query engine (0 = all cores).
        threads: usize,
    },
    /// Answer a batch of queries through the persistent engine pool.
    Batch {
        /// Index path.
        index: String,
        /// Seed nodes.
        seeds: Vec<usize>,
        /// How many top nodes to print per seed.
        top: usize,
        /// Worker threads for the query engine (0 = all cores).
        threads: usize,
    },
    /// Print graph statistics.
    Stats {
        /// Input edge-list path.
        graph: String,
    },
    /// Generate a registry dataset as an edge list.
    Generate {
        /// Dataset name (see `bear-datasets`).
        dataset: String,
        /// Output path.
        out: String,
    },
    /// Print usage.
    Help,
}

/// Parses an argv-style token list (without the binary name).
pub fn parse_command(args: &[String]) -> Result<Command> {
    let flag = |name: &str, default: f64| -> Result<f64> {
        match args.iter().position(|a| a == name) {
            Some(i) => args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| Error::InvalidStructure(format!("{name} needs a numeric value"))),
            None => Ok(default),
        }
    };
    match args.first().map(|s| s.as_str()) {
        Some("preprocess") => {
            let graph = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| Error::InvalidStructure("preprocess needs <graph> <index>".into()))?
                .clone();
            let index = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| Error::InvalidStructure("preprocess needs <graph> <index>".into()))?
                .clone();
            Ok(Command::Preprocess { graph, index, c: flag("--c", 0.05)?, xi: flag("--xi", 0.0)? })
        }
        Some("query") => {
            let index = args
                .get(1)
                .ok_or_else(|| Error::InvalidStructure("query needs <index> <seed>".into()))?
                .clone();
            let seed: usize = args
                .get(2)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| Error::InvalidStructure("query needs a numeric seed".into()))?;
            let top = flag("--top", 10.0)? as usize;
            let threads = flag("--threads", 0.0)? as usize;
            Ok(Command::Query { index, seed, top, threads })
        }
        Some("batch") => {
            let index = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| Error::InvalidStructure("batch needs <index> <seed>...".into()))?
                .clone();
            // Positional seeds: everything after the index that is not a
            // flag or a flag's value.
            let mut seeds = Vec::new();
            let mut i = 2;
            while i < args.len() {
                if args[i].starts_with("--") {
                    i += 2; // skip the flag and its value
                    continue;
                }
                let seed: usize = args[i].parse().map_err(|_| {
                    Error::InvalidStructure(format!("batch seed '{}' is not a node id", args[i]))
                })?;
                seeds.push(seed);
                i += 1;
            }
            if seeds.is_empty() {
                return Err(Error::InvalidStructure("batch needs at least one seed".into()));
            }
            let top = flag("--top", 10.0)? as usize;
            let threads = flag("--threads", 0.0)? as usize;
            Ok(Command::Batch { index, seeds, top, threads })
        }
        Some("stats") => Ok(Command::Stats {
            graph: args
                .get(1)
                .ok_or_else(|| Error::InvalidStructure("stats needs <graph>".into()))?
                .clone(),
        }),
        Some("generate") => Ok(Command::Generate {
            dataset: args
                .get(1)
                .ok_or_else(|| Error::InvalidStructure("generate needs <dataset> <out>".into()))?
                .clone(),
            out: args
                .get(2)
                .ok_or_else(|| Error::InvalidStructure("generate needs <dataset> <out>".into()))?
                .clone(),
        }),
        Some("help") | Some("--help") | Some("-h") | None => Ok(Command::Help),
        Some(other) => Err(Error::InvalidStructure(format!("unknown command '{other}'"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
bear — block elimination approach for random walk with restart

USAGE:
  bear preprocess <graph.txt> <index.bear> [--c 0.05] [--xi 0]
  bear query <index.bear> <seed> [--top 10] [--threads 0]
  bear batch <index.bear> <seed>... [--top 10] [--threads 0]
  bear stats <graph.txt>
  bear generate <dataset> <out.txt>

Graphs are whitespace edge lists: 'src dst [weight]' per line, '#'
comments. Datasets: any name from the bear-datasets registry, e.g.
routing_like, email_like, rmat_0.7, small_routing.";

/// Builds a [`QueryEngine`] over a freshly loaded index. `threads == 0`
/// keeps the default (all cores).
fn load_engine(index: &str, threads: usize) -> Result<QueryEngine> {
    let bear = Arc::new(Bear::load(Path::new(index))?);
    let mut config = EngineConfig::default();
    if threads > 0 {
        config.threads = threads;
    }
    Ok(QueryEngine::new(bear, config))
}

/// Writes the one-line engine metrics report shared by `query` and
/// `batch`.
fn write_metrics(m: &MetricsSnapshot, out: &mut dyn std::io::Write) -> std::io::Result<()> {
    writeln!(
        out,
        "metrics: queries={} cache_hit_rate={:.1}% p50={:?} p95={:?} p99={:?}",
        m.queries,
        m.cache_hit_rate() * 100.0,
        m.p50,
        m.p95,
        m.p99
    )
}

/// Executes a parsed command, writing human-readable output to `out`.
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> Result<()> {
    let io_err = |e: std::io::Error| Error::InvalidStructure(format!("output error: {e}"));
    match cmd {
        Command::Help => writeln!(out, "{USAGE}").map_err(io_err),
        Command::Preprocess { graph, index, c, xi } => {
            let g = read_edge_list(Path::new(graph), None)?;
            let config =
                if *xi > 0.0 { BearConfig::approx(*c, *xi) } else { BearConfig::exact(*c) };
            let start = std::time::Instant::now();
            let bear = Bear::new(&g, &config)?;
            let elapsed = start.elapsed().as_secs_f64();
            bear.save(Path::new(index))?;
            let st = bear.stats();
            writeln!(
                out,
                "preprocessed {} nodes / {} edges in {elapsed:.3}s: \
                 n1={} n2={} blocks={} nnz={} bytes={} -> {index}",
                g.num_nodes(),
                g.num_edges(),
                st.n1,
                st.n2,
                st.num_blocks,
                st.total_nnz(),
                st.bytes
            )
            .map_err(io_err)
        }
        Command::Query { index, seed, top, threads } => {
            let engine = load_engine(index, *threads)?;
            let start = std::time::Instant::now();
            let ranked = engine.query_top_k(*seed, *top)?;
            let elapsed = start.elapsed().as_secs_f64();
            writeln!(out, "top {} nodes for seed {} ({elapsed:.6}s):", ranked.len(), seed)
                .map_err(io_err)?;
            for s in ranked.iter() {
                writeln!(out, "  {}\t{:.6e}", s.node, s.score).map_err(io_err)?;
            }
            write_metrics(&engine.metrics(), out).map_err(io_err)
        }
        Command::Batch { index, seeds, top, threads } => {
            let engine = load_engine(index, *threads)?;
            let start = std::time::Instant::now();
            // One concurrent pass computes (and caches) every full score
            // vector; the per-seed top-k below is then pure cache hits.
            engine.query_batch(seeds)?;
            let elapsed = start.elapsed().as_secs_f64();
            writeln!(
                out,
                "answered {} queries in {elapsed:.6}s ({:.1} queries/s):",
                seeds.len(),
                seeds.len() as f64 / elapsed.max(1e-12)
            )
            .map_err(io_err)?;
            for &seed in seeds {
                let ranked = engine.query_top_k(seed, *top)?;
                let line = ranked
                    .iter()
                    .map(|s| format!("{}:{:.6e}", s.node, s.score))
                    .collect::<Vec<_>>()
                    .join(" ");
                writeln!(out, "  seed {seed}: {line}").map_err(io_err)?;
            }
            write_metrics(&engine.metrics(), out).map_err(io_err)
        }
        Command::Stats { graph } => {
            let g = read_edge_list(Path::new(graph), None)?;
            let ord = slashburn(&g, &SlashBurnConfig::paper_default(g.num_nodes()))?;
            writeln!(
                out,
                "nodes={} edges={} | slashburn: n1={} n2={} blocks={} \
                 max_block={} sum_block_sq={} iterations={}",
                g.num_nodes(),
                g.num_edges(),
                ord.n_spokes,
                ord.n_hubs,
                ord.block_sizes.len(),
                ord.block_sizes.iter().copied().max().unwrap_or(0),
                ord.sum_block_sq(),
                ord.iterations
            )
            .map_err(io_err)
        }
        Command::Generate { dataset, out: path } => {
            let spec = bear_datasets::dataset_by_name(dataset)
                .ok_or_else(|| Error::InvalidStructure(format!("unknown dataset '{dataset}'")))?;
            let g = spec.load();
            write_edge_list(&g, Path::new(path))?;
            writeln!(
                out,
                "generated {} ({} nodes, {} edges) -> {path}",
                dataset,
                g.num_nodes(),
                g.num_edges()
            )
            .map_err(io_err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Command> {
        parse_command(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_preprocess() {
        let cmd = parse(&["preprocess", "g.txt", "g.idx", "--c", "0.1", "--xi", "1e-4"]).unwrap();
        assert_eq!(
            cmd,
            Command::Preprocess { graph: "g.txt".into(), index: "g.idx".into(), c: 0.1, xi: 1e-4 }
        );
    }

    #[test]
    fn parses_query_with_defaults() {
        let cmd = parse(&["query", "g.idx", "42"]).unwrap();
        assert_eq!(cmd, Command::Query { index: "g.idx".into(), seed: 42, top: 10, threads: 0 });
    }

    #[test]
    fn parses_batch_with_flags_anywhere() {
        let cmd =
            parse(&["batch", "g.idx", "1", "2", "--top", "3", "7", "--threads", "2"]).unwrap();
        assert_eq!(
            cmd,
            Command::Batch { index: "g.idx".into(), seeds: vec![1, 2, 7], top: 3, threads: 2 }
        );
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse(&["preprocess", "only-one"]).is_err());
        assert!(parse(&["query", "idx", "notanumber"]).is_err());
        assert!(parse(&["batch", "idx"]).is_err());
        assert!(parse(&["batch", "idx", "3", "oops"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn end_to_end_generate_preprocess_query_stats() {
        let dir = std::env::temp_dir();
        let graph_path = dir.join("bear_cli_e2e.txt");
        let index_path = dir.join("bear_cli_e2e.idx");
        let mut buf = Vec::new();

        run(
            &Command::Generate {
                dataset: "small_routing".into(),
                out: graph_path.to_string_lossy().into_owned(),
            },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("generated small_routing"));

        buf.clear();
        run(
            &Command::Preprocess {
                graph: graph_path.to_string_lossy().into_owned(),
                index: index_path.to_string_lossy().into_owned(),
                c: 0.05,
                xi: 0.0,
            },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("preprocessed"));

        buf.clear();
        run(
            &Command::Query {
                index: index_path.to_string_lossy().into_owned(),
                seed: 0,
                top: 5,
                threads: 1,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("top 5 nodes for seed 0"));
        assert_eq!(text.lines().count(), 7); // header + 5 rows + metrics
        assert!(text.contains("metrics: queries=1"));

        buf.clear();
        run(
            &Command::Batch {
                index: index_path.to_string_lossy().into_owned(),
                seeds: vec![0, 3, 0],
                top: 4,
                threads: 2,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("answered 3 queries"));
        assert!(text.contains("seed 0:"));
        assert!(text.contains("seed 3:"));
        // Duplicate seed 0 plus the top-k pass must register cache hits.
        assert!(text.contains("cache_hit_rate="));
        assert!(!text.contains("cache_hit_rate=0.0%"), "batch should hit the cache: {text}");

        buf.clear();
        run(&Command::Stats { graph: graph_path.to_string_lossy().into_owned() }, &mut buf)
            .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("slashburn:"));

        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&index_path).ok();
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let mut buf = Vec::new();
        assert!(run(
            &Command::Generate { dataset: "nope".into(), out: "/tmp/x.txt".into() },
            &mut buf
        )
        .is_err());
    }

    #[test]
    fn query_rejects_missing_index() {
        let mut buf = Vec::new();
        assert!(run(
            &Command::Query { index: "/nonexistent/path.idx".into(), seed: 0, top: 5, threads: 0 },
            &mut buf
        )
        .is_err());
    }
}
