//! Differential-oracle suite: every query path in the workspace —
//! BEAR-Exact per-seed, the blocked multi-RHS kernels at several widths,
//! the scoped-thread batch path, and the LU / QR / iterative baselines —
//! is checked against one independent ground truth, dense matrix
//! inversion, within an L∞ tolerance of 1e-10.
//!
//! The panel runs on the paper-shape datasets (`small_suite`) plus
//! randomly generated SlashBurn-able hub-and-spoke graphs, so both the
//! structures the paper evaluates and adversarially random ones are
//! covered. A uniform restart probability of 0.2 keeps the iterative
//! method's contraction factor small enough that its converged answer
//! sits well inside the shared tolerance.

use bear_baselines::{Inversion, Iterative, IterativeConfig, LuDecomp, QrDecomp};
use bear_core::rwr::RwrConfig;
use bear_core::{Bear, BearConfig, BlockWorkspace, RwrSolver};
use bear_datasets::small_suite;
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use bear_graph::Graph;
use bear_sparse::mem::MemBudget;
use bear_sparse::DenseBlock;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared L∞ agreement tolerance for every solver on the panel.
const TOL: f64 = 1e-10;
/// Restart probability for the whole panel. Larger than the paper's
/// default 0.05 so the iterative method's geometric error (factor
/// `1 - c` per sweep) converges below [`TOL`] instead of stalling at it.
const C: f64 = 0.2;

fn linf(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Paper-shape datasets plus random SlashBurn-able graphs.
fn graph_panel() -> Vec<(String, Graph)> {
    let mut graphs: Vec<(String, Graph)> =
        small_suite().iter().map(|spec| (spec.name.to_string(), spec.load())).collect();
    for rng_seed in [7u64, 99, 1234] {
        let g = hub_and_spoke(
            &HubSpokeConfig {
                num_hubs: 4,
                num_caves: 14,
                max_cave_size: 9,
                cave_density: 0.4,
                hub_links: 2,
                hub_density: 0.5,
            },
            &mut StdRng::seed_from_u64(rng_seed),
        );
        graphs.push((format!("hub_spoke_rng{rng_seed}"), g));
    }
    graphs
}

#[test]
fn every_query_path_matches_the_dense_inversion_oracle() {
    for (name, g) in graph_panel() {
        let n = g.num_nodes();
        let rwr = RwrConfig { c: C, ..RwrConfig::default() };
        let budget = MemBudget::unlimited();
        let oracle = Inversion::new(&g, &rwr, &budget).expect("dense inversion oracle");
        let seeds: Vec<usize> = (0..8).map(|i| (i * 977) % n).collect();
        let truth: Vec<Vec<f64>> =
            seeds.iter().map(|&s| oracle.query(s).expect("oracle query")).collect();

        // Per-seed paths: BEAR exact and the three baselines.
        let bear = Bear::new(&g, &BearConfig::exact(C)).expect("bear");
        let solvers: Vec<(&str, Box<dyn RwrSolver>)> = vec![
            ("lu", Box::new(LuDecomp::new(&g, &rwr, &budget).unwrap())),
            ("qr", Box::new(QrDecomp::new(&g, &rwr, &budget).unwrap())),
            (
                "iterative",
                Box::new(
                    Iterative::new(
                        &g,
                        &IterativeConfig { rwr, epsilon: 1e-13, max_iterations: 100_000 },
                    )
                    .unwrap(),
                ),
            ),
        ];
        for (&seed, want) in seeds.iter().zip(&truth) {
            let r = bear.query(seed).unwrap();
            let err = linf(&r, want);
            assert!(err < TOL, "{name}: bear off oracle by {err:.3e} at seed {seed}");
            for (sname, solver) in &solvers {
                let r = solver.query(seed).unwrap();
                let err = linf(&r, want);
                assert!(err < TOL, "{name}: {sname} off oracle by {err:.3e} at seed {seed}");
            }
        }

        // Blocked multi-RHS path, one reused workspace across widths —
        // including widths that leave a remainder chunk.
        let mut ws = BlockWorkspace::for_bear(&bear);
        let mut out = DenseBlock::zeros(n, 0);
        for width in [1usize, 3, 8] {
            let mut offset = 0;
            for chunk in seeds.chunks(width) {
                out.reset(n, chunk.len());
                bear.query_block_into(chunk, &mut ws, &mut out).unwrap();
                for (j, want) in truth[offset..offset + chunk.len()].iter().enumerate() {
                    let err = linf(out.col(j), want);
                    assert!(
                        err < TOL,
                        "{name}: blocked width {width} off oracle by {err:.3e} at column {j}"
                    );
                }
                offset += chunk.len();
            }
        }

        // Scoped-thread batch path.
        let batch = bear.query_batch(&seeds, 2).unwrap();
        for (i, (got, want)) in batch.iter().zip(&truth).enumerate() {
            let err = linf(got, want);
            assert!(err < TOL, "{name}: query_batch off oracle by {err:.3e} at seed #{i}");
        }
    }
}

/// The pruned top-k path must be *bit-identical* to ranking the full
/// exact score vector: same nodes, same order, same `f64` bits — not
/// merely within tolerance. Covers every panel graph, both BEAR-Exact
/// (ξ = 0) and BEAR-Approx (ξ > 0; pruning must be exact w.r.t. the
/// sparsified operator it runs on), all seeds, and k from 1 through
/// past n (where the answer is all n − 1 non-seed nodes).
#[test]
fn pruned_top_k_is_bit_identical_to_full_ranking() {
    for (name, g) in graph_panel() {
        let n = g.num_nodes();
        for xi in [0.0, 1e-4] {
            let bear = Bear::new(&g, &BearConfig::approx(C, xi)).expect("bear");
            let seeds: Vec<usize> = (0..6).map(|i| (i * 977) % n).collect();
            for &seed in &seeds {
                let full = bear.query(seed).unwrap();
                for k in [1usize, 2, 5, n / 2, n.saturating_sub(1), n + 2] {
                    let want = bear_core::topk::top_k_excluding_seed(&full, seed, k);
                    let (got, stats) = bear
                        .query_top_k_pruned_with(seed, k, &bear_core::TopKPruneOptions::default())
                        .unwrap();
                    assert_eq!(
                        got.len(),
                        want.len(),
                        "{name} xi={xi} seed={seed} k={k}: length mismatch"
                    );
                    for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                        assert_eq!(
                            a.node, b.node,
                            "{name} xi={xi} seed={seed} k={k}: rank {i} node differs"
                        );
                        assert_eq!(
                            a.score.to_bits(),
                            b.score.to_bits(),
                            "{name} xi={xi} seed={seed} k={k}: rank {i} score bits differ"
                        );
                    }
                    // Accounting sanity: every non-seed node is either a
                    // candidate or pruned, fallback or not.
                    assert_eq!(
                        stats.candidates + stats.nodes_pruned,
                        n - 1,
                        "{name} xi={xi} seed={seed} k={k}: stats don't cover the graph"
                    );
                }
            }
        }
    }
}

/// When the resolve budget forbids certification, the path must fall
/// back to the full solve — typed, stats-visible, and still exact.
#[test]
fn pruned_top_k_fallback_is_typed_and_exact() {
    use bear_core::{TopKFallbackReason, TopKPruneOptions};
    // Pick a panel graph with enough spokes that `k = n₂ + 2` is
    // non-degenerate: the heap cannot fill from hub scores alone, so a
    // zero resolve budget must trip the typed fallback.
    let (name, g, bear) = graph_panel()
        .into_iter()
        .find_map(|(name, g)| {
            let bear = Bear::new(&g, &BearConfig::exact(C)).ok()?;
            (bear.n_hubs() + 2 < g.num_nodes().saturating_sub(1)).then_some((name, g, bear))
        })
        .expect("panel has a graph with enough spokes");
    let n = g.num_nodes();
    let seed = 1 % n;
    let k = bear.n_hubs() + 2; // needs spoke scores → needs resolution
    let opts = TopKPruneOptions { max_resolve_fraction: 0.0 };
    let full = bear.query(seed).unwrap();
    let want = bear_core::topk::top_k_excluding_seed(&full, seed, k);
    let (got, stats) = bear.query_top_k_pruned_with(seed, k, &opts).unwrap();
    assert!(!stats.certified, "{name}: zero budget cannot certify");
    assert_eq!(stats.fallback, Some(TopKFallbackReason::BoundsTooLoose));
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(&want) {
        assert_eq!(a.node, b.node);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
}
