//! LU-decomposition baseline (Fujiwara et al., PVLDB 2012): reorder `H`
//! by community structure and degree, LU-factor the whole matrix, and
//! store `L⁻¹` and `U⁻¹` for `r = c U⁻¹ (L⁻¹ q)`.
//!
//! Exact, and the strongest preprocessing competitor in the paper — but
//! the whole-matrix triangular inverses fill in badly on graphs without
//! clean community structure, which is why BEAR beats it on space
//! (Figure 5). The fill-bounded inversion aborts with `OutOfBudget`
//! exactly when the paper's version would die.

use bear_core::rwr::{build_h, validate_distribution, RwrConfig};
use bear_core::RwrSolver;
use bear_graph::community::{community_degree_ordering, label_propagation};
use bear_graph::Graph;
use bear_sparse::mem::{MemBudget, MemoryUsage, INDEX_BYTES, VALUE_BYTES};
use bear_sparse::{CscMatrix, Error, Permutation, Result, SparseLu};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Preprocessed LU-decomposition solver.
#[derive(Debug, Clone)]
pub struct LuDecomp {
    l_inv: CscMatrix,
    u_inv: CscMatrix,
    perm: Permutation,
    c: f64,
}

impl LuDecomp {
    /// Preprocesses `g`: community+degree reordering, sparse LU, inverted
    /// factors. Aborts with `OutOfBudget` when factor fill exceeds the
    /// budget.
    pub fn new(g: &Graph, rwr: &RwrConfig, budget: &MemBudget) -> Result<Self> {
        rwr.validate()?;
        let n = g.num_nodes();
        // Fujiwara's reordering rule: communities first, ascending degree
        // inside each.
        let mut rng = StdRng::seed_from_u64(0x1u64);
        let labels = label_propagation(g, 20, &mut rng);
        let order = community_degree_ordering(g, &labels);
        let perm = Permutation::from_new_to_old(order)?;

        let h = perm.permute_symmetric(&build_h(g, rwr)?)?;
        let max_nnz =
            budget.limit().map(|bytes| bytes / (INDEX_BYTES + VALUE_BYTES)).unwrap_or(usize::MAX);
        let lu = SparseLu::factor_with_limit(&h.to_csc(), max_nnz)?;
        let (l_inv, u_inv) = lu.invert_factors_with_limit(max_nnz)?;
        budget.check(l_inv.memory_bytes() + u_inv.memory_bytes())?;
        let _ = n;
        Ok(LuDecomp { l_inv, u_inv, perm, c: rwr.c })
    }
}

impl RwrSolver for LuDecomp {
    fn name(&self) -> &'static str {
        "LU decomp."
    }

    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        let n = self.perm.len();
        if q.len() != n {
            return Err(Error::DimensionMismatch {
                op: "lu decomp query",
                lhs: (n, 1),
                rhs: (q.len(), 1),
            });
        }
        validate_distribution(q)?;
        // r = c U⁻¹ (L⁻¹ q), in the reordered space.
        let qp = self.perm.permute_vec(q)?;
        let t = self.l_inv.matvec(&qp)?;
        let mut r = self.u_inv.matvec(&t)?;
        for v in &mut r {
            *v *= self.c;
        }
        self.perm.unpermute_vec(&r)
    }

    fn num_nodes(&self) -> usize {
        self.perm.len()
    }

    fn memory_bytes(&self) -> usize {
        self.l_inv.memory_bytes() + self.u_inv.memory_bytes()
    }

    fn precomputed_nnz(&self) -> usize {
        self.l_inv.nnz() + self.u_inv.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_core::{Bear, BearConfig};

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    #[test]
    fn matches_bear_exact() {
        let g = undirected(
            8,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3), (0, 6), (6, 7)],
        );
        let lu = LuDecomp::new(&g, &RwrConfig::default(), &MemBudget::unlimited()).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        for seed in 0..8 {
            let rl = lu.query(seed).unwrap();
            let rb = bear.query(seed).unwrap();
            for (a, b) in rl.iter().zip(&rb) {
                assert!((a - b).abs() < 1e-9, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn oom_budget_aborts() {
        let g = undirected(30, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 6), (6, 7)]);
        // 64 bytes cannot hold any factor.
        let tiny = MemBudget::bytes(64);
        assert!(matches!(
            LuDecomp::new(&g, &RwrConfig::default(), &tiny),
            Err(Error::OutOfBudget { .. })
        ));
    }

    #[test]
    fn reports_factor_memory() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let lu = LuDecomp::new(&g, &RwrConfig::default(), &MemBudget::unlimited()).unwrap();
        assert!(lu.memory_bytes() > 0);
        assert_eq!(lu.num_nodes(), 4);
    }
}
