//! L4 fixture: direct `std::sync` lock types (true positives) and
//! unshimmed imports that are fine (true negatives). Never compiled —
//! parsed by the lint tests only.

// True positives ×2: a brace-group import naming two shimmed types.
use std::sync::{Condvar, Mutex};
// True negatives: atomics and `Arc` have no loom-shim requirement.
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

/// True positives ×2: fully qualified lock type in a signature and in
/// an expression.
pub fn tp_inline() -> std::sync::RwLock<usize> {
    std::sync::RwLock::new(0)
}

/// True negative: the shim path is exactly what L4 asks for.
pub fn tn_shimmed(m: &crate::sync::Mutex<usize>) -> usize {
    *m.lock().unwrap_or_else(|p| p.into_inner())
}
