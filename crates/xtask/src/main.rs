//! Workspace automation driver (the `cargo xtask` pattern).
//!
//! `cargo xtask analyze` runs the full static-analysis and
//! model-checking gate with one command — the same gate CI enforces:
//!
//! * `fmt` — `cargo fmt --all --check`;
//! * `clippy` — `cargo clippy --workspace --all-targets` with
//!   `-D warnings` on top of the shared `[workspace.lints]` table;
//! * `doc` — rustdoc over the workspace with `-D warnings`;
//! * `features` — build check of the feature matrix (default,
//!   `strict-invariants`, no-default-features);
//! * `loom` — the model-checking suite under `RUSTFLAGS="--cfg loom"`;
//! * `faults` — the deterministic fault-injection suite under
//!   `--features failpoints` (typed errors / degraded answers for every
//!   injected fault class);
//! * `miri` — the sparse kernel unit tests under Miri (nightly),
//!   skipped with a notice when `cargo +nightly miri` is unavailable
//!   (e.g. offline dev containers);
//! * `lint` — the repo-specific static analysis with a ratcheting
//!   baseline (`bear-lint`, DESIGN.md §15): hot-path panic/alloc
//!   freedom, trust boundaries, sync-shim discipline, error-taxonomy
//!   completeness.
//!
//! `cargo xtask analyze <step>...` runs a subset. Any failing step makes
//! the driver exit nonzero; a summary table is printed either way.
//!
//! `cargo xtask analyze lint` on its own accepts lint-specific flags
//! (`--update-baseline`, `--format json`, `--output PATH`) and uses
//! distinct exit codes: 5 for new (unbaselined) findings, 6 for a stale
//! baseline entry that `--update-baseline` should remove.

use std::env;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use xtask::lint;

/// Outcome of one analysis step.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Outcome {
    Passed,
    Failed,
    /// Tool unavailable in this environment; not a failure.
    Skipped,
}

/// One named step of the gate.
struct Step {
    name: &'static str,
    description: &'static str,
    run: fn(&Path) -> Outcome,
}

const STEPS: &[Step] = &[
    Step { name: "fmt", description: "cargo fmt --all --check", run: run_fmt },
    Step {
        name: "clippy",
        description: "clippy --workspace --all-targets -D warnings",
        run: run_clippy,
    },
    Step { name: "doc", description: "rustdoc -D warnings (workspace, no deps)", run: run_doc },
    Step {
        name: "features",
        description: "feature-matrix build check (strict-invariants on/off)",
        run: run_features,
    },
    Step { name: "loom", description: "loom model checking (--cfg loom)", run: run_loom },
    Step {
        name: "faults",
        description: "fault-injection suite (--features failpoints)",
        run: run_faults,
    },
    Step { name: "miri", description: "Miri on bear-sparse kernel unit tests", run: run_miri },
    Step {
        name: "lint",
        description: "bear-lint: repo rules L1-L5 against the ratchet baseline",
        run: run_lint,
    },
];

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let (command, selected) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    if command != "analyze" {
        eprintln!("xtask: unknown command `{command}`\n");
        print_usage();
        return ExitCode::FAILURE;
    }
    // Lint-specific flags (and a bare `analyze lint`) take the dedicated
    // path with distinct exit codes (5 = new findings, 6 = stale
    // baseline) instead of the summary-table loop.
    let (names, flags): (Vec<&String>, Vec<&String>) =
        selected.iter().partition(|a| !a.starts_with("--"));
    let lint_alone = names.len() == 1 && names[0] == "lint";
    if lint_alone {
        let flag_args: Vec<String> = flags.into_iter().cloned().collect();
        return run_lint_cli(&workspace_root(), &flag_args);
    }
    if !flags.is_empty() {
        eprintln!("xtask: flags are only accepted by `analyze lint`\n");
        print_usage();
        return ExitCode::from(lint::EXIT_USAGE);
    }

    for name in selected {
        if !STEPS.iter().any(|s| s.name == name) {
            eprintln!("xtask: unknown analyze step `{name}`\n");
            print_usage();
            return ExitCode::FAILURE;
        }
    }

    let root = workspace_root();
    let mut results: Vec<(&'static str, Outcome)> = Vec::new();
    for step in STEPS {
        if !selected.is_empty() && !selected.iter().any(|n| n == step.name) {
            continue;
        }
        eprintln!("\n=== xtask analyze: {} — {} ===", step.name, step.description);
        results.push((step.name, (step.run)(&root)));
    }

    eprintln!("\n=== xtask analyze: summary ===");
    for (name, outcome) in &results {
        let tag = match outcome {
            Outcome::Passed => "PASS",
            Outcome::Failed => "FAIL",
            Outcome::Skipped => "SKIP",
        };
        eprintln!("  {tag}  {name}");
    }
    if results.iter().any(|(_, o)| *o == Outcome::Failed) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask analyze [step...]\n\nsteps:");
    for step in STEPS {
        eprintln!("  {:<10} {}", step.name, step.description);
    }
    eprintln!(
        "\nlint flags (only with `analyze lint`):\n  \
         --update-baseline   remove paid-down debt from the ratchet baseline\n  \
         --format text|json  report format (default text)\n  \
         --output PATH       write the report to PATH instead of stdout\n\
         lint exit codes: 5 = new findings, 6 = stale baseline entries"
    );
}

/// Dedicated `analyze lint` entry point with lint-specific flags and
/// exit codes.
fn run_lint_cli(root: &Path, flag_args: &[String]) -> ExitCode {
    let opts = match lint::LintOptions::parse(flag_args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("xtask: {msg}\n");
            print_usage();
            return ExitCode::from(lint::EXIT_USAGE);
        }
    };
    let config = lint::LintConfig::workspace(root);
    match lint::check(&config, &opts) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("xtask: lint failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The umbrella-mode lint step: deny-new text mode against the committed
/// baseline.
fn run_lint(root: &Path) -> Outcome {
    let opts =
        lint::LintOptions { update_baseline: false, format: lint::Format::Text, output: None };
    let config = lint::LintConfig::workspace(root);
    match lint::check(&config, &opts) {
        Ok(0) => Outcome::Passed,
        Ok(_) => Outcome::Failed,
        Err(e) => {
            eprintln!("xtask: lint failed: {e}");
            Outcome::Failed
        }
    }
}

/// The workspace root, located from this crate's manifest dir
/// (`crates/xtask` → two levels up).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).expect("crates/xtask has a workspace root").to_owned()
}

/// Runs `cargo` with the given args (and extra env) at the workspace
/// root, mapping process success to an [`Outcome`].
fn cargo(root: &Path, args: &[&str], envs: &[(&str, &str)]) -> Outcome {
    let mut cmd = Command::new(env::var_os("CARGO").unwrap_or_else(|| "cargo".into()));
    cmd.current_dir(root).args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    eprintln!("$ cargo {}", args.join(" "));
    match cmd.status() {
        Ok(status) if status.success() => Outcome::Passed,
        Ok(_) => Outcome::Failed,
        Err(e) => {
            eprintln!("xtask: failed to spawn cargo: {e}");
            Outcome::Failed
        }
    }
}

fn run_fmt(root: &Path) -> Outcome {
    cargo(root, &["fmt", "--all", "--check"], &[])
}

fn run_clippy(root: &Path) -> Outcome {
    // `-D warnings` promotes every `warn` in `[workspace.lints]`
    // (missing_docs, dbg_macro, ...) to a hard error at the gate.
    cargo(root, &["clippy", "--workspace", "--all-targets", "--", "-D", "warnings"], &[])
}

fn run_doc(root: &Path) -> Outcome {
    cargo(root, &["doc", "--workspace", "--no-deps", "--quiet"], &[("RUSTDOCFLAGS", "-D warnings")])
}

fn run_features(root: &Path) -> Outcome {
    // Every cell of the feature matrix must at least build: the
    // `strict-invariants` audit hooks (bear-sparse, forwarded by
    // bear-core) on and off, plus no-default-features.
    let cells: &[&[&str]] = &[
        &["check", "--workspace", "--all-targets"],
        &["check", "-p", "bear-sparse", "--all-targets", "--features", "strict-invariants"],
        &["check", "-p", "bear-core", "--all-targets", "--features", "strict-invariants"],
        &["check", "-p", "bear-sparse", "--no-default-features"],
    ];
    for cell in cells {
        if cargo(root, cell, &[]) == Outcome::Failed {
            return Outcome::Failed;
        }
    }
    Outcome::Passed
}

fn run_loom(root: &Path) -> Outcome {
    // Bounded exploration keeps CI time predictable; override with
    // LOOM_MAX_PREEMPTIONS / LOOM_MAX_ITERATIONS in the environment.
    let preemptions = env::var("LOOM_MAX_PREEMPTIONS").unwrap_or_else(|_| "3".to_string());
    cargo(
        root,
        &["test", "-p", "bear-core", "--test", "loom_engine", "--release"],
        &[("RUSTFLAGS", "--cfg loom"), ("LOOM_MAX_PREEMPTIONS", &preemptions)],
    )
}

fn run_faults(root: &Path) -> Outcome {
    // Deterministic fault injection: every named failpoint class (corrupt
    // load, overload, worker panic, slow worker, expired deadline) must
    // map to a typed error or a degraded answer — never a hang or abort.
    // The `failpoints` feature also alters the compiled serving path, so
    // the regular engine suites are re-run under it to prove the sites
    // are behavior-neutral when disarmed.
    let cells: &[&[&str]] = &[
        &["test", "-p", "bear-core", "--test", "fault_injection", "--features", "failpoints"],
        &["test", "-p", "bear-core", "--lib", "--features", "failpoints", "engine::"],
    ];
    for cell in cells {
        if cargo(root, cell, &[]) == Outcome::Failed {
            return Outcome::Failed;
        }
    }
    Outcome::Passed
}

fn run_miri(root: &Path) -> Outcome {
    // Miri needs a nightly component that offline dev containers may not
    // have; probe first and skip (not fail) when absent. CI installs it.
    let probe =
        Command::new("cargo").current_dir(root).args(["+nightly", "miri", "--version"]).output();
    let available = matches!(probe, Ok(ref out) if out.status.success());
    if !available {
        eprintln!("xtask: `cargo +nightly miri` unavailable; skipping (CI runs this step)");
        return Outcome::Skipped;
    }
    // Scoped to the sparse kernel unit tests: index arithmetic and
    // in-place permutation code where UB would hide. MIRIFLAGS comes
    // from the environment (CI sets seed/isolation policy). Invoked via
    // the `cargo` on PATH (the rustup shim) — `$CARGO` resolves to the
    // stable binary, which cannot dispatch `+nightly`.
    let args = [
        "+nightly",
        "miri",
        "test",
        "-p",
        "bear-sparse",
        "--lib",
        "--",
        "csr::",
        "csc::",
        "perm::",
        "validate::",
    ];
    eprintln!("$ cargo {}", args.join(" "));
    match Command::new("cargo").current_dir(root).args(args).status() {
        Ok(status) if status.success() => Outcome::Passed,
        Ok(_) => Outcome::Failed,
        Err(e) => {
            eprintln!("xtask: failed to spawn cargo: {e}");
            Outcome::Failed
        }
    }
}
