//! Reproduces **Figure 1(a)**: preprocessing time of the exact methods
//! (BEAR-Exact, LU decomposition, QR decomposition, inversion) on every
//! dataset. Methods that exceed the memory budget appear as `failed`
//! rows — the paper's omitted bars.
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig1a_preprocess_time \
//!     [--datasets a,b] [--seeds N] [--budget-mb N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::exact_suite;
use bear_datasets::all_datasets;

fn main() {
    let args = Args::from_env();
    let default_names: Vec<String> = all_datasets().iter().map(|d| d.name.to_string()).collect();
    let defaults: Vec<&str> = default_names.iter().map(|s| s.as_str()).collect();
    let opts = CommonOpts::from_args(&args, &defaults);
    let result = exact_suite(
        "figure_1a",
        "preprocessing time of exact methods",
        &opts.datasets,
        opts.num_seeds,
        opts.budget_bytes,
    );
    result.print_table();
    if let Some(path) = &opts.json {
        result.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
