//! Element-wise sparse matrix combination.

use crate::csr::CsrMatrix;
use crate::error::{Error, Result};

/// Computes `alpha * A + beta * B` by merging sorted rows. Exact zeros
/// produced by cancellation are dropped.
pub fn axpby(alpha: f64, a: &CsrMatrix, beta: f64, b: &CsrMatrix) -> Result<CsrMatrix> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(Error::DimensionMismatch {
            op: "axpby",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let mut indptr = Vec::with_capacity(a.nrows() + 1);
    let mut indices = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    indptr.push(0);
    for r in 0..a.nrows() {
        let (ca, va) = a.row(r);
        let (cb, vb) = b.row(r);
        let (mut i, mut j) = (0, 0);
        while i < ca.len() || j < cb.len() {
            let (col, val) = match (ca.get(i), cb.get(j)) {
                (Some(&c1), Some(&c2)) if c1 == c2 => {
                    let out = (c1, alpha * va[i] + beta * vb[j]);
                    i += 1;
                    j += 1;
                    out
                }
                (Some(&c1), Some(&c2)) if c1 < c2 => {
                    let out = (c1, alpha * va[i]);
                    i += 1;
                    out
                }
                (Some(_), Some(&c2)) => {
                    let out = (c2, beta * vb[j]);
                    j += 1;
                    out
                }
                (Some(&c1), None) => {
                    let out = (c1, alpha * va[i]);
                    i += 1;
                    out
                }
                (None, Some(&c2)) => {
                    let out = (c2, beta * vb[j]);
                    j += 1;
                    out
                }
                (None, None) => unreachable!(),
            };
            if val != 0.0 {
                indices.push(col);
                values.push(val);
            }
        }
        indptr.push(indices.len());
    }
    Ok(CsrMatrix::from_raw_unchecked(a.nrows(), a.ncols(), indptr, indices, values))
}

/// `A + B`.
pub fn add(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    axpby(1.0, a, 1.0, b)
}

/// `A - B`.
pub fn sub(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    axpby(1.0, a, -1.0, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn m(entries: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut c = CooMatrix::new(3, 3);
        for &(r, col, v) in entries {
            c.push(r, col, v);
        }
        c.to_csr()
    }

    #[test]
    fn add_disjoint_patterns() {
        let a = m(&[(0, 0, 1.0)]);
        let b = m(&[(1, 1, 2.0)]);
        let c = add(&a, &b).unwrap();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(1, 1), 2.0);
    }

    #[test]
    fn add_overlapping_patterns() {
        let a = m(&[(0, 0, 1.0), (0, 1, 2.0)]);
        let b = m(&[(0, 1, 3.0), (2, 2, 4.0)]);
        let c = add(&a, &b).unwrap();
        assert_eq!(c.get(0, 1), 5.0);
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn sub_cancels_to_empty() {
        let a = m(&[(1, 2, 7.0)]);
        let c = sub(&a, &a).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::identity(3);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn axpby_scales_both_sides() {
        let a = m(&[(0, 0, 1.0)]);
        let b = m(&[(0, 0, 1.0)]);
        let c = axpby(2.0, &a, -0.5, &b).unwrap();
        assert_eq!(c.get(0, 0), 1.5);
    }
}
