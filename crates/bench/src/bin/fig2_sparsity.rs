//! Reproduces **Figure 2**: the number of nonzeros in the precomputed
//! matrices of every preprocessing method on the Routing dataset.
//! The paper's headline: BEAR-Exact stores ~1200× fewer nonzeros than
//! inversion and ~6× fewer than the next best method; BEAR-Approx
//! shrinks further with the drop tolerance.
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig2_sparsity \
//!     [--datasets routing_like] [--budget-mb N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::load_dataset;
use bear_bench::harness::{measure, ExperimentResult, ResultRow};
use bear_bench::methods::{build_method, MethodSpec};
use bear_bench::params::params_for;
use bear_sparse::mem::MemBudget;

fn main() {
    let args = Args::from_env();
    let opts = CommonOpts::from_args(&args, &["routing_like"]);
    let budget = MemBudget::bytes(opts.budget_bytes);

    let mut out = ExperimentResult::new(
        "figure_2",
        "nonzeros in precomputed matrices per preprocessing method",
    );
    for dataset in &opts.datasets {
        let g = load_dataset(dataset);
        let n = g.num_nodes();
        let params = params_for(dataset);
        let xi_half = (n as f64).powf(-0.5);
        let specs: Vec<(MethodSpec, Option<String>)> = vec![
            (MethodSpec::Inversion, None),
            (MethodSpec::QrDecomp, None),
            (MethodSpec::LuDecomp, None),
            (MethodSpec::BLin { xi: 0.0 }, Some("xi=0".into())),
            (MethodSpec::NbLin { xi: 0.0 }, Some("xi=0".into())),
            (MethodSpec::Bear { xi: 0.0 }, Some("exact".into())),
            (MethodSpec::Bear { xi: xi_half }, Some("xi=n^-1/2".into())),
        ];
        println!("dataset {dataset}: n={n}, m={}", g.num_edges());
        println!("{:<14} {:<12} {:>14} {:>12}", "method", "param", "#nz", "mem(KB)");
        for (spec, param) in specs {
            let mut row = ResultRow::new(dataset, &spec.display_name());
            row.param = param.clone();
            let (built, _) = measure(|| build_method(&spec, &g, &params, &budget));
            match built {
                Ok(solver) => {
                    row.memory_bytes = Some(solver.memory_bytes());
                    println!(
                        "{:<14} {:<12} {:>14} {:>12}",
                        spec.display_name(),
                        param.as_deref().unwrap_or("-"),
                        solver.precomputed_nnz(),
                        solver.memory_bytes() / 1024
                    );
                    row.cosine = None;
                    row.l2 = None;
                    // Record nnz in the param field for the JSON output.
                    row.param = Some(format!(
                        "{} nnz={}",
                        param.as_deref().unwrap_or(""),
                        solver.precomputed_nnz()
                    ));
                }
                Err(e) => {
                    println!(
                        "{:<14} {:<12} {:>14} {:>12}",
                        spec.display_name(),
                        param.as_deref().unwrap_or("-"),
                        "OOM",
                        "-"
                    );
                    row.failed = Some(format!("{e}"));
                }
            }
            out.rows.push(row);
        }
        println!();
    }
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
