//! LU factorizations: dense (partial pivoting), sparse Gilbert–Peierls
//! (no pivoting; valid for the column-diagonally-dominant matrices RWR
//! produces), and block-diagonal assembly (Lemma 1 of the BEAR paper).

use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;
use crate::error::{Error, Result};
use crate::triangular::{invert_triangular, Triangle};
use crate::validate::Invariant;

/// Pivot magnitudes below this threshold are treated as exact zeros and
/// reported as singularity.
const PIVOT_TOL: f64 = 1e-12;

// ---------------------------------------------------------------------------
// Dense LU with partial pivoting
// ---------------------------------------------------------------------------

/// Dense LU factorization `P A = L U` with partial (row) pivoting.
///
/// `L` has unit diagonal and is stored in the strictly-lower part of `lu`;
/// `U` occupies the upper part including the diagonal.
#[derive(Debug, Clone)]
pub struct DenseLu {
    lu: DenseMatrix,
    /// `pivots[k]` = original row moved into position `k`.
    pivots: Vec<usize>,
}

impl DenseLu {
    /// Factorizes a square dense matrix.
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(Error::DimensionMismatch {
                op: "dense lu",
                lhs: (a.nrows(), a.ncols()),
                rhs: (n, n),
            });
        }
        let mut lu = a.clone();
        let mut pivots: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: largest magnitude in column k at or below k.
            let mut best = k;
            let mut best_val = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > best_val {
                    best = i;
                    best_val = v;
                }
            }
            if best_val < PIVOT_TOL {
                return Err(Error::SingularMatrix { at: k });
            }
            if best != k {
                pivots.swap(k, best);
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(best, c)];
                    lu[(best, c)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            // Rank-1 update with row slices: the pivot row is copied once
            // so each trailing row updates with a contiguous zip.
            let pivot_row: Vec<f64> = lu.row(k)[k + 1..].to_vec();
            for i in k + 1..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    let row = &mut lu.row_mut(i)[k + 1..];
                    for (r, &p) in row.iter_mut().zip(&pivot_row) {
                        *r -= factor * p;
                    }
                }
            }
        }
        Ok(DenseLu { lu, pivots })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                op: "dense lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply row permutation, then forward/backward substitution with
        // contiguous row slices.
        let mut x: Vec<f64> = self.pivots.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            let row = &self.lu.row(i)[..i];
            let acc: f64 = row.iter().zip(&x[..i]).map(|(l, v)| l * v).sum();
            x[i] -= acc;
        }
        for i in (0..n).rev() {
            let row = &self.lu.row(i)[i + 1..];
            let acc: f64 = row.iter().zip(&x[i + 1..]).map(|(u, v)| u * v).sum();
            x[i] = (x[i] - acc) / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Materializes `A⁻¹` by solving against the identity, processed in
    /// blocks of right-hand sides so each factor row streams through the
    /// cache once per block instead of once per column.
    pub fn inverse(&self) -> Result<DenseMatrix> {
        const B: usize = 16;
        let n = self.dim();
        let mut inv = DenseMatrix::zeros(n, n);
        // Block workspace, row-major: x[i * B + b] is entry i of RHS b.
        let mut x = vec![0.0f64; n * B];
        for j0 in (0..n).step_by(B) {
            let bw = B.min(n - j0);
            x.iter_mut().for_each(|v| *v = 0.0);
            // Scatter the permuted identity columns P e_{j0..j0+bw}.
            for (i, &p) in self.pivots.iter().enumerate() {
                if (j0..j0 + bw).contains(&p) {
                    x[i * B + (p - j0)] = 1.0;
                }
            }
            // Forward substitution with unit lower factor.
            for i in 0..n {
                let row = &self.lu.row(i)[..i];
                let mut acc = [0.0f64; B];
                for (k, &lik) in row.iter().enumerate() {
                    if lik != 0.0 {
                        let xk = &x[k * B..k * B + bw];
                        for (a, &v) in acc[..bw].iter_mut().zip(xk) {
                            *a += lik * v;
                        }
                    }
                }
                let xi = &mut x[i * B..i * B + bw];
                for (v, a) in xi.iter_mut().zip(&acc[..bw]) {
                    *v -= a;
                }
            }
            // Backward substitution with the upper factor.
            for i in (0..n).rev() {
                let d = self.lu[(i, i)];
                let row = &self.lu.row(i)[i + 1..];
                let mut acc = [0.0f64; B];
                for (off, &uik) in row.iter().enumerate() {
                    if uik != 0.0 {
                        let k = i + 1 + off;
                        let xk = &x[k * B..k * B + bw];
                        for (a, &v) in acc[..bw].iter_mut().zip(xk) {
                            *a += uik * v;
                        }
                    }
                }
                let xi = &mut x[i * B..i * B + bw];
                for (v, a) in xi.iter_mut().zip(&acc[..bw]) {
                    *v = (*v - a) / d;
                }
            }
            for i in 0..n {
                for b in 0..bw {
                    inv[(i, j0 + b)] = x[i * B + b];
                }
            }
        }
        Ok(inv)
    }
}

// ---------------------------------------------------------------------------
// Sparse LU (Gilbert–Peierls, no pivoting)
// ---------------------------------------------------------------------------

/// Sparse LU factorization `A = L U` without pivoting.
///
/// ```
/// use bear_sparse::{CooMatrix, SparseLu};
/// // A diagonally dominant system.
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, -1.0);
/// coo.push(1, 1, 3.0);
/// let lu = SparseLu::factor(&coo.to_csr().to_csc()).unwrap();
/// let x = lu.solve(&[5.0, 2.0]).unwrap();
/// // 4x + y = 5, -x + 3y = 2  =>  x = 1, y = 1.
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
///
/// Left-looking Gilbert–Peierls: column `k` of the factors is obtained by a
/// sparse triangular solve `L x = A(:,k)` against the already-computed
/// columns of `L`, with the reach of the right-hand side computed by DFS so
/// each column costs time proportional to the flops it performs.
///
/// No pivoting is performed: the caller must guarantee a stable pivot-free
/// elimination order. The matrices BEAR factors (`H₁₁` blocks and the Schur
/// complement of `H`) are strictly diagonally dominant by columns, for
/// which pivot-free LU is provably stable.
#[derive(Debug, Clone)]
pub struct SparseLu {
    /// Unit lower triangular factor (diagonal stored explicitly as 1.0).
    l: CscMatrix,
    /// Upper triangular factor.
    u: CscMatrix,
}

impl SparseLu {
    /// Factorizes a square CSC matrix.
    pub fn factor(a: &CscMatrix) -> Result<Self> {
        Self::factor_with_limit(a, usize::MAX)
    }

    /// Like [`SparseLu::factor`] but aborts with
    /// [`Error::OutOfBudget`] once the combined fill of `L` and `U`
    /// exceeds `max_nnz` entries.
    pub fn factor_with_limit(a: &CscMatrix, max_nnz: usize) -> Result<Self> {
        let n = a.ncols();
        if a.nrows() != n {
            return Err(Error::DimensionMismatch {
                op: "sparse lu",
                lhs: (a.nrows(), a.ncols()),
                rhs: (n, n),
            });
        }

        // Growing CSC arrays for L and U. Column k of L is final after
        // iteration k, which is exactly what the solve for column k+1 needs.
        let mut lp: Vec<usize> = Vec::with_capacity(n + 1);
        let mut li: Vec<usize> = Vec::new();
        let mut lx: Vec<f64> = Vec::new();
        let mut up: Vec<usize> = Vec::with_capacity(n + 1);
        let mut ui: Vec<usize> = Vec::new();
        let mut ux: Vec<f64> = Vec::new();
        lp.push(0);
        up.push(0);

        // Workspaces.
        let mut x = vec![0.0f64; n];
        let mut marked = vec![false; n];
        let mut dfs: Vec<(usize, usize)> = Vec::new();
        let mut order: Vec<usize> = Vec::new();

        for k in 0..n {
            // Reach of A(:,k) over the partial L's pattern. Nodes >= k have
            // no computed L column yet, so they have no outgoing edges.
            order.clear();
            let (a_rows, a_vals) = a.col(k);
            for &start in a_rows {
                if marked[start] {
                    continue;
                }
                marked[start] = true;
                dfs.push((start, 0));
                while let Some(&mut (node, ref mut edge)) = dfs.last_mut() {
                    let (lo, hi) = if node < k {
                        (lp[node], lp[node + 1])
                    } else {
                        (0, 0) // not yet factored: identity column
                    };
                    let mut advanced = false;
                    while lo + *edge < hi {
                        let next = li[lo + *edge];
                        *edge += 1;
                        if next != node && !marked[next] {
                            marked[next] = true;
                            dfs.push((next, 0));
                            advanced = true;
                            break;
                        }
                    }
                    if !advanced {
                        order.push(node);
                        dfs.pop();
                    }
                }
            }
            order.reverse();

            // Scatter A(:,k) and run the partial solve in topological order.
            for (&i, &v) in a_rows.iter().zip(a_vals) {
                x[i] = v;
            }
            for &j in order.iter() {
                if j >= k {
                    continue; // belongs to L's not-yet-factored region
                }
                let xj = x[j];
                if xj == 0.0 {
                    continue;
                }
                // L column j: unit diagonal stored first, sub-diagonal after.
                for idx in lp[j]..lp[j + 1] {
                    let i = li[idx];
                    if i != j {
                        x[i] -= lx[idx] * xj;
                    }
                }
            }

            // Split the solution into U(:,k) (rows <= k) and L(:,k)
            // (rows > k, scaled by the pivot).
            let pivot = x[k];
            if pivot.abs() < PIVOT_TOL {
                // Clean up workspace before bailing.
                for &i in &order {
                    x[i] = 0.0;
                    marked[i] = false;
                }
                return Err(Error::SingularMatrix { at: k });
            }

            let mut upper: Vec<(usize, f64)> = Vec::new();
            let mut lower: Vec<(usize, f64)> = Vec::new();
            for &i in &order {
                let v = x[i];
                x[i] = 0.0;
                marked[i] = false;
                if v == 0.0 {
                    continue;
                }
                if i < k {
                    upper.push((i, v));
                } else if i == k {
                    // diagonal of U
                } else {
                    lower.push((i, v / pivot));
                }
            }
            upper.sort_unstable_by_key(|&(i, _)| i);
            lower.sort_unstable_by_key(|&(i, _)| i);

            for (i, v) in upper {
                ui.push(i);
                ux.push(v);
            }
            ui.push(k);
            ux.push(pivot);
            up.push(ui.len());

            li.push(k);
            lx.push(1.0);
            for (i, v) in lower {
                li.push(i);
                lx.push(v);
            }
            lp.push(li.len());

            if li.len() + ui.len() > max_nnz {
                return Err(Error::OutOfBudget {
                    needed: crate::mem::sparse_bytes(n, li.len() + ui.len()),
                    budget: crate::mem::sparse_bytes(n, max_nnz),
                });
            }
        }

        Ok(SparseLu {
            l: CscMatrix::from_raw_unchecked(n, n, lp, li, lx),
            u: CscMatrix::from_raw_unchecked(n, n, up, ui, ux),
        })
    }

    /// The unit lower triangular factor.
    pub fn l(&self) -> &CscMatrix {
        &self.l
    }

    /// The upper triangular factor.
    pub fn u(&self) -> &CscMatrix {
        &self.u
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.ncols()
    }

    /// Solves `A x = b` by forward then backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        crate::triangular::solve_lower(&self.l, &mut x, true)?;
        crate::triangular::solve_upper(&self.u, &mut x)?;
        Ok(x)
    }

    /// Materializes `L⁻¹` and `U⁻¹` as sparse matrices — the quantities
    /// BEAR's preprocessing stores (Algorithm 1, lines 5 and 8).
    pub fn invert_factors(&self) -> Result<(CscMatrix, CscMatrix)> {
        let linv = invert_triangular(&self.l, Triangle::Lower, true)?;
        let uinv = invert_triangular(&self.u, Triangle::Upper, false)?;
        Ok((linv, uinv))
    }

    /// [`SparseLu::invert_factors`] with a combined nnz cap; aborts with
    /// [`Error::OutOfBudget`] when either inverse would exceed it.
    pub fn invert_factors_with_limit(&self, max_nnz: usize) -> Result<(CscMatrix, CscMatrix)> {
        let linv = crate::triangular::invert_triangular_with_limit(
            &self.l,
            Triangle::Lower,
            true,
            max_nnz,
        )?;
        let remaining = max_nnz.saturating_sub(linv.nnz());
        let uinv = crate::triangular::invert_triangular_with_limit(
            &self.u,
            Triangle::Upper,
            false,
            remaining,
        )?;
        Ok((linv, uinv))
    }
}

// ---------------------------------------------------------------------------
// Block-diagonal LU (Lemma 1)
// ---------------------------------------------------------------------------

/// LU of a block-diagonal matrix, factored block by block.
///
/// Lemma 1 of the paper: the L/U factors (and their inverses) of a
/// block-diagonal matrix are themselves block-diagonal with the same block
/// layout, so each diagonal block can be processed independently.
#[derive(Debug, Clone)]
pub struct BlockDiagLu {
    /// Per-block factorizations paired with their starting offset.
    blocks: Vec<(usize, SparseLu)>,
    /// Total dimension.
    dim: usize,
}

/// Validates the block layout of `a` against `block_sizes` (square, sizes
/// summing to the dimension, no entry crossing a block boundary) and
/// returns each block's starting offset.
///
/// Entries outside the claimed diagonal blocks are rejected: silently
/// dropping them would make `BlockDiagLu::solve` return wrong results.
fn validate_block_layout(a: &CscMatrix, block_sizes: &[usize]) -> Result<Vec<usize>> {
    let n = a.ncols();
    if a.nrows() != n {
        return Err(Error::DimensionMismatch {
            op: "block diag lu",
            lhs: (a.nrows(), a.ncols()),
            rhs: (n, n),
        });
    }
    let total: usize = block_sizes.iter().sum();
    if total != n {
        return Err(Error::InvalidStructure(format!("block sizes sum to {total}, expected {n}")));
    }
    // Map every index to its block id and offset for validation.
    let mut block_of = vec![0usize; n];
    let mut offsets = Vec::with_capacity(block_sizes.len());
    let mut off = 0;
    for (bid, &sz) in block_sizes.iter().enumerate() {
        offsets.push(off);
        block_of[off..off + sz].fill(bid);
        off += sz;
    }
    for (r, c, _) in a.iter() {
        if block_of[r] != block_of[c] {
            return Err(Error::InvalidStructure(format!(
                "entry ({r}, {c}) crosses block boundary"
            )));
        }
    }
    Ok(offsets)
}

impl BlockDiagLu {
    /// Factors a block-diagonal matrix given as the full CSC matrix plus
    /// the list of block sizes (which must sum to the dimension).
    ///
    /// Entries outside the claimed diagonal blocks are rejected: silently
    /// dropping them would make `solve` return wrong results.
    pub fn factor(a: &CscMatrix, block_sizes: &[usize]) -> Result<Self> {
        let offsets = validate_block_layout(a, block_sizes)?;
        let csr = a.to_csr();
        let mut blocks = Vec::with_capacity(block_sizes.len());
        for (bid, &sz) in block_sizes.iter().enumerate() {
            let off = offsets[bid];
            let sub = csr.submatrix(off, off + sz, off, off + sz)?;
            let lu = SparseLu::factor(&sub.to_csc())?;
            blocks.push((off, lu));
        }
        Ok(BlockDiagLu { blocks, dim: a.ncols() })
    }

    /// Parallel [`BlockDiagLu::factor`]: the independent diagonal blocks
    /// (Lemma 1) are scheduled across `threads` scoped workers.
    ///
    /// Scheduling is cost-aware: blocks are weighted by `size²` and
    /// chunked largest-first with [`crate::parallel::balance_by_cost`],
    /// so one giant block cannot serialize the whole factorization behind
    /// a thread that also owns half the small blocks. Results are
    /// stitched back in block order, making the output bit-identical to
    /// the serial path for every thread count.
    pub fn par_factor(a: &CscMatrix, block_sizes: &[usize], threads: usize) -> Result<Self> {
        if threads.max(1) <= 1 || block_sizes.len() <= 1 {
            return Self::factor(a, block_sizes);
        }
        let offsets = validate_block_layout(a, block_sizes)?;
        let csr = a.to_csr();
        let costs: Vec<u128> =
            block_sizes.iter().map(|&s| (s as u128).saturating_mul(s as u128)).collect();
        let chunks = crate::parallel::balance_by_cost(&costs, threads);
        let per_chunk =
            crate::parallel::run_chunked(chunks, "block_diag_lu::par_factor", |chunk| {
                chunk
                    .into_iter()
                    .map(|bid| {
                        let (off, sz) = (offsets[bid], block_sizes[bid]);
                        let sub = csr.submatrix(off, off + sz, off, off + sz)?;
                        Ok((bid, SparseLu::factor(&sub.to_csc())?))
                    })
                    .collect::<Result<Vec<_>>>()
            })?;
        // Stitch in block order.
        let mut slots: Vec<Option<SparseLu>> = (0..block_sizes.len()).map(|_| None).collect();
        for (bid, lu) in per_chunk.into_iter().flatten() {
            slots[bid] = Some(lu);
        }
        let blocks = offsets
            .into_iter()
            .zip(slots)
            .map(|(off, lu)| (off, lu.expect("every block factored exactly once")))
            .collect();
        Ok(BlockDiagLu { blocks, dim: a.ncols() })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of diagonal blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Solves `A x = b` block by block.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.dim {
            return Err(Error::DimensionMismatch {
                op: "block diag solve",
                lhs: (self.dim, self.dim),
                rhs: (b.len(), 1),
            });
        }
        let mut x = vec![0.0; self.dim];
        for (off, lu) in &self.blocks {
            let n = lu.dim();
            let sol = lu.solve(&b[*off..*off + n])?;
            x[*off..*off + n].copy_from_slice(&sol);
        }
        Ok(x)
    }

    /// Materializes block-diagonal `L⁻¹` and `U⁻¹` by inverting each
    /// block's factors and concatenating them along the diagonal.
    pub fn invert_factors(&self) -> Result<(CscMatrix, CscMatrix)> {
        let mut linvs = Vec::with_capacity(self.blocks.len());
        let mut uinvs = Vec::with_capacity(self.blocks.len());
        for (_, lu) in &self.blocks {
            let (li, ui) = lu.invert_factors()?;
            linvs.push(li);
            uinvs.push(ui);
        }
        Ok((block_diag_concat(&linvs, self.dim), block_diag_concat(&uinvs, self.dim)))
    }

    /// Parallel [`BlockDiagLu::invert_factors`]: per-block triangular
    /// inversions scheduled across `threads` workers with the same
    /// `size²` cost model as [`BlockDiagLu::par_factor`], concatenated in
    /// block order so the result is bit-identical to the serial path.
    pub fn par_invert_factors(&self, threads: usize) -> Result<(CscMatrix, CscMatrix)> {
        if threads.max(1) <= 1 || self.blocks.len() <= 1 {
            return self.invert_factors();
        }
        let costs: Vec<u128> = self
            .blocks
            .iter()
            .map(|(_, lu)| (lu.dim() as u128).saturating_mul(lu.dim() as u128))
            .collect();
        let chunks = crate::parallel::balance_by_cost(&costs, threads);
        let per_chunk =
            crate::parallel::run_chunked(chunks, "block_diag_lu::par_invert_factors", |chunk| {
                chunk
                    .into_iter()
                    .map(|bid| {
                        let (li, ui) = self.blocks[bid].1.invert_factors()?;
                        Ok((bid, li, ui))
                    })
                    .collect::<Result<Vec<_>>>()
            })?;
        let mut linvs: Vec<Option<CscMatrix>> = (0..self.blocks.len()).map(|_| None).collect();
        let mut uinvs: Vec<Option<CscMatrix>> = (0..self.blocks.len()).map(|_| None).collect();
        for (bid, li, ui) in per_chunk.into_iter().flatten() {
            linvs[bid] = Some(li);
            uinvs[bid] = Some(ui);
        }
        let linvs: Vec<CscMatrix> =
            linvs.into_iter().map(|m| m.expect("every block inverted exactly once")).collect();
        let uinvs: Vec<CscMatrix> =
            uinvs.into_iter().map(|m| m.expect("every block inverted exactly once")).collect();
        Ok((block_diag_concat(&linvs, self.dim), block_diag_concat(&uinvs, self.dim)))
    }
}

impl Invariant for SparseLu {
    fn validate(&self) -> Result<()> {
        let n = self.l.ncols();
        if self.l.nrows() != n || self.u.nrows() != n || self.u.ncols() != n {
            return Err(Error::InvalidStructure(format!(
                "LU factors are not square matrices of one dimension: L is {}x{}, U is {}x{}",
                self.l.nrows(),
                self.l.ncols(),
                self.u.nrows(),
                self.u.ncols()
            )));
        }
        self.l.validate()?;
        self.u.validate()?;
        for j in 0..n {
            // L: unit lower triangular with the diagonal stored explicitly.
            let (rows, vals) = self.l.col(j);
            match (rows.first(), vals.first()) {
                (Some(&r), Some(&v)) if r == j && v == 1.0 => {}
                _ => {
                    return Err(Error::InvalidStructure(format!(
                        "L column {j} does not start with an explicit unit diagonal"
                    )))
                }
            }
            // U: upper triangular, so row indices in column j end at j.
            let (rows, _) = self.u.col(j);
            if let Some(&r) = rows.last() {
                if r > j {
                    return Err(Error::InvalidStructure(format!(
                        "U has a sub-diagonal entry ({r}, {j})"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Invariant for BlockDiagLu {
    fn validate(&self) -> Result<()> {
        let mut expected_off = 0;
        for (off, lu) in &self.blocks {
            if *off != expected_off {
                return Err(Error::InvalidStructure(format!(
                    "block offset {off} != running width sum {expected_off}"
                )));
            }
            lu.validate()?;
            expected_off += lu.dim();
        }
        if expected_off != self.dim {
            return Err(Error::InvalidStructure(format!(
                "block widths sum to {expected_off}, expected partition dimension {}",
                self.dim
            )));
        }
        Ok(())
    }
}

/// Concatenates square CSC matrices along the diagonal into one CSC matrix
/// of dimension `dim` (which must equal the sum of block dimensions).
pub fn block_diag_concat(blocks: &[CscMatrix], dim: usize) -> CscMatrix {
    debug_assert_eq!(blocks.iter().map(|b| b.ncols()).sum::<usize>(), dim);
    let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
    let mut indptr = Vec::with_capacity(dim + 1);
    let mut indices = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    indptr.push(0);
    let mut off = 0;
    for b in blocks {
        for c in 0..b.ncols() {
            let (rows, vals) = b.col(c);
            indices.extend(rows.iter().map(|&r| r + off));
            values.extend_from_slice(vals);
            indptr.push(indices.len());
        }
        off += b.ncols();
    }
    CscMatrix::from_raw_unchecked(dim, dim, indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::ops::spgemm;

    fn dense_to_csc(d: &DenseMatrix) -> CscMatrix {
        d.to_csr(0.0).to_csc()
    }

    #[test]
    fn dense_lu_solves_known_system() {
        let a = DenseMatrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]).unwrap();
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&[10.0, 12.0]).unwrap();
        // 4x + 3y = 10, 6x + 3y = 12 => x = 1, y = 2.
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dense_lu_inverse_round_trip() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]])
            .unwrap();
        let inv = DenseLu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)) < 1e-12);
    }

    #[test]
    fn dense_lu_detects_singular() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(DenseLu::factor(&a), Err(Error::SingularMatrix { .. })));
    }

    #[test]
    fn dense_lu_pivots_when_needed() {
        // Leading zero forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    /// A diagonally dominant sparse test matrix.
    fn dd_matrix() -> CscMatrix {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 4.0);
        }
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -0.5);
        coo.push(1, 2, -1.0);
        coo.push(2, 3, -0.5);
        coo.push(3, 0, -1.0);
        coo.to_csr().to_csc()
    }

    #[test]
    fn sparse_lu_reconstructs_matrix() {
        let a = dd_matrix();
        let lu = SparseLu::factor(&a).unwrap();
        let prod = spgemm(&lu.l().to_csr(), &lu.u().to_csr()).unwrap();
        assert!(prod.approx_eq(&a.to_csr(), 1e-12));
    }

    #[test]
    fn sparse_lu_solve_matches_dense() {
        let a = dd_matrix();
        let lu = SparseLu::factor(&a).unwrap();
        let dense_lu = DenseLu::factor(&a.to_csr().to_dense()).unwrap();
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let xs = lu.solve(&b).unwrap();
        let xd = dense_lu.solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-10);
        }
    }

    #[test]
    fn sparse_lu_factors_are_triangular() {
        let a = dd_matrix();
        let lu = SparseLu::factor(&a).unwrap();
        for (r, c, _) in lu.l().iter() {
            assert!(r >= c, "L has entry above diagonal at ({r},{c})");
        }
        for (r, c, _) in lu.u().iter() {
            assert!(r <= c, "U has entry below diagonal at ({r},{c})");
        }
        // L diagonal is exactly 1.
        for j in 0..4 {
            assert_eq!(lu.l().get(j, j), 1.0);
        }
    }

    #[test]
    fn sparse_lu_inverted_factors_multiply_to_inverse() {
        let a = dd_matrix();
        let lu = SparseLu::factor(&a).unwrap();
        let (linv, uinv) = lu.invert_factors().unwrap();
        // A^{-1} = U^{-1} L^{-1}.
        let ainv = spgemm(&uinv.to_csr(), &linv.to_csr()).unwrap();
        let prod = spgemm(&a.to_csr(), &ainv).unwrap();
        assert!(prod.approx_eq(&CsrMatrix::identity(4), 1e-10));
    }

    #[test]
    fn sparse_lu_detects_singular() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        // Column 1 empty -> singular at pivot 1.
        let a = coo.to_csr().to_csc();
        assert!(matches!(SparseLu::factor(&a), Err(Error::SingularMatrix { at: 1 })));
    }

    #[test]
    fn block_diag_lu_matches_whole_matrix_lu() {
        // Two blocks of sizes 2 and 3, all diagonally dominant.
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 5.0);
        }
        coo.push(0, 1, 1.0);
        coo.push(1, 0, -1.0);
        coo.push(2, 3, 0.5);
        coo.push(3, 4, -0.5);
        coo.push(4, 2, 1.0);
        let a = coo.to_csr().to_csc();
        let block_lu = BlockDiagLu::factor(&a, &[2, 3]).unwrap();
        let whole_lu = SparseLu::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let xb = block_lu.solve(&b).unwrap();
        let xw = whole_lu.solve(&b).unwrap();
        for (p, q) in xb.iter().zip(&xw) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn block_diag_lu_rejects_cross_block_entries() {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 2.0);
        }
        coo.push(0, 3, 1.0); // crosses the 2|2 boundary
        let a = coo.to_csr().to_csc();
        assert!(BlockDiagLu::factor(&a, &[2, 2]).is_err());
    }

    #[test]
    fn block_diag_inverse_factors_lemma1() {
        // Lemma 1: inverted factors of a block-diagonal matrix are
        // block-diagonal and equal to the whole-matrix inverted factors.
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 3.0);
        }
        coo.push(1, 0, 1.0);
        coo.push(2, 3, -1.0);
        let a = coo.to_csr().to_csc();
        let block_lu = BlockDiagLu::factor(&a, &[2, 2]).unwrap();
        let (bl, bu) = block_lu.invert_factors().unwrap();
        let whole = SparseLu::factor(&a).unwrap();
        let (wl, wu) = whole.invert_factors().unwrap();
        assert!(bl.to_csr().approx_eq(&wl.to_csr(), 1e-12));
        assert!(bu.to_csr().approx_eq(&wu.to_csr(), 1e-12));
        // And entries never cross block boundaries.
        for (r, c, _) in bl.iter() {
            assert_eq!(r / 2, c / 2);
        }
    }

    #[test]
    fn block_sizes_must_sum_to_dim() {
        let a = CscMatrix::identity(4);
        assert!(BlockDiagLu::factor(&a, &[2, 1]).is_err());
        assert!(BlockDiagLu::par_factor(&a, &[2, 1], 4).is_err());
    }

    /// Diagonally dominant block-diagonal matrix with heterogeneous block
    /// sizes (one big block plus many small ones — the shape SlashBurn
    /// produces, and the one that exercises cost-aware chunking).
    fn random_block_diag(block_sizes: &[usize], seed: u64) -> CscMatrix {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n: usize = block_sizes.iter().sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        let mut off = 0;
        for &sz in block_sizes {
            for i in 0..sz {
                let mut row_sum = 0.0;
                for j in 0..sz {
                    if i != j && rng.gen_bool(0.4) {
                        let v: f64 = rng.gen_range(-1.0..1.0);
                        coo.push(off + i, off + j, v);
                        row_sum += v.abs();
                    }
                }
                coo.push(off + i, off + i, row_sum + 1.0);
            }
            off += sz;
        }
        coo.to_csr().to_csc()
    }

    #[test]
    fn par_factor_bit_identical_to_serial() {
        let sizes = [7usize, 1, 3, 12, 2, 2, 5, 1, 1, 4];
        let a = random_block_diag(&sizes, 11);
        let serial = BlockDiagLu::factor(&a, &sizes).unwrap();
        let (sl, su) = serial.invert_factors().unwrap();
        for threads in [1, 2, 3, 4, 8] {
            let par = BlockDiagLu::par_factor(&a, &sizes, threads).unwrap();
            assert_eq!(par.num_blocks(), serial.num_blocks());
            // Factors and their inverses are bit-identical: same indptr,
            // indices, and values, not just numerically close.
            let (pl, pu) = par.invert_factors().unwrap();
            assert_eq!(pl, sl);
            assert_eq!(pu, su);
            let (ppl, ppu) = par.par_invert_factors(threads).unwrap();
            assert_eq!(ppl, sl);
            assert_eq!(ppu, su);
            // Solves agree exactly as well.
            let b: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).cos()).collect();
            assert_eq!(par.solve(&b).unwrap(), serial.solve(&b).unwrap());
        }
    }

    #[test]
    fn par_factor_propagates_singular_block() {
        // Second block singular (zero column).
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 2.0);
        coo.push(2, 2, 1.0);
        // Column 3 is empty -> singular.
        let a = coo.to_csr().to_csc();
        let err = BlockDiagLu::par_factor(&a, &[2, 2], 2).unwrap_err();
        assert!(matches!(err, Error::SingularMatrix { .. }), "got {err:?}");
    }

    #[test]
    fn factor_with_limit_aborts_on_fill() {
        let a = dd_matrix();
        assert!(matches!(SparseLu::factor_with_limit(&a, 3), Err(Error::OutOfBudget { .. })));
        // A generous limit succeeds.
        assert!(SparseLu::factor_with_limit(&a, 1_000).is_ok());
    }

    #[test]
    fn invert_factors_with_limit_aborts_on_fill() {
        let a = dd_matrix();
        let lu = SparseLu::factor(&a).unwrap();
        assert!(matches!(lu.invert_factors_with_limit(2), Err(Error::OutOfBudget { .. })));
        let (l, u) = lu.invert_factors_with_limit(1_000).unwrap();
        let (l2, u2) = lu.invert_factors().unwrap();
        assert_eq!(l.to_csr(), l2.to_csr());
        assert_eq!(u.to_csr(), u2.to_csr());
    }

    #[test]
    fn dense_lu_matches_sparse_on_random_dd() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20;
        let mut d = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j && rng.gen_bool(0.2) {
                    d[(i, j)] = rng.gen_range(-1.0..1.0);
                }
            }
        }
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| d[(i, j)].abs()).sum();
            d[(i, i)] = row_sum + 1.0;
        }
        let sparse = dense_to_csc(&d);
        let slu = SparseLu::factor(&sparse).unwrap();
        let dlu = DenseLu::factor(&d).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xs = slu.solve(&b).unwrap();
        let xd = dlu.solve(&b).unwrap();
        for (s, dd) in xs.iter().zip(&xd) {
            assert!((s - dd).abs() < 1e-9);
        }
    }
}
