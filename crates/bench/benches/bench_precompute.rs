//! Criterion micro-benchmark: serial vs multi-threaded BEAR
//! preprocessing (`BearConfig::threads`), exact and with drop-tolerance
//! sparsification. The parallel path is bit-identical to serial, so the
//! only question this answers is wall-clock speedup.
//!
//! `cargo bench -p bear-bench --bench bench_precompute`; the
//! `precompute_speedup` bin records the same comparison as JSON under
//! `results/`.

use bear_core::{Bear, BearConfig};
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SlashBurn-friendly benchmark graph: many moderate caves so the
/// block-diagonal LU stage has real parallel work to balance.
fn bench_graph() -> bear_graph::Graph {
    hub_and_spoke(
        &HubSpokeConfig {
            num_hubs: 12,
            num_caves: 120,
            max_cave_size: 24,
            cave_density: 0.3,
            hub_links: 2,
            hub_density: 0.4,
        },
        &mut StdRng::seed_from_u64(42),
    )
}

fn bench_precompute(c: &mut Criterion) {
    let g = bench_graph();
    let mut group = c.benchmark_group("precompute");
    group.sample_size(10);
    for xi in [0.0, 1e-4] {
        for threads in [1usize, 2, 4] {
            let config = BearConfig { threads, drop_tolerance: xi, ..BearConfig::default() };
            let label = format!("xi={xi}/threads={threads}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
                b.iter(|| std::hint::black_box(Bear::new(&g, config).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_precompute);
criterion_main!(benches);
