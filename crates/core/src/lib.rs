//! BEAR: Block Elimination Approach for Random Walk with Restart.
//!
//! Reproduction of Shin, Sael, Jung & Kang (SIGMOD 2015). Given a graph
//! `G` and restart probability `c`, random walk with restart scores solve
//!
//! ```text
//! H r = c q,    H = I − (1 − c) Ãᵀ
//! ```
//!
//! where `Ã` is the row-normalized adjacency matrix and `q` is the
//! one-hot starting vector of the seed node. BEAR preprocesses `H` once —
//! reorder with SlashBurn so the spoke–spoke block `H₁₁` is block
//! diagonal, LU-factor `H₁₁` block by block, form the Schur complement
//! `S` of `H₁₁`, LU-factor `S`, and store the *inverses* of all four
//! triangular factors plus the off-diagonal blocks `H₁₂`, `H₂₁` — and
//! then answers each query with two sparse block-elimination sweeps
//! (Algorithm 2).
//!
//! # Quick start
//!
//! ```
//! use bear_graph::Graph;
//! use bear_core::{Bear, BearConfig, RwrSolver};
//!
//! // A toy graph: star with hub 0.
//! let g = Graph::from_edges(5, &[(0, 1), (1, 0), (0, 2), (2, 0), (0, 3), (3, 0), (0, 4), (4, 0)]).unwrap();
//! let bear = Bear::new(&g, &BearConfig::default()).unwrap();
//! let scores = bear.query(1).unwrap();
//! assert_eq!(scores.len(), 5);
//! // Scores are a probability distribution on this strongly connected graph,
//! // and the seed leaf outranks the other leaves.
//! assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-10);
//! assert!(scores[1] > scores[2]);
//! ```

pub mod crc32;
pub mod dynamic;
pub mod engine;
#[cfg(feature = "failpoints")]
pub mod failpoints;
#[cfg(not(loom))]
pub mod fallback;
pub mod hub_iterative;
pub mod metrics;
pub mod paging;
pub mod persist;
pub mod precompute;
pub mod query;
pub mod rwr;
pub mod solver;
pub mod stats;
pub(crate) mod sync;
pub mod topk;
pub mod topk_pruned;
pub mod variants;

/// Evaluates a named failpoint site (see the `failpoints` module, gated
/// behind the cargo feature of the same name); expands to nothing when
/// the `failpoints` feature is off, so production builds
/// carry no fault-injection code. Use `?`-compatible positions only —
/// the site returns the injected error to its caller.
#[macro_export]
macro_rules! fail_point {
    ($site:literal) => {
        #[cfg(feature = "failpoints")]
        $crate::failpoints::eval($site)?;
    };
}

pub use dynamic::{DynamicBear, UpdateKind};
pub use engine::{BlockWorkspace, MetricsSnapshot, QueryWorkspace};
#[cfg(not(loom))]
pub use engine::{
    CancelToken, DegradedInfo, EngineConfig, EngineConfigBuilder, OverloadPolicy, QueryEngine,
    QueryOptions, Served, TopKServed, TopKStrategy,
};
#[cfg(not(loom))]
pub use fallback::{DegradedReason, FallbackAnswer, FallbackSolver, DEFAULT_FALLBACK_ITERATIONS};
pub use hub_iterative::BearHubIterative;
pub use paging::{BlockPager, PagerStats};
pub use persist::LoadOptions;
pub use precompute::{preprocess_to_disk, Bear, BearConfig};
pub use rwr::{build_h, Normalization, RwrConfig};
pub use solver::RwrSolver;
pub use stats::{PrecomputedStats, StageTimings};
pub use topk::ScoredNode;
pub use topk_pruned::{TopKFallbackReason, TopKPruneOptions, TopKPruneStats};
