//! Quickstart: build a graph, preprocess it with BEAR, and answer RWR
//! queries — exactly the workflow of the paper's Algorithms 1 and 2.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bear_core::{Bear, BearConfig, RwrSolver};
use bear_graph::io::parse_edge_list;

fn main() {
    // A small social network as an edge list (SNAP-style format, the same
    // format `bear_graph::io::read_edge_list` reads from disk).
    let edges = "\
        # a two-community toy graph with a bridge
        0 1\n1 0\n0 2\n2 0\n1 2\n2 1\n2 3\n3 2\n1 3\n3 1\n
        3 4\n4 3\n
        4 5\n5 4\n5 6\n6 5\n4 6\n6 4\n6 7\n7 6\n5 7\n7 5\n";
    let graph = parse_edge_list(edges, None).expect("valid edge list");
    println!("graph: {} nodes, {} directed edges", graph.num_nodes(), graph.num_edges());

    // Preprocessing phase (Algorithm 1). BEAR-Exact: drop tolerance 0.
    let bear = Bear::new(&graph, &BearConfig::exact(0.15)).expect("preprocessing");
    println!(
        "preprocessed: n1 = {} spokes, n2 = {} hubs, {} diagonal blocks, {} bytes",
        bear.n_spokes(),
        bear.n_hubs(),
        bear.block_sizes().len(),
        bear.memory_bytes()
    );

    // Query phase (Algorithm 2): RWR scores w.r.t. seed node 0.
    let seed = 0;
    let scores = bear.query(seed).expect("query");
    let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nRWR scores w.r.t. node {seed} (highest first):");
    for (node, score) in &ranked {
        println!("  node {node}: {score:.5}");
    }

    // Nodes in the seed's community (0-3) must outrank the other side.
    let worst_own: f64 = (0..4).map(|u| scores[u]).fold(f64::INFINITY, f64::min);
    let best_other: f64 = (4..8).map(|u| scores[u]).fold(0.0, f64::max);
    assert!(worst_own > best_other, "community structure not reflected");
    println!("\nevery same-community node outranks every cross-community node ✓");

    // BEAR-Approx: trade a little accuracy for space.
    let approx = Bear::new(&graph, &BearConfig::approx(0.15, 1e-3)).expect("approx");
    let approx_scores = approx.query(seed).expect("query");
    let cos = bear_core::metrics::cosine_similarity(&scores, &approx_scores);
    println!(
        "BEAR-Approx(ξ=1e-3): {} bytes (exact: {}), cosine similarity {:.6}",
        approx.memory_bytes(),
        bear.memory_bytes(),
        cos
    );
}
