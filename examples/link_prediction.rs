//! Link prediction with RWR (Liben-Nowell & Kleinberg): hide a fraction
//! of a node's edges, rank all non-neighbors by their RWR score w.r.t.
//! the node, and check that the hidden neighbors surface near the top.
//!
//! The graph is a clustered social network (dense friend groups bridged
//! by a few connectors) — the regime where proximity-based link
//! prediction is informative.
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```

use bear_core::{Bear, BearConfig};
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use bear_graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // Dense friend groups (caves) tied together by a few connector hubs.
    let full = hub_and_spoke(
        &HubSpokeConfig {
            num_hubs: 8,
            num_caves: 50,
            max_cave_size: 14,
            cave_density: 0.6,
            hub_links: 1,
            hub_density: 0.4,
        },
        &mut rng,
    );
    println!("graph: {} nodes, {} edges", full.num_nodes(), full.num_edges());

    // Probe: the highest-degree non-hub node (hubs occupy ids 0..8).
    let degrees = full.undirected_degrees();
    let probe = (8..full.num_nodes()).max_by_key(|&u| degrees[u]).unwrap();
    let sym = full.symmetrized_pattern();
    let mut probe_nbrs: Vec<usize> = sym.row(probe).0.to_vec();
    probe_nbrs.shuffle(&mut rng);
    let hidden: Vec<usize> = probe_nbrs[..probe_nbrs.len() * 3 / 10].to_vec();
    println!("probe node {probe} with degree {}; hiding {} edges", probe_nbrs.len(), hidden.len());

    // Train on the symmetrized graph with the hidden edges removed.
    let mut train_edges: Vec<(usize, usize)> = Vec::new();
    for (u, v, _) in sym.iter() {
        if (u == probe && hidden.contains(&v)) || (v == probe && hidden.contains(&u)) {
            continue;
        }
        train_edges.push((u, v));
    }
    let train = Graph::from_edges(full.num_nodes(), &train_edges).expect("train graph");

    // Rank candidates (non-neighbors in the training graph) by RWR.
    let bear = Bear::new(&train, &BearConfig::exact(0.15)).expect("preprocessing");
    let scores = bear.query(probe).expect("query");
    let train_sym = train.symmetrized_pattern();
    let train_nbrs = train_sym.row(probe).0;
    let mut candidates: Vec<usize> =
        (0..train.num_nodes()).filter(|&u| u != probe && !train_nbrs.contains(&u)).collect();
    candidates.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());

    // Where do the hidden edges land in the ranking?
    let top_k = hidden.len().max(10);
    let recovered =
        candidates[..top_k.min(candidates.len())].iter().filter(|u| hidden.contains(u)).count();
    println!(
        "recovered {recovered}/{} hidden neighbors in the top {top_k} \
         (random baseline would get ~{:.2})",
        hidden.len(),
        top_k as f64 * hidden.len() as f64 / candidates.len() as f64
    );
    let mean_rank: f64 =
        hidden.iter().map(|h| candidates.iter().position(|c| c == h).unwrap() as f64).sum::<f64>()
            / hidden.len() as f64;
    println!("mean rank of hidden neighbors: {:.1} of {} candidates", mean_rank, candidates.len());
    assert!(
        recovered as f64 >= hidden.len() as f64 * 0.5,
        "RWR failed to recover at least half of the hidden edges"
    );
    println!("at least half of the hidden edges recovered in the top {top_k} ✓");
}
