//! Blocked multi-RHS query speedup: the recordable counterpart of the
//! `bench_query_block` Criterion benchmark. Answers the same seed set
//! through [`Bear::query_block_into`] at widths 1/4/16/64 and through
//! the per-seed [`Bear::query_into`] path, verifies every blocked answer
//! is bit-identical to the per-seed answer, and reports per-query
//! amortized latency (best of `--reps`) plus the speedup over width 1.
//!
//! The win comes from amortization: a width-`k` solve walks each sparse
//! factor's structure once per block instead of once per seed, so the
//! index-decoding and streaming traffic is divided by `k`. Width 16 is
//! asserted strictly faster per query than width 1 — that inequality is
//! the whole point of the blocked engine path.
//!
//! ```text
//! cargo run --release -p bear-bench --bin query_block_speedup \
//!     [--reps 5] [--seeds 256] [--json results/BENCH_query_block.json]
//! ```

use bear_bench::cli::Args;
use bear_bench::harness::{measure, ExperimentResult, ResultRow};
use bear_core::{Bear, BearConfig, BlockWorkspace, QueryWorkspace};
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use bear_sparse::DenseBlock;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let reps: usize = args.get_or("--reps", 5usize).max(1);
    let num_seeds: usize = args.get_or("--seeds", 256usize).max(1);
    let json_path = args.get("--json").unwrap_or("results/BENCH_query_block.json").to_string();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Many moderate caves: enough factor structure that streaming it
    // dominates a query, which is exactly what blocking amortizes.
    let g = hub_and_spoke(
        &HubSpokeConfig {
            num_hubs: 16,
            num_caves: 220,
            max_cave_size: 28,
            cave_density: 0.3,
            hub_links: 2,
            hub_density: 0.4,
        },
        &mut StdRng::seed_from_u64(42),
    );
    let bear = Bear::new(&g, &BearConfig::exact(0.05)).expect("preprocess");
    let n = bear.num_nodes();
    let seeds: Vec<usize> = (0..num_seeds).map(|i| (i * 2654435761) % n).collect();

    let mut out = ExperimentResult::new(
        "query_block_speedup",
        &format!(
            "per-query latency of blocked multi-RHS queries vs per-seed \
             (best of {reps} passes over {num_seeds} seeds); host grants \
             {host_cores} core(s); all widths bit-identical to per-seed"
        ),
    );
    println!(
        "graph: n={} m={} | host cores: {host_cores} | {num_seeds} seeds, best of {reps} passes",
        g.num_nodes(),
        g.num_edges()
    );

    // Per-seed reference pass: baseline latency and the ground truth for
    // the bit-identity check below.
    let mut ws = QueryWorkspace::for_bear(&bear);
    let mut reference: Vec<Vec<f64>> = seeds.iter().map(|_| vec![0.0; n]).collect();
    let mut per_seed_s = f64::INFINITY;
    for _ in 0..reps {
        let (_, secs) = measure(|| {
            for (&seed, result) in seeds.iter().zip(reference.iter_mut()) {
                bear.query_into(seed, &mut ws, result).expect("query");
            }
        });
        per_seed_s = per_seed_s.min(secs);
    }
    let per_seed_query = per_seed_s / num_seeds as f64;
    println!("{:<10} {:>14} {:>10}", "path", "per-query(us)", "speedup");
    println!("{:<10} {:>14.3} {:>9.2}x", "per_seed", per_seed_query * 1e6, 1.0);
    let mut row = ResultRow::new("hub_and_spoke_220x28", "per_seed");
    row.param = Some(format!("host_cores={host_cores}"));
    row.query_s = Some(per_seed_query);
    out.rows.push(row);

    let mut block_ws = BlockWorkspace::for_bear(&bear);
    let mut block_out = DenseBlock::zeros(n, 0);
    let mut per_query_at = std::collections::HashMap::new();
    for width in [1usize, 4, 16, 64] {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let (_, secs) = measure(|| {
                for chunk in seeds.chunks(width) {
                    block_out.reset(n, chunk.len());
                    bear.query_block_into(chunk, &mut block_ws, &mut block_out).expect("block");
                }
            });
            best = best.min(secs);
        }
        // The guarantee the speedup rides on: every blocked answer is
        // bit-identical to the per-seed answer.
        let mut offset = 0;
        for chunk in seeds.chunks(width) {
            block_out.reset(n, chunk.len());
            bear.query_block_into(chunk, &mut block_ws, &mut block_out).expect("block");
            for j in 0..chunk.len() {
                assert_eq!(block_out.col(j), &reference[offset + j][..], "width {width} diverged");
            }
            offset += chunk.len();
        }
        let per_query = best / num_seeds as f64;
        per_query_at.insert(width, per_query);
        let speedup = per_seed_query / per_query;
        println!("{:<10} {:>14.3} {:>9.2}x", format!("width_{width}"), per_query * 1e6, speedup);
        let mut row = ResultRow::new("hub_and_spoke_220x28", "query_block");
        row.param =
            Some(format!("width={width} speedup_vs_per_seed={speedup:.3} host_cores={host_cores}"));
        row.query_s = Some(per_query);
        out.rows.push(row);
    }

    let w1 = per_query_at[&1];
    let w16 = per_query_at[&16];
    assert!(
        w16 < w1,
        "width-16 per-query latency ({:.3}us) must be strictly below width 1 ({:.3}us)",
        w16 * 1e6,
        w1 * 1e6
    );
    println!(
        "width 16 amortizes each query to {:.1}% of width 1 — blocking pays off",
        100.0 * w16 / w1
    );

    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    out.write_json(&json_path).expect("write json");
    println!("wrote {json_path}");
}
