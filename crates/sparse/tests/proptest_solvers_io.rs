//! Property-based tests for the iterative solvers and Matrix Market I/O.

use bear_sparse::mm_io::{parse_matrix_market, read_matrix_market, write_matrix_market};
use bear_sparse::solvers::{bicgstab, jacobi, SolveOptions};
use bear_sparse::{CooMatrix, CsrMatrix, DenseLu, DenseMatrix};
use proptest::prelude::*;

/// Strategy: a random square, strictly row+column diagonally dominant
/// matrix on which both Jacobi and BiCGSTAB are guaranteed to converge.
fn arb_dd_system() -> impl Strategy<Value = (CsrMatrix, Vec<f64>)> {
    (2usize..25).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..n * 3);
        let rhs = proptest::collection::vec(-5.0f64..5.0, n..=n);
        (entries, rhs).prop_map(move |(off, b)| {
            let mut dense = DenseMatrix::zeros(n, n);
            for (i, j, v) in off {
                if i != j {
                    dense[(i, j)] = v;
                }
            }
            for i in 0..n {
                let row: f64 = (0..n).map(|j| dense[(i, j)].abs()).sum();
                let col: f64 = (0..n).map(|j| dense[(j, i)].abs()).sum();
                dense[(i, i)] = row.max(col) + 1.0;
            }
            (dense.to_csr(0.0), b)
        })
    })
}

fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..12, 1usize..12).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r, 0..c, -100.0f64..100.0), 0..(r * c).min(40)).prop_map(
            move |triplets| {
                let mut coo = CooMatrix::new(r, c);
                for (i, j, v) in triplets {
                    coo.push(i, j, v);
                }
                coo.to_csr()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn jacobi_solves_dd_systems((a, b) in arb_dd_system()) {
        let x = jacobi(&a, &b, &SolveOptions::default()).unwrap();
        let oracle = DenseLu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        for (p, q) in x.iter().zip(&oracle) {
            prop_assert!((p - q).abs() < 1e-7, "{p} vs {q}");
        }
    }

    #[test]
    fn bicgstab_solves_dd_systems((a, b) in arb_dd_system()) {
        let x = bicgstab(&a, &b, &SolveOptions::default()).unwrap();
        let oracle = DenseLu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        for (p, q) in x.iter().zip(&oracle) {
            prop_assert!((p - q).abs() < 1e-7, "{p} vs {q}");
        }
    }

    #[test]
    fn residual_actually_small((a, b) in arb_dd_system()) {
        let x = bicgstab(&a, &b, &SolveOptions::default()).unwrap();
        let ax = a.matvec(&x).unwrap();
        let res: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(res <= 1e-9 * bn.max(1.0), "residual {res}");
    }

    #[test]
    fn matrix_market_file_round_trip(m in arb_matrix()) {
        let path = std::env::temp_dir().join(format!(
            "bear_mm_prop_{}_{}_{}.mtx",
            m.nrows(),
            m.ncols(),
            m.nnz()
        ));
        write_matrix_market(&m, &path).unwrap();
        let back = read_matrix_market(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.nrows(), m.nrows());
        prop_assert_eq!(back.ncols(), m.ncols());
        prop_assert!(back.approx_eq(&m, 1e-12));
    }

    #[test]
    fn matrix_market_string_round_trip_preserves_exact_values(m in arb_matrix()) {
        // %.17e formatting is lossless for f64.
        let mut text = format!(
            "%%MatrixMarket matrix coordinate real general\n{} {} {}\n",
            m.nrows(),
            m.ncols(),
            m.nnz()
        );
        for (r, c, v) in m.iter() {
            text.push_str(&format!("{} {} {:.17e}\n", r + 1, c + 1, v));
        }
        let back = parse_matrix_market(&text).unwrap();
        prop_assert_eq!(back, m);
    }
}
