//! Integration tests for the memory-budget ("out of memory") semantics
//! the harness uses to reproduce the paper's omitted bars: dense methods
//! refuse before allocating, fill-bounded methods abort mid-flight, and
//! no-preprocessing methods are unaffected.

use bear_baselines::{Inversion, Iterative, IterativeConfig, LuDecomp, QrDecomp};
use bear_core::rwr::RwrConfig;
use bear_core::{Bear, BearConfig, RwrSolver};
use bear_datasets::small_suite;
use bear_sparse::mem::MemBudget;
use bear_sparse::Error;

#[test]
fn dense_methods_refuse_under_tiny_budget() {
    let g = small_suite()[0].load();
    let rwr = RwrConfig::default();
    let tiny = MemBudget::bytes(4096);
    assert!(matches!(Inversion::new(&g, &rwr, &tiny), Err(Error::OutOfBudget { .. })));
    assert!(matches!(QrDecomp::new(&g, &rwr, &tiny), Err(Error::OutOfBudget { .. })));
}

#[test]
fn lu_decomp_aborts_rather_than_filling_in() {
    let g = small_suite()[2].load(); // hub-heavy: whole-matrix inverse fills
    let rwr = RwrConfig::default();
    let tiny = MemBudget::bytes(16 * 1024);
    assert!(matches!(LuDecomp::new(&g, &rwr, &tiny), Err(Error::OutOfBudget { .. })));
}

#[test]
fn bear_honours_its_budget() {
    let g = small_suite()[0].load();
    let config = BearConfig { budget: MemBudget::bytes(256), ..BearConfig::default() };
    assert!(matches!(Bear::new(&g, &config), Err(Error::OutOfBudget { .. })));
}

#[test]
fn bear_fits_where_dense_methods_do_not() {
    // A budget sized so BEAR succeeds while inversion/QR refuse — the
    // crossover the paper's Figure 5 shows.
    let g = small_suite()[0].load();
    let rwr = RwrConfig::default();
    let bear = Bear::new(&g, &BearConfig::default()).unwrap();
    let budget_bytes = bear.memory_bytes() * 2;
    let budget = MemBudget::bytes(budget_bytes);
    let config = BearConfig { budget, ..BearConfig::default() };
    assert!(Bear::new(&g, &config).is_ok());
    assert!(matches!(Inversion::new(&g, &rwr, &budget), Err(Error::OutOfBudget { .. })));
    assert!(matches!(QrDecomp::new(&g, &rwr, &budget), Err(Error::OutOfBudget { .. })));
}

#[test]
fn iterative_method_needs_no_budget() {
    let g = small_suite()[0].load();
    let it = Iterative::new(&g, &IterativeConfig::default()).unwrap();
    assert_eq!(it.memory_bytes(), 0);
    assert!(it.query(0).is_ok());
}

#[test]
fn unlimited_budget_never_fails_for_budget_reasons() {
    let g = small_suite()[0].load();
    let rwr = RwrConfig::default();
    let unlimited = MemBudget::unlimited();
    assert!(Inversion::new(&g, &rwr, &unlimited).is_ok());
    assert!(QrDecomp::new(&g, &rwr, &unlimited).is_ok());
    assert!(LuDecomp::new(&g, &rwr, &unlimited).is_ok());
}

/// Exceeding the budget at load time means different things per format:
/// a fully resident v1/v2 image that does not fit is a typed
/// [`Error::OutOfBudget`], while a v3 image *pages* — the same budget
/// that rejects the resident formats serves the sharded one, with
/// answers bit-identical to an unlimited load.
#[test]
fn v3_pages_under_a_budget_that_rejects_resident_formats() {
    use bear_core::LoadOptions;

    let g = small_suite()[0].load();
    let bear = Bear::new(&g, &BearConfig::default()).unwrap();
    let dir = std::env::temp_dir();
    let v1 = dir.join("bear_oom_v1.idx");
    let v2 = dir.join("bear_oom_v2.idx");
    let v3 = dir.join("bear_oom_v3.idx");
    bear.save_v1(&v1).unwrap();
    bear.save(&v2).unwrap();
    bear.save_v3(&v3).unwrap();

    // A budget one byte short of the full index: the resident formats
    // need all of it and must refuse, while v3 only charges its hub
    // part (the spoke factors page) and loads fine.
    let full = bear.memory_bytes();
    let budget_bytes = full - 1;
    let opts = LoadOptions { budget: MemBudget::bytes(budget_bytes), resident: false };
    assert!(
        matches!(Bear::load_with(&v1, &opts), Err(Error::OutOfBudget { .. })),
        "a v1 image over budget must fail typed, not load"
    );
    assert!(
        matches!(Bear::load_with(&v2, &opts), Err(Error::OutOfBudget { .. })),
        "a v2 image over budget must fail typed, not load"
    );
    let paged = Bear::load_with(&v3, &opts)
        .expect("a v3 image over budget must page its spoke factors, not error");
    assert!(paged.pager().is_some(), "under-budget v3 load must be paged");
    for seed in [0, 1, g.num_nodes() - 1] {
        let got = paged.query(seed).unwrap();
        let want = bear.query(seed).unwrap();
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits(), "paged answer drifted under budget");
        }
    }

    for p in [&v1, &v2, &v3] {
        std::fs::remove_file(p).ok();
    }
}

/// Hammers one engine over a paged index from many threads under a
/// one-byte resident cap — every fetch evicts someone else's block.
/// The run must not deadlock, every answer stays bit-identical, and
/// the pager counters reconcile: every access is a hit or a miss, and
/// the resident set respects the cap's block floor.
#[test]
fn concurrent_engine_on_tiny_budget_stays_exact_and_consistent() {
    use bear_core::engine::{EngineConfig, QueryEngine};
    use bear_core::QueryOptions;
    use std::sync::Arc;

    let g = small_suite()[0].load();
    let bear = Bear::new(&g, &BearConfig::default()).unwrap();
    let path = std::env::temp_dir().join("bear_oom_hammer.idx");
    bear.save_v3(&path).unwrap();

    let paged = Arc::new(Bear::load(&path).unwrap());
    let pager = paged.pager().expect("v3 load is paged").clone();
    let n = paged.num_nodes();
    let reference: Vec<Vec<f64>> = (0..n).map(|s| bear.query(s).unwrap()).collect();

    let config = EngineConfig::builder()
        .threads(4)
        .cache_capacity(0) // every query recomputes => maximal pager churn
        .spoke_residency_bytes(Some(1))
        .build()
        .unwrap();
    let engine = Arc::new(QueryEngine::new(Arc::clone(&paged), config).unwrap());

    let callers: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let reference = Arc::new(reference.clone());
            std::thread::spawn(move || {
                for i in 0..50 {
                    let seed = (i * 13 + t * 7) % reference.len();
                    let served = engine.serve(seed, &QueryOptions::default()).unwrap();
                    assert!(served.is_exact());
                    for (a, b) in served.scores.iter().zip(&reference[seed]) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "concurrent paged answer drifted (seed {seed})"
                        );
                    }
                }
            })
        })
        .collect();
    for c in callers {
        c.join().expect("hammer thread must not panic or deadlock");
    }

    let stats = pager.stats();
    assert!(stats.misses > 0, "a one-byte cap must fault blocks in");
    assert!(stats.evictions > 0, "a one-byte cap must evict");
    // Eviction conservation: what was faulted in and is no longer
    // resident must have been evicted.
    assert_eq!(
        stats.misses - stats.resident_blocks,
        stats.evictions,
        "pager counters must reconcile: misses - resident = evictions"
    );
    // A 1-byte cap still keeps at most one block pinned (over-budget
    // fetches are allowed through, then evicted down to the cap).
    assert!(stats.resident_blocks <= 1, "cap of 1 byte holds at most one block");

    drop(engine);
    std::fs::remove_file(&path).ok();
}
