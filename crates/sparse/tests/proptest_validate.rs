//! Property-based tests of the structural validators.
//!
//! Two directions, per the invariant-audit contract (DESIGN.md §10):
//!
//! * **soundness** — randomly generated *valid* CSR/CSC/permutation
//!   instances pass `validate()` and are accepted by `try_from_parts`;
//! * **sensitivity** — every mutation class in
//!   [`bear_sparse::validate::Mutation`] / [`PermMutation`], applied to
//!   a valid instance through the test-only `apply_mutation` helpers
//!   (which bypass even `strict-invariants`), makes `validate()` fail.

use bear_sparse::validate::{Mutation, PermMutation};
use bear_sparse::{CooMatrix, CscMatrix, CsrMatrix, Invariant, Permutation};
use proptest::prelude::*;

const MATRIX_MUTATIONS: [Mutation; 5] = [
    Mutation::SwapAdjacentIndices,
    Mutation::DuplicateIndex,
    Mutation::OutOfBoundsIndex,
    Mutation::BreakIndptr,
    Mutation::InjectNan,
];

const PERM_MUTATIONS: [PermMutation; 3] = [
    PermMutation::DuplicateEntry,
    PermMutation::OutOfBoundsEntry,
    PermMutation::InconsistentInverse,
];

/// Strategy: a random valid CSR matrix (duplicate triplets collapse in
/// the COO → CSR conversion, so the result is always canonical).
fn arb_csr(max_dim: usize) -> impl Strategy<Value = CsrMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r, 0..c, -10.0f64..10.0), 0..(r * c).min(60)).prop_map(
            move |triplets| {
                let mut coo = CooMatrix::new(r, c);
                for (i, j, v) in triplets {
                    coo.push(i, j, v);
                }
                coo.to_csr()
            },
        )
    })
}

/// Strategy: a random valid permutation of `1..=max_len` elements,
/// built with a seeded Fisher–Yates shuffle.
fn arb_permutation(max_len: usize) -> impl Strategy<Value = Permutation> {
    (1..=max_len, 0u64..u64::MAX).prop_map(|(n, seed)| {
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        Permutation::from_new_to_old(order).unwrap()
    })
}

proptest! {
    #[test]
    fn generated_csr_passes_validation(m in arb_csr(8)) {
        prop_assert!(m.validate().is_ok());
        // Round-tripping the raw parts through the audited constructor
        // accepts the same data.
        let rebuilt = CsrMatrix::try_from_parts(
            m.nrows(),
            m.ncols(),
            m.indptr().to_vec(),
            m.indices().to_vec(),
            m.values().to_vec(),
        );
        prop_assert!(rebuilt.is_ok());
    }

    #[test]
    fn generated_csc_passes_validation(m in arb_csr(8)) {
        let csc = m.to_csc();
        prop_assert!(csc.validate().is_ok());
        let rebuilt = CscMatrix::try_from_parts(
            csc.nrows(),
            csc.ncols(),
            csc.indptr().to_vec(),
            csc.indices().to_vec(),
            csc.values().to_vec(),
        );
        prop_assert!(rebuilt.is_ok());
    }

    #[test]
    fn generated_permutation_passes_validation(p in arb_permutation(24)) {
        prop_assert!(p.validate().is_ok());
        prop_assert!(Permutation::try_from_parts(p.as_new_to_old().to_vec()).is_ok());
    }

    #[test]
    fn every_applied_csr_mutation_is_rejected(m in arb_csr(8)) {
        for mutation in MATRIX_MUTATIONS {
            let mut corrupted = m.clone();
            // `apply_mutation` reports whether the instance had room for
            // this corruption (e.g. swapping needs a 2-entry segment).
            if corrupted.apply_mutation(mutation) {
                prop_assert!(
                    corrupted.validate().is_err(),
                    "CSR mutation {mutation:?} survived validation"
                );
            }
        }
    }

    #[test]
    fn every_applied_csc_mutation_is_rejected(m in arb_csr(8)) {
        for mutation in MATRIX_MUTATIONS {
            let mut corrupted = m.to_csc();
            if corrupted.apply_mutation(mutation) {
                prop_assert!(
                    corrupted.validate().is_err(),
                    "CSC mutation {mutation:?} survived validation"
                );
            }
        }
    }

    #[test]
    fn every_applied_perm_mutation_is_rejected(p in arb_permutation(24)) {
        for mutation in PERM_MUTATIONS {
            let mut corrupted = p.clone();
            if corrupted.apply_mutation(mutation) {
                prop_assert!(
                    corrupted.validate().is_err(),
                    "permutation mutation {mutation:?} survived validation"
                );
            }
        }
    }
}

/// The mutation helpers must be *effective* often enough to mean
/// something: on a dense-ish fixture every matrix mutation applies, and
/// every permutation mutation applies for `n >= 2`.
#[test]
fn mutations_apply_on_a_dense_fixture() {
    let mut coo = CooMatrix::new(3, 3);
    for i in 0..3 {
        for j in 0..3 {
            coo.push(i, j, 1.0 + (i * 3 + j) as f64);
        }
    }
    let csr = coo.to_csr();
    for mutation in MATRIX_MUTATIONS {
        let mut m = csr.clone();
        assert!(m.apply_mutation(mutation), "{mutation:?} must apply to a dense 3x3");
        assert!(m.validate().is_err());
    }
    let perm = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
    for mutation in PERM_MUTATIONS {
        let mut p = perm.clone();
        assert!(p.apply_mutation(mutation), "{mutation:?} must apply to a 3-permutation");
        assert!(p.validate().is_err());
    }
}
