//! The sync shim itself — carved out of the L4 scope by `exclude`, so
//! these re-exports are true negatives. Never compiled — parsed by the
//! lint tests only.

pub use std::sync::{Condvar, Mutex, MutexGuard, RwLock};
