//! Error type shared by all sparse linear algebra operations.

use std::fmt;

/// Errors produced by matrix construction and numerical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Short description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand.
        lhs: (usize, usize),
        /// Dimensions of the right operand.
        rhs: (usize, usize),
    },
    /// An index (row, column, or permutation entry) is out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// Structured storage arrays are inconsistent (e.g. indptr not
    /// monotone, wrong lengths).
    InvalidStructure(String),
    /// A factorization hit a zero (or numerically negligible) pivot.
    SingularMatrix {
        /// Pivot position at which the factorization broke down.
        at: usize,
    },
    /// The operation was aborted because it exceeded a caller-supplied
    /// memory budget (used to reproduce the paper's out-of-memory bars).
    OutOfBudget {
        /// Bytes the operation needed (lower bound at abort time).
        needed: usize,
        /// Bytes the budget allowed.
        budget: usize,
    },
    /// An iterative routine failed to converge within its iteration cap.
    DidNotConverge {
        /// Name of the routine.
        what: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// A stored value is NaN or infinite where a finite value is required
    /// (reported by [`crate::validate::Invariant::validate`]).
    NonFiniteValue {
        /// Flat position of the offending entry in the owning value array.
        at: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound})")
            }
            Error::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            Error::SingularMatrix { at } => write!(f, "singular matrix: zero pivot at {at}"),
            Error::OutOfBudget { needed, budget } => {
                write!(f, "memory budget exceeded: needed >= {needed} bytes, budget {budget} bytes")
            }
            Error::DidNotConverge { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            Error::NonFiniteValue { at } => {
                write!(f, "non-finite value (NaN or infinity) at position {at}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
