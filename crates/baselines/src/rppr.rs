//! Restricted personalized PageRank (Gleich & Polito, Internet
//! Mathematics 2006): the iterative update run only on an adaptively
//! grown subgraph around the seed.
//!
//! The subgraph starts as the seed alone; a node's out-edges join the
//! subgraph once its current score exceeds the expansion threshold `ε_b`.
//! Nodes never reached keep score 0. Fast but inexact — the probability
//! mass that would flow through unexpanded nodes is simply truncated.

use bear_core::rwr::{normalized_adjacency, validate_distribution, RwrConfig};
use bear_core::{metrics::l1_diff, RwrSolver};
use bear_graph::Graph;
use bear_sparse::{CsrMatrix, Error, Result};

/// Configuration for RPPR.
#[derive(Debug, Clone, Copy)]
pub struct RpprConfig {
    /// Restart probability and normalization.
    pub rwr: RwrConfig,
    /// Expansion threshold `ε_b`: a subgraph node is expanded when its
    /// score exceeds this (the knob swept in Figure 8).
    pub expand_threshold: f64,
    /// Convergence threshold on the L1 change of scores.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for RpprConfig {
    fn default() -> Self {
        RpprConfig {
            rwr: RwrConfig::default(),
            expand_threshold: 1e-4,
            epsilon: 1e-8,
            max_iterations: 10_000,
        }
    }
}

/// The RPPR solver (no preprocessing).
#[derive(Debug, Clone)]
pub struct Rppr {
    /// Row-normalized adjacency (rows = out-edges), used for the forward
    /// push restricted to expanded nodes.
    a: CsrMatrix,
    config: RpprConfig,
}

impl Rppr {
    /// Prepares RPPR for `g`.
    pub fn new(g: &Graph, config: &RpprConfig) -> Result<Self> {
        config.rwr.validate()?;
        Ok(Rppr { a: normalized_adjacency(g, &config.rwr), config: *config })
    }

    fn run(&self, q: &[f64]) -> Result<Vec<f64>> {
        let n = self.a.nrows();
        let c = self.config.rwr.c;
        let mut in_subgraph = vec![false; n];
        let mut expanded = vec![false; n];
        for (u, &v) in q.iter().enumerate() {
            if v > 0.0 {
                in_subgraph[u] = true;
            }
        }
        let mut r: Vec<f64> = q.iter().map(|&v| c * v).collect();
        let mut next = vec![0.0f64; n];

        for _ in 0..self.config.max_iterations {
            // Expansion pass: any subgraph node above the threshold gets
            // its out-edges (and out-neighbors) added.
            let mut grew = false;
            for u in 0..n {
                if in_subgraph[u] && !expanded[u] && r[u] > self.config.expand_threshold {
                    expanded[u] = true;
                    grew = true;
                    let (nbrs, _) = self.a.row(u);
                    for &v in nbrs {
                        in_subgraph[v] = true;
                    }
                }
            }

            // Restricted update: scores flow only out of expanded nodes.
            for (nv, &qv) in next.iter_mut().zip(q) {
                *nv = c * qv;
            }
            for u in 0..n {
                if expanded[u] && r[u] != 0.0 {
                    let (nbrs, vals) = self.a.row(u);
                    let push = (1.0 - c) * r[u];
                    for (&v, &w) in nbrs.iter().zip(vals) {
                        next[v] += push * w;
                    }
                }
            }
            let delta = l1_diff(&next, &r);
            std::mem::swap(&mut r, &mut next);
            if delta < self.config.epsilon && !grew {
                return Ok(r);
            }
        }
        Err(Error::DidNotConverge { what: "RPPR", iterations: self.config.max_iterations })
    }
}

impl RwrSolver for Rppr {
    fn name(&self) -> &'static str {
        "RPPR"
    }

    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        if q.len() != self.a.nrows() {
            return Err(Error::DimensionMismatch {
                op: "rppr query",
                lhs: (self.a.nrows(), 1),
                rhs: (q.len(), 1),
            });
        }
        validate_distribution(q)?;
        self.run(q)
    }

    fn num_nodes(&self) -> usize {
        self.a.nrows()
    }

    fn memory_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_baselines_test_util::*;

    // Local helper module so RPPR and BRPPR tests share graph builders.
    mod bear_baselines_test_util {
        use bear_graph::Graph;
        pub fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
            let mut all = Vec::with_capacity(edges.len() * 2);
            for &(u, v) in edges {
                all.push((u, v));
                all.push((v, u));
            }
            Graph::from_edges(n, &all).unwrap()
        }
    }

    #[test]
    fn tiny_threshold_recovers_exact_scores() {
        let g = undirected(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let config = RpprConfig { expand_threshold: 1e-12, ..RpprConfig::default() };
        let rppr = Rppr::new(&g, &config).unwrap();
        let exact =
            crate::iterative::Iterative::new(&g, &crate::iterative::IterativeConfig::default())
                .unwrap();
        let ra = rppr.query(0).unwrap();
        let re = exact.query(0).unwrap();
        for (a, b) in ra.iter().zip(&re) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn large_threshold_truncates_far_nodes() {
        // Long path: with a huge expansion threshold, remote nodes stay 0.
        let edges: Vec<(usize, usize)> = (0..19).map(|i| (i, i + 1)).collect();
        let g = undirected(20, &edges);
        let config = RpprConfig { expand_threshold: 0.5, ..RpprConfig::default() };
        let rppr = Rppr::new(&g, &config).unwrap();
        let r = rppr.query(0).unwrap();
        assert_eq!(r[19], 0.0);
        assert!(r[0] > 0.0);
    }

    #[test]
    fn scores_never_negative_and_sum_at_most_one() {
        let g = undirected(8, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6), (6, 7)]);
        let rppr = Rppr::new(&g, &RpprConfig::default()).unwrap();
        let r = rppr.query(0).unwrap();
        assert!(r.iter().all(|&v| v >= 0.0));
        let sum: f64 = r.iter().sum();
        assert!(sum <= 1.0 + 1e-9, "sum {sum}");
    }

    #[test]
    fn no_preprocessed_memory() {
        let g = undirected(3, &[(0, 1), (1, 2)]);
        let rppr = Rppr::new(&g, &RpprConfig::default()).unwrap();
        assert_eq!(rppr.memory_bytes(), 0);
    }
}
