//! Matrix Market (`.mtx`) I/O for sparse matrices.
//!
//! The de-facto interchange format for sparse matrices; supported here so
//! precomputed blocks and test systems can be inspected with standard
//! tooling (SciPy, Julia, MATLAB). Coordinate format only, `real` field,
//! `general` or `symmetric` symmetry.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::{Error, Result};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parses a Matrix Market coordinate-format string.
pub fn parse_matrix_market(text: &str) -> Result<CsrMatrix> {
    let mut lines = text.lines();
    let header =
        lines.next().ok_or_else(|| Error::InvalidStructure("empty MatrixMarket input".into()))?;
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(Error::InvalidStructure("missing %%MatrixMarket header".into()));
    }
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(Error::InvalidStructure(format!("unsupported MatrixMarket header: {header}")));
    }
    if tokens[3] != "real" && tokens[3] != "integer" {
        return Err(Error::InvalidStructure(format!(
            "unsupported MatrixMarket field type: {}",
            tokens[3]
        )));
    }
    let symmetric = match tokens[4] {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(Error::InvalidStructure(format!(
                "unsupported MatrixMarket symmetry: {other}"
            )))
        }
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| Error::InvalidStructure("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse().map_err(|_| Error::InvalidStructure(format!("bad size line: {size_line}")))
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(Error::InvalidStructure(format!("bad size line: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut read = 0usize;
    for line in lines {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let r: usize = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| Error::InvalidStructure(format!("bad entry: {t}")))?;
        let c: usize = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| Error::InvalidStructure(format!("bad entry: {t}")))?;
        let v: f64 = match parts.next() {
            Some(x) => {
                x.parse().map_err(|_| Error::InvalidStructure(format!("bad value in: {t}")))?
            }
            None => 1.0, // pattern-ish files
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(Error::IndexOutOfBounds { index: r.max(c), bound: nrows.max(ncols) });
        }
        coo.push(r - 1, c - 1, v);
        if symmetric && r != c {
            coo.push(c - 1, r - 1, v);
        }
        read += 1;
    }
    if read != nnz {
        return Err(Error::InvalidStructure(format!("expected {nnz} entries, found {read}")));
    }
    Ok(coo.to_csr())
}

/// Reads a `.mtx` file.
pub fn read_matrix_market(path: &Path) -> Result<CsrMatrix> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::InvalidStructure(format!("cannot read {}: {e}", path.display())))?;
    parse_matrix_market(&text)
}

/// Writes a matrix in Matrix Market coordinate/general format.
pub fn write_matrix_market(m: &CsrMatrix, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path)
        .map_err(|e| Error::InvalidStructure(format!("cannot create {}: {e}", path.display())))?;
    let mut w = BufWriter::new(file);
    let io_err = |e: std::io::Error| Error::InvalidStructure(format!("write error: {e}"));
    writeln!(w, "%%MatrixMarket matrix coordinate real general").map_err(io_err)?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz()).map_err(io_err)?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v).map_err(io_err)?;
    }
    Ok(())
}

/// Reads from any `BufRead` (exposed for streaming use).
pub fn read_matrix_market_from<R: BufRead>(mut reader: R) -> Result<CsrMatrix> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::InvalidStructure(format!("read error: {e}")))?;
    parse_matrix_market(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 0, 1.5);
        coo.push(1, 2, -2.0);
        coo.push(2, 3, 0.25);
        coo.to_csr()
    }

    #[test]
    fn parse_general_matrix() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 2\n\
                    1 1 2.0\n\
                    3 2 -1.0\n";
        let m = parse_matrix_market(text).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn parse_symmetric_expands_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 3.0\n\
                    2 1 1.0\n";
        let m = parse_matrix_market(text).unwrap();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn file_round_trip() {
        let m = sample();
        let path = std::env::temp_dir().join("bear_mm_round_trip.mtx");
        write_matrix_market(&m, &path).unwrap();
        let back = read_matrix_market(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_matrix_market("").is_err());
        assert!(parse_matrix_market("not a header\n1 1 0\n").is_err());
        assert!(parse_matrix_market("%%MatrixMarket matrix array real general\n2 2\n").is_err());
        // Entry count mismatch.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(parse_matrix_market(text).is_err());
        // Out-of-range index.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(parse_matrix_market(text).is_err());
        // Zero-based index (MM is 1-based).
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(parse_matrix_market(text).is_err());
    }

    #[test]
    fn complex_and_hermitian_rejected() {
        let text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n";
        assert!(parse_matrix_market(text).is_err());
        let text = "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1.0\n";
        assert!(parse_matrix_market(text).is_err());
    }
}
