//! Coordinate-format (triplet) sparse matrix, used as a construction
//! staging area before conversion to CSR/CSC.

use crate::csr::CsrMatrix;
use crate::error::{Error, Result};
use crate::validate::{check_finite, Invariant};

/// A sparse matrix in coordinate (COO / triplet) format.
///
/// Duplicate entries are allowed and are summed during conversion to a
/// compressed format, matching the usual finite-element / graph-assembly
/// convention.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, rows: Vec::new(), cols: Vec::new(), values: Vec::new() }
    }

    /// Creates an empty matrix with capacity reserved for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Builds a COO matrix from parallel triplet arrays.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<usize>,
        cols: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if rows.len() != cols.len() || rows.len() != values.len() {
            return Err(Error::InvalidStructure(format!(
                "triplet arrays have mismatched lengths: {} rows, {} cols, {} values",
                rows.len(),
                cols.len(),
                values.len()
            )));
        }
        if let Some(&r) = rows.iter().find(|&&r| r >= nrows) {
            return Err(Error::IndexOutOfBounds { index: r, bound: nrows });
        }
        if let Some(&c) = cols.iter().find(|&&c| c >= ncols) {
            return Err(Error::IndexOutOfBounds { index: c, bound: ncols });
        }
        Ok(CooMatrix { nrows, ncols, rows, cols, values })
    }

    /// Builds a COO matrix after running the full [`Invariant`] audit:
    /// everything [`CooMatrix::from_triplets`] checks, plus finiteness of
    /// every stored value.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        rows: Vec<usize>,
        cols: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        let m = Self::from_triplets(nrows, ncols, rows, cols, values)?;
        check_finite(&m.values)?;
        Ok(m)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Appends one entry. Panics in debug builds on out-of-range indices.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.nrows, "row {row} >= {}", self.nrows);
        debug_assert!(col < self.ncols, "col {col} >= {}", self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
    }

    /// Iterates over stored triplets as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.values.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicate entries and dropping entries that
    /// cancel to exactly zero.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then per-row sort by column with duplicate
        // accumulation. O(nnz + n + per-row sort).
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let mut col_buf = vec![0usize; self.nnz()];
        let mut val_buf = vec![0f64; self.nnz()];
        let mut next = counts.clone();
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.values) {
            let slot = next[r];
            col_buf[slot] = c;
            val_buf[slot] = v;
            next[r] += 1;
        }

        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            scratch.clear();
            scratch.extend(col_buf[lo..hi].iter().copied().zip(val_buf[lo..hi].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    sum += scratch[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    indices.push(c);
                    values.push(sum);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_unchecked(self.nrows, self.ncols, indptr, indices, values)
    }
}

impl Invariant for CooMatrix {
    fn validate(&self) -> Result<()> {
        if self.rows.len() != self.cols.len() || self.rows.len() != self.values.len() {
            return Err(Error::InvalidStructure(format!(
                "triplet arrays have mismatched lengths: {} rows, {} cols, {} values",
                self.rows.len(),
                self.cols.len(),
                self.values.len()
            )));
        }
        if let Some(&r) = self.rows.iter().find(|&&r| r >= self.nrows) {
            return Err(Error::IndexOutOfBounds { index: r, bound: self.nrows });
        }
        if let Some(&c) = self.cols.iter().find(|&&c| c >= self.ncols) {
            return Err(Error::IndexOutOfBounds { index: c, bound: self.ncols });
        }
        check_finite(&self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_no_entries() {
        let m = CooMatrix::new(3, 4);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 0);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.nrows(), 3);
    }

    #[test]
    fn duplicates_are_summed_in_csr() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 1.0);
        m.push(0, 1, 2.5);
        m.push(1, 0, -1.0);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 3.5);
        assert_eq!(csr.get(1, 0), -1.0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut m = CooMatrix::new(1, 1);
        m.push(0, 0, 2.0);
        m.push(0, 0, -2.0);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn from_triplets_validates_bounds() {
        let err = CooMatrix::from_triplets(2, 2, vec![5], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, Error::IndexOutOfBounds { index: 5, bound: 2 }));
        let err = CooMatrix::from_triplets(2, 2, vec![0], vec![3], vec![1.0]).unwrap_err();
        assert!(matches!(err, Error::IndexOutOfBounds { index: 3, bound: 2 }));
        let err = CooMatrix::from_triplets(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, Error::InvalidStructure(_)));
    }

    #[test]
    fn rows_sorted_and_columns_sorted_within_rows() {
        let mut m = CooMatrix::new(3, 3);
        m.push(2, 1, 1.0);
        m.push(0, 2, 2.0);
        m.push(0, 0, 3.0);
        m.push(1, 1, 4.0);
        let csr = m.to_csr();
        assert_eq!(csr.row(0).0, &[0, 2]);
        assert_eq!(csr.row(1).0, &[1]);
        assert_eq!(csr.row(2).0, &[1]);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 1, 9.0);
        m.push(0, 0, 8.0);
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets, vec![(1, 1, 9.0), (0, 0, 8.0)]);
    }
}
