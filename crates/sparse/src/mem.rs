//! Memory accounting, mirroring the paper's space measurements.
//!
//! The paper measures "space for preprocessed data" as the storage of the
//! precomputed matrices in compressed sparse column format, i.e.
//! proportional to their nonzero counts. [`MemoryUsage::memory_bytes`]
//! reports exactly that, and [`MemBudget`] lets the experiment harness
//! reproduce the paper's out-of-memory failures deterministically.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{Error, Result};

/// Size of one stored index in bytes.
pub const INDEX_BYTES: usize = std::mem::size_of::<usize>();
/// Size of one stored value in bytes.
pub const VALUE_BYTES: usize = std::mem::size_of::<f64>();

/// Types that can report the bytes they occupy in their storage format.
pub trait MemoryUsage {
    /// Bytes of payload storage (index arrays + value arrays).
    fn memory_bytes(&self) -> usize;
}

impl MemoryUsage for CsrMatrix {
    fn memory_bytes(&self) -> usize {
        (self.nrows() + 1) * INDEX_BYTES + self.nnz() * (INDEX_BYTES + VALUE_BYTES)
    }
}

impl MemoryUsage for CscMatrix {
    fn memory_bytes(&self) -> usize {
        (self.ncols() + 1) * INDEX_BYTES + self.nnz() * (INDEX_BYTES + VALUE_BYTES)
    }
}

impl MemoryUsage for DenseMatrix {
    fn memory_bytes(&self) -> usize {
        self.nrows() * self.ncols() * VALUE_BYTES
    }
}

/// Bytes a hypothetical dense `n × m` matrix would occupy — used to refuse
/// a dense materialization *before* allocating it.
pub fn dense_bytes(nrows: usize, ncols: usize) -> usize {
    nrows.saturating_mul(ncols).saturating_mul(VALUE_BYTES)
}

/// Bytes a sparse matrix with the given shape and nonzero count occupies
/// in CSC/CSR.
pub fn sparse_bytes(major_dim: usize, nnz: usize) -> usize {
    (major_dim + 1) * INDEX_BYTES + nnz * (INDEX_BYTES + VALUE_BYTES)
}

/// A byte budget that preprocessing methods charge their allocations
/// against. Exceeding it aborts the method with
/// [`Error::OutOfBudget`], reproducing the paper's "bar omitted =
/// ran out of memory" semantics without actually exhausting the machine.
#[derive(Debug, Clone, Copy)]
pub struct MemBudget {
    limit: Option<usize>,
}

impl MemBudget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        MemBudget { limit: None }
    }

    /// A budget capped at `bytes`.
    pub fn bytes(bytes: usize) -> Self {
        MemBudget { limit: Some(bytes) }
    }

    /// The cap, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Checks that `needed` bytes fit.
    pub fn check(&self, needed: usize) -> Result<()> {
        match self.limit {
            Some(limit) if needed > limit => Err(Error::OutOfBudget { needed, budget: limit }),
            _ => Ok(()),
        }
    }
}

impl Default for MemBudget {
    fn default() -> Self {
        MemBudget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_bytes_track_nnz() {
        let m = CsrMatrix::identity(10);
        assert_eq!(m.memory_bytes(), 11 * INDEX_BYTES + 10 * (INDEX_BYTES + VALUE_BYTES));
    }

    #[test]
    fn dense_bytes_track_shape() {
        let m = DenseMatrix::zeros(3, 5);
        assert_eq!(m.memory_bytes(), 15 * VALUE_BYTES);
        assert_eq!(dense_bytes(3, 5), 15 * VALUE_BYTES);
    }

    #[test]
    fn dense_bytes_saturates_instead_of_overflowing() {
        assert_eq!(dense_bytes(usize::MAX, usize::MAX), usize::MAX);
    }

    #[test]
    fn budget_enforced() {
        let b = MemBudget::bytes(100);
        assert!(b.check(100).is_ok());
        assert!(matches!(b.check(101), Err(Error::OutOfBudget { needed: 101, budget: 100 })));
        assert!(MemBudget::unlimited().check(usize::MAX).is_ok());
    }
}
