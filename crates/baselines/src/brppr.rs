//! Boundary-restricted personalized PageRank (Gleich & Polito, Internet
//! Mathematics 2006): the RPPR variant that, each iteration, expands
//! boundary nodes in decreasing score order until the total score mass
//! remaining on the boundary drops below `ε_b`.

use bear_core::rwr::{normalized_adjacency, validate_distribution, RwrConfig};
use bear_core::{metrics::l1_diff, RwrSolver};
use bear_graph::Graph;
use bear_sparse::{CsrMatrix, Error, Result};

/// Configuration for BRPPR.
#[derive(Debug, Clone, Copy)]
pub struct BrpprConfig {
    /// Restart probability and normalization.
    pub rwr: RwrConfig,
    /// Boundary mass threshold `ε_b`: expansion stops once the boundary's
    /// total score is below this.
    pub boundary_threshold: f64,
    /// Convergence threshold on the L1 change of scores.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for BrpprConfig {
    fn default() -> Self {
        BrpprConfig {
            rwr: RwrConfig::default(),
            boundary_threshold: 1e-4,
            epsilon: 1e-8,
            max_iterations: 10_000,
        }
    }
}

/// The BRPPR solver (no preprocessing).
#[derive(Debug, Clone)]
pub struct Brppr {
    a: CsrMatrix,
    config: BrpprConfig,
}

impl Brppr {
    /// Prepares BRPPR for `g`.
    pub fn new(g: &Graph, config: &BrpprConfig) -> Result<Self> {
        config.rwr.validate()?;
        Ok(Brppr { a: normalized_adjacency(g, &config.rwr), config: *config })
    }

    fn run(&self, q: &[f64]) -> Result<Vec<f64>> {
        let n = self.a.nrows();
        let c = self.config.rwr.c;
        let mut in_subgraph = vec![false; n];
        let mut expanded = vec![false; n];
        for (u, &v) in q.iter().enumerate() {
            if v > 0.0 {
                in_subgraph[u] = true;
            }
        }
        let mut r: Vec<f64> = q.iter().map(|&v| c * v).collect();
        let mut next = vec![0.0f64; n];
        let mut boundary: Vec<usize> = Vec::new();

        for _ in 0..self.config.max_iterations {
            // Collect the boundary (in subgraph, not expanded) and its mass.
            boundary.clear();
            boundary.extend((0..n).filter(|&u| in_subgraph[u] && !expanded[u]));
            boundary.sort_unstable_by(|&a, &b| {
                r[b].partial_cmp(&r[a]).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut boundary_mass: f64 = boundary.iter().map(|&u| r[u]).sum();
            let mut grew = false;
            // Expand highest-score nodes until the remaining boundary mass
            // drops below the threshold.
            for &u in &boundary {
                if boundary_mass < self.config.boundary_threshold {
                    break;
                }
                expanded[u] = true;
                grew = true;
                boundary_mass -= r[u];
                let (nbrs, _) = self.a.row(u);
                for &v in nbrs {
                    in_subgraph[v] = true;
                }
            }

            // Restricted update (same as RPPR).
            for (nv, &qv) in next.iter_mut().zip(q) {
                *nv = c * qv;
            }
            for u in 0..n {
                if expanded[u] && r[u] != 0.0 {
                    let (nbrs, vals) = self.a.row(u);
                    let push = (1.0 - c) * r[u];
                    for (&v, &w) in nbrs.iter().zip(vals) {
                        next[v] += push * w;
                    }
                }
            }
            let delta = l1_diff(&next, &r);
            std::mem::swap(&mut r, &mut next);
            if delta < self.config.epsilon && !grew {
                return Ok(r);
            }
        }
        Err(Error::DidNotConverge { what: "BRPPR", iterations: self.config.max_iterations })
    }
}

impl RwrSolver for Brppr {
    fn name(&self) -> &'static str {
        "BRPPR"
    }

    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        if q.len() != self.a.nrows() {
            return Err(Error::DimensionMismatch {
                op: "brppr query",
                lhs: (self.a.nrows(), 1),
                rhs: (q.len(), 1),
            });
        }
        validate_distribution(q)?;
        self.run(q)
    }

    fn num_nodes(&self) -> usize {
        self.a.nrows()
    }

    fn memory_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    #[test]
    fn tiny_threshold_recovers_exact_scores() {
        let g = undirected(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let config = BrpprConfig { boundary_threshold: 1e-12, ..BrpprConfig::default() };
        let brppr = Brppr::new(&g, &config).unwrap();
        let exact =
            crate::iterative::Iterative::new(&g, &crate::iterative::IterativeConfig::default())
                .unwrap();
        let ra = brppr.query(0).unwrap();
        let re = exact.query(0).unwrap();
        for (a, b) in ra.iter().zip(&re) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn loose_threshold_is_less_accurate_than_tight() {
        let edges: Vec<(usize, usize)> = (0..29).map(|i| (i, i + 1)).collect();
        let g = undirected(30, &edges);
        let exact =
            crate::iterative::Iterative::new(&g, &crate::iterative::IterativeConfig::default())
                .unwrap();
        let re = exact.query(0).unwrap();
        let err = |threshold: f64| {
            let config = BrpprConfig { boundary_threshold: threshold, ..BrpprConfig::default() };
            let b = Brppr::new(&g, &config).unwrap();
            bear_core::metrics::l2_error(&b.query(0).unwrap(), &re)
        };
        assert!(err(0.5) >= err(1e-9) - 1e-12);
    }

    #[test]
    fn scores_bounded() {
        let g = undirected(8, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6), (6, 7)]);
        let brppr = Brppr::new(&g, &BrpprConfig::default()).unwrap();
        let r = brppr.query(0).unwrap();
        assert!(r.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn no_preprocessed_memory() {
        let g = undirected(3, &[(0, 1), (1, 2)]);
        let b = Brppr::new(&g, &BrpprConfig::default()).unwrap();
        assert_eq!(b.memory_bytes(), 0);
        assert_eq!(b.name(), "BRPPR");
    }
}
