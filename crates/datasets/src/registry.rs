//! The dataset registry: named, seeded generator recipes.

use bear_graph::generators::{
    forest_fire, hub_and_spoke, preferential_attachment, rmat, ForestFireConfig, HubSpokeConfig,
    RmatConfig,
};
use bear_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How a dataset is generated.
#[derive(Debug, Clone, Copy)]
enum Recipe {
    HubSpoke(HubSpokeConfig, u64),
    Rmat(RmatConfig, u64),
    PrefAttach { n: usize, m_per_node: usize, seed: u64 },
    ForestFire(ForestFireConfig, u64),
}

/// A named synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Registry name (stable; used by the bench harness CLI).
    pub name: &'static str,
    /// Which paper dataset this stands in for.
    pub mimics: &'static str,
    recipe: Recipe,
}

impl DatasetSpec {
    /// Generates the graph (deterministic for a given spec).
    pub fn load(&self) -> Graph {
        match self.recipe {
            Recipe::HubSpoke(config, seed) => {
                hub_and_spoke(&config, &mut StdRng::seed_from_u64(seed))
            }
            Recipe::Rmat(config, seed) => rmat(&config, &mut StdRng::seed_from_u64(seed)),
            Recipe::PrefAttach { n, m_per_node, seed } => {
                preferential_attachment(n, m_per_node, &mut StdRng::seed_from_u64(seed))
            }
            Recipe::ForestFire(config, seed) => {
                forest_fire(&config, &mut StdRng::seed_from_u64(seed))
            }
        }
    }
}

/// The nine real-world stand-ins, in the paper's Table 4 order.
pub fn all_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "routing_like",
            mimics: "Routing (AS-level internet)",
            recipe: Recipe::HubSpoke(
                HubSpokeConfig {
                    num_hubs: 45,
                    num_caves: 1_100,
                    max_cave_size: 5,
                    cave_density: 0.3,
                    hub_links: 1,
                    hub_density: 0.3,
                },
                101,
            ),
        },
        DatasetSpec {
            name: "coauthor_like",
            mimics: "Co-author (cond-mat)",
            recipe: Recipe::HubSpoke(
                HubSpokeConfig {
                    num_hubs: 600,
                    num_caves: 1_600,
                    max_cave_size: 8,
                    cave_density: 0.4,
                    hub_links: 2,
                    hub_density: 0.03,
                },
                102,
            ),
        },
        DatasetSpec {
            name: "trust_like",
            mimics: "Trust (Epinions)",
            recipe: Recipe::Rmat(
                RmatConfig { scale: 13, edges: 60_000, p_ul: 0.62, noise: 0.1 },
                103,
            ),
        },
        DatasetSpec {
            name: "email_like",
            mimics: "Email (EU institution)",
            recipe: Recipe::HubSpoke(
                HubSpokeConfig {
                    num_hubs: 40,
                    num_caves: 9_000,
                    max_cave_size: 3,
                    cave_density: 0.2,
                    hub_links: 1,
                    hub_density: 0.4,
                },
                104,
            ),
        },
        DatasetSpec {
            name: "web_stan_like",
            mimics: "Web-Stan (Stanford web)",
            recipe: Recipe::HubSpoke(
                HubSpokeConfig {
                    num_hubs: 90,
                    num_caves: 220,
                    max_cave_size: 60,
                    cave_density: 0.08,
                    hub_links: 1,
                    hub_density: 0.15,
                },
                105,
            ),
        },
        DatasetSpec {
            name: "web_notre_like",
            mimics: "Web-Notre (Notre Dame web)",
            recipe: Recipe::HubSpoke(
                HubSpokeConfig {
                    num_hubs: 70,
                    num_caves: 500,
                    max_cave_size: 25,
                    cave_density: 0.1,
                    hub_links: 1,
                    hub_density: 0.2,
                },
                106,
            ),
        },
        DatasetSpec {
            name: "web_bs_like",
            mimics: "Web-BS (Berkeley-Stanford web)",
            recipe: Recipe::HubSpoke(
                HubSpokeConfig {
                    num_hubs: 160,
                    num_caves: 220,
                    max_cave_size: 80,
                    cave_density: 0.06,
                    hub_links: 1,
                    hub_density: 0.1,
                },
                107,
            ),
        },
        DatasetSpec {
            name: "talk_like",
            mimics: "Talk (Wikipedia talk)",
            recipe: Recipe::HubSpoke(
                HubSpokeConfig {
                    num_hubs: 70,
                    num_caves: 16_000,
                    max_cave_size: 3,
                    cave_density: 0.15,
                    hub_links: 1,
                    hub_density: 0.25,
                },
                108,
            ),
        },
        DatasetSpec {
            name: "citation_like",
            mimics: "Citation (US patents)",
            recipe: Recipe::Rmat(
                RmatConfig { scale: 13, edges: 40_000, p_ul: 0.5, noise: 0.1 },
                109,
            ),
        },
    ]
}

/// The R-MAT `p_ul` family of Section 4.4 / Figure 7 (scaled down from
/// the paper's 100k nodes / 500k edges).
pub fn rmat_family() -> Vec<DatasetSpec> {
    const NAMES: [(&str, f64); 5] = [
        ("rmat_0.5", 0.5),
        ("rmat_0.6", 0.6),
        ("rmat_0.7", 0.7),
        ("rmat_0.8", 0.8),
        ("rmat_0.9", 0.9),
    ];
    NAMES
        .iter()
        .map(|&(name, p_ul)| DatasetSpec {
            name,
            mimics: "R-MAT synthetic (Section 4.4)",
            recipe: Recipe::Rmat(RmatConfig { scale: 13, edges: 45_000, p_ul, noise: 0.0 }, 200),
        })
        .collect()
}

/// A small fast subset used by integration tests: one spoke-heavy, one
/// web-like, one hub-heavy dataset at reduced size.
pub fn small_suite() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "small_routing",
            mimics: "Routing (reduced)",
            recipe: Recipe::HubSpoke(
                HubSpokeConfig {
                    num_hubs: 8,
                    num_caves: 60,
                    max_cave_size: 5,
                    cave_density: 0.3,
                    hub_links: 1,
                    hub_density: 0.4,
                },
                301,
            ),
        },
        DatasetSpec {
            name: "small_web",
            mimics: "Web-Stan (reduced)",
            recipe: Recipe::HubSpoke(
                HubSpokeConfig {
                    num_hubs: 10,
                    num_caves: 12,
                    max_cave_size: 25,
                    cave_density: 0.12,
                    hub_links: 1,
                    hub_density: 0.3,
                },
                302,
            ),
        },
        DatasetSpec {
            name: "small_citation",
            mimics: "Citation (reduced)",
            recipe: Recipe::Rmat(RmatConfig { scale: 9, edges: 2_200, p_ul: 0.5, noise: 0.1 }, 303),
        },
        DatasetSpec {
            name: "small_powerlaw",
            mimics: "generic power-law graph",
            recipe: Recipe::PrefAttach { n: 400, m_per_node: 3, seed: 304 },
        },
        DatasetSpec {
            name: "small_forestfire",
            mimics: "densifying social graph (Forest Fire model)",
            recipe: Recipe::ForestFire(
                ForestFireConfig { n: 500, forward_p: 0.3, backward_p: 0.15, max_burn: 40 },
                305,
            ),
        },
    ]
}

/// Looks a dataset up by name across all registries.
pub fn dataset_by_name(name: &str) -> Option<DatasetSpec> {
    all_datasets().into_iter().chain(rmat_family()).chain(small_suite()).find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_graph::{slashburn, SlashBurnConfig};

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = all_datasets()
            .iter()
            .chain(rmat_family().iter())
            .chain(small_suite().iter())
            .map(|d| d.name)
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn loading_is_deterministic() {
        let spec = dataset_by_name("small_routing").unwrap();
        assert_eq!(spec.load(), spec.load());
    }

    #[test]
    fn lookup_finds_all_and_rejects_unknown() {
        assert!(dataset_by_name("routing_like").is_some());
        assert!(dataset_by_name("rmat_0.7").is_some());
        assert!(dataset_by_name("nope").is_none());
    }

    #[test]
    fn small_suite_is_actually_small() {
        for spec in small_suite() {
            let g = spec.load();
            assert!(g.num_nodes() < 1_000, "{} has {} nodes", spec.name, g.num_nodes());
            assert!(g.num_edges() > 0);
        }
    }

    #[test]
    fn email_like_is_spoke_heavy_and_citation_like_is_hub_heavy() {
        // The structural contrast the stand-ins must preserve (Table 4):
        // Email has a tiny hub fraction, Citation a very large one.
        let email = dataset_by_name("email_like").unwrap().load();
        let ord = slashburn(&email, &SlashBurnConfig::paper_default(email.num_nodes())).unwrap();
        let email_frac = ord.n_hubs as f64 / email.num_nodes() as f64;
        assert!(email_frac < 0.05, "email hub fraction {email_frac}");

        let cit = dataset_by_name("small_citation").unwrap().load();
        let ord = slashburn(&cit, &SlashBurnConfig::paper_default(cit.num_nodes())).unwrap();
        let cit_frac = ord.n_hubs as f64 / cit.num_nodes() as f64;
        assert!(cit_frac > email_frac, "citation {cit_frac} !> email {email_frac}");
    }

    #[test]
    fn web_like_has_larger_blocks_than_routing_like() {
        let routing = dataset_by_name("small_routing").unwrap().load();
        let web = dataset_by_name("small_web").unwrap().load();
        let r_ord =
            slashburn(&routing, &SlashBurnConfig::paper_default(routing.num_nodes())).unwrap();
        let w_ord = slashburn(&web, &SlashBurnConfig::paper_default(web.num_nodes())).unwrap();
        let r_max = r_ord.block_sizes.iter().copied().max().unwrap_or(0);
        let w_max = w_ord.block_sizes.iter().copied().max().unwrap_or(0);
        assert!(w_max > r_max, "web max block {w_max} !> routing {r_max}");
    }
}
