//! Balanced graph partitioning by BFS region growing.
//!
//! The B_LIN baseline (Tong et al., 2008) partitions the graph and
//! approximates only the cross-partition edges with a low-rank term. The
//! original uses METIS; this BFS region-growing partitioner produces the
//! same *kind* of partition (connected, balanced parts with most edges
//! inside parts on community-structured graphs), which is what the
//! baseline's behaviour depends on.

use crate::graph::Graph;

/// Assigns every node to one of `num_parts` partitions of near-equal size.
/// Returns the partition label per node.
///
/// Greedy BFS region growing: repeatedly seed an unassigned node (highest
/// degree first), grow a BFS region until the target size is hit, then
/// move to the next partition. Remainder nodes join the smallest parts.
pub fn partition_bfs(g: &Graph, num_parts: usize) -> Vec<usize> {
    let n = g.num_nodes();
    let p = num_parts.max(1).min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let target = n.div_ceil(p);
    let sym = g.symmetrized_pattern();
    let mut label = vec![usize::MAX; n];

    // Seed order: descending degree so dense cores anchor regions.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_unstable_by_key(|&u| std::cmp::Reverse(sym.row_nnz(u)));

    let mut part = 0usize;
    let mut size = 0usize;
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &seed in &seeds {
        if label[seed] != usize::MAX {
            continue;
        }
        queue.push_back(seed);
        label[seed] = part;
        size += 1;
        while let Some(u) = queue.pop_front() {
            if size >= target && part + 1 < p {
                // Close this partition; unvisited queued nodes keep their
                // labels (they were already counted).
                part += 1;
                size = 0;
                queue.clear();
                break;
            }
            let (nbrs, _) = sym.row(u);
            for &v in nbrs {
                if label[v] == usize::MAX {
                    label[v] = part;
                    size += 1;
                    queue.push_back(v);
                    if size >= target && part + 1 < p {
                        break;
                    }
                }
            }
        }
    }
    label
}

/// Splits an adjacency matrix into within-partition edges (`A₁`) and
/// cross-partition edges (`A₂`), given partition labels. `A₁ + A₂ = A`.
pub fn split_by_partition(
    adj: &bear_sparse::CsrMatrix,
    labels: &[usize],
) -> (bear_sparse::CsrMatrix, bear_sparse::CsrMatrix) {
    let n = adj.nrows();
    debug_assert_eq!(labels.len(), n);
    let mut within = bear_sparse::CooMatrix::with_capacity(n, n, adj.nnz());
    let mut cross = bear_sparse::CooMatrix::new(n, n);
    for (r, c, v) in adj.iter() {
        if labels[r] == labels[c] {
            within.push(r, c, v);
        } else {
            cross.push(r, c, v);
        }
    }
    (within.to_csr(), cross.to_csr())
}

/// Orders nodes by partition label (then by id), so within-partition edges
/// form diagonal blocks. Returns the `new -> old` permutation plus the
/// size of each partition block.
pub fn partition_ordering(labels: &[usize], num_parts: usize) -> (Vec<usize>, Vec<usize>) {
    let mut order: Vec<usize> = (0..labels.len()).collect();
    order.sort_unstable_by_key(|&u| (labels[u], u));
    let mut sizes = vec![0usize; num_parts];
    for &l in labels {
        if l < num_parts {
            sizes[l] += 1;
        }
    }
    (order, sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> Graph {
        // Clique {0,1,2}, clique {3,4,5}, one bridge 2-3.
        let edges = vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        Graph::from_edges(6, &edges).unwrap()
    }

    #[test]
    fn every_node_gets_a_label() {
        let g = two_cliques();
        let labels = partition_bfs(&g, 2);
        assert_eq!(labels.len(), 6);
        assert!(labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn partitions_roughly_balanced() {
        let g = two_cliques();
        let labels = partition_bfs(&g, 2);
        let c0 = labels.iter().filter(|&&l| l == 0).count();
        assert!((2..=4).contains(&c0), "partition 0 holds {c0} nodes");
    }

    #[test]
    fn single_partition_assigns_all_zero() {
        let g = two_cliques();
        let labels = partition_bfs(&g, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn more_parts_than_nodes_clamped() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let labels = partition_bfs(&g, 10);
        assert!(labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn split_preserves_all_edges() {
        let g = two_cliques();
        let labels = partition_bfs(&g, 2);
        let (within, cross) = split_by_partition(g.adjacency(), &labels);
        assert_eq!(within.nnz() + cross.nnz(), g.num_edges());
        let sum = bear_sparse::ops::add(&within, &cross).unwrap();
        assert_eq!(sum, *g.adjacency());
    }

    #[test]
    fn cliques_stay_together_mostly() {
        // On this easy instance, the bridge should be the only candidate
        // cross edge (or at worst a couple more).
        let g = two_cliques();
        let labels = partition_bfs(&g, 2);
        let (_, cross) = split_by_partition(g.adjacency(), &labels);
        assert!(cross.nnz() <= 3, "too many cross edges: {}", cross.nnz());
    }

    #[test]
    fn partition_ordering_groups_labels() {
        let labels = vec![1, 0, 1, 0];
        let (order, sizes) = partition_ordering(&labels, 2);
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert_eq!(sizes, vec![2, 2]);
    }
}
