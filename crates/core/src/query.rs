//! BEAR query phase (Algorithm 2): block elimination.
//!
//! Given the precomputed matrices, a query is two sparse sweeps
//! (Equation 6):
//!
//! ```text
//! r₂ = c · U₂⁻¹ ( L₂⁻¹ ( q₂ − H₂₁ ( U₁⁻¹ ( L₁⁻¹ q₁ ) ) ) )
//! r₁ = U₁⁻¹ ( L₁⁻¹ ( c·q₁ − H₁₂ r₂ ) )
//! ```
//!
//! with every product a sparse matrix–vector multiplication, giving the
//! paper's query complexity `O(Σ n₁ᵢ² + n₂² + min(n₁n₂, m))` (Theorem 3).

use crate::engine::{BlockWorkspace, QueryWorkspace};
use crate::paging::Factor;
use crate::precompute::Bear;
use crate::rwr::validate_distribution;
use crate::solver::RwrSolver;
use bear_sparse::mem::MemoryUsage;
use bear_sparse::{DenseBlock, Error, Result};

impl Bear {
    /// RWR scores of every node w.r.t. `seed` (Algorithm 2).
    pub fn query(&self, seed: usize) -> Result<Vec<f64>> {
        let mut ws = QueryWorkspace::for_bear(self);
        let mut out = vec![0.0; self.num_nodes()];
        self.query_into(seed, &mut ws, &mut out)?;
        Ok(out)
    }

    /// [`Bear::query`] into caller-owned buffers: the allocation-free form
    /// used by the serving engine. `ws` must have been built for this
    /// index ([`QueryWorkspace::for_bear`]); `out` must have length `n`.
    pub fn query_into(&self, seed: usize, ws: &mut QueryWorkspace, out: &mut [f64]) -> Result<()> {
        let n = self.num_nodes();
        if seed >= n {
            return Err(Error::IndexOutOfBounds { index: seed, bound: n });
        }
        // Borrow the one-hot buffer out of the workspace so the workspace
        // itself can be passed down (`mem::take` swaps in an empty Vec —
        // no allocation).
        let mut q = std::mem::take(&mut ws.q);
        q[seed] = 1.0;
        let result = self.query_distribution_into(&q, ws, out);
        q[seed] = 0.0;
        ws.q = q;
        result
    }

    /// Personalized PageRank for an arbitrary preference distribution
    /// (Section 3.4): the same block elimination with a general `q`.
    pub fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        let mut ws = QueryWorkspace::for_bear(self);
        let mut out = vec![0.0; self.num_nodes()];
        self.query_distribution_into(q, &mut ws, &mut out)?;
        Ok(out)
    }

    /// [`Bear::query_distribution`] into caller-owned buffers. This is the
    /// single implementation of Algorithm 2's two block-elimination
    /// sweeps; the allocating wrappers and the engine both call it, so
    /// every path produces bit-identical floating-point results.
    pub fn query_distribution_into(
        &self,
        q: &[f64],
        ws: &mut QueryWorkspace,
        out: &mut [f64],
    ) -> Result<()> {
        let n = self.num_nodes();
        if q.len() != n || out.len() != n {
            return Err(Error::DimensionMismatch {
                op: "bear query",
                lhs: (n, 1),
                rhs: (q.len(), out.len()),
            });
        }
        validate_distribution(q)?;
        // Move q into the reordered index space and split.
        self.perm.permute_vec_into(q, &mut ws.q_perm)?;
        let (q1, q2) = ws.q_perm.split_at(self.n1);

        // r₂ = c U₂⁻¹ L₂⁻¹ (q₂ − H₂₁ U₁⁻¹ L₁⁻¹ q₁)
        self.spokes.matvec_into(Factor::L1, q1, &mut ws.t1)?;
        self.spokes.matvec_into(Factor::U1, &ws.t1, &mut ws.t2)?;
        self.h21.matvec_into(&ws.t2, &mut ws.t3)?;
        for (t, &qv) in ws.t3.iter_mut().zip(q2) {
            *t = qv - *t;
        }
        self.l2_inv.matvec_into(&ws.t3, &mut ws.t4)?;
        self.u2_inv.matvec_into(&ws.t4, &mut ws.t3)?;
        let (r1, r2) = ws.r.split_at_mut(self.n1);
        for (r, &v) in r2.iter_mut().zip(&ws.t3) {
            *r = self.c * v;
        }

        // r₁ = U₁⁻¹ L₁⁻¹ (c q₁ − H₁₂ r₂)
        self.h12.matvec_into(r2, &mut ws.t1)?;
        for (t, &qv) in ws.t1.iter_mut().zip(q1) {
            *t = self.c * qv - *t;
        }
        self.spokes.matvec_into(Factor::L1, &ws.t1, &mut ws.t2)?;
        self.spokes.matvec_into(Factor::U1, &ws.t2, r1)?;

        // Map back to the original node ids.
        self.perm.unpermute_vec_into(&ws.r, out)
    }

    /// Answers a block of seeds at once: column `j` of `out` receives the
    /// RWR scores for `seeds[j]`. Convenience wrapper over
    /// [`Bear::query_block_into`] that allocates its own workspace and
    /// returns one score vector per seed, in seed order.
    pub fn query_block(&self, seeds: &[usize]) -> Result<Vec<Vec<f64>>> {
        let mut ws = BlockWorkspace::for_bear(self);
        let mut out = DenseBlock::zeros(self.num_nodes(), seeds.len());
        self.query_block_into(seeds, &mut ws, &mut out)?;
        Ok(out.to_columns())
    }

    /// Blocked multi-RHS form of [`Bear::query_into`]: runs Algorithm 2's
    /// two block-elimination sweeps on all of `seeds` simultaneously,
    /// with every sparse matrix applied once per *block* instead of once
    /// per seed (the SpMM-over-SpMV amortization; see DESIGN.md §13).
    ///
    /// Column `j` of `out` is **bit-identical** to what
    /// `query_into(seeds[j], …)` writes — the blocked kernels replicate
    /// the scalar accumulation order per column — so blocking is purely a
    /// throughput optimization, never a numerics change. Duplicate seeds
    /// are allowed and produce duplicate columns.
    ///
    /// `out` must be `n × seeds.len()`; `ws` must have been built for
    /// this index ([`BlockWorkspace::for_bear`]) and is reshaped in place
    /// to the batch width (allocation-free when shrinking or at steady
    /// width).
    pub fn query_block_into(
        &self,
        seeds: &[usize],
        ws: &mut BlockWorkspace,
        out: &mut DenseBlock,
    ) -> Result<()> {
        let n = self.num_nodes();
        let k = seeds.len();
        if out.nrows() != n || out.ncols() != k {
            return Err(Error::DimensionMismatch {
                op: "bear query_block",
                lhs: (n, k),
                rhs: (out.nrows(), out.ncols()),
            });
        }
        if let Some(&bad) = seeds.iter().find(|&&s| s >= n) {
            return Err(Error::IndexOutOfBounds { index: bad, bound: n });
        }
        if k == 0 {
            return Ok(());
        }
        ws.ensure_width(self, k);
        // Build the permuted one-hot columns, split at the spoke/hub
        // boundary exactly as the per-seed path splits `q_perm`.
        for (j, &seed) in seeds.iter().enumerate() {
            ws.q[seed] = 1.0;
            let permuted = self.perm.permute_vec_into(&ws.q, &mut ws.q_perm);
            ws.q[seed] = 0.0;
            permuted?;
            ws.q1.col_mut(j).copy_from_slice(&ws.q_perm[..self.n1]);
            ws.q2.col_mut(j).copy_from_slice(&ws.q_perm[self.n1..]);
        }

        // r₂ = c U₂⁻¹ L₂⁻¹ (q₂ − H₂₁ U₁⁻¹ L₁⁻¹ q₁), one column per seed.
        self.spokes.spmm_into(Factor::L1, &ws.q1, &mut ws.t1)?;
        self.spokes.spmm_into(Factor::U1, &ws.t1, &mut ws.t2)?;
        self.h21.spmm_into(&ws.t2, &mut ws.t3)?;
        for (t, &qv) in ws.t3.data_mut().iter_mut().zip(ws.q2.data()) {
            *t = qv - *t;
        }
        self.l2_inv.spmm_into(&ws.t3, &mut ws.t4)?;
        self.u2_inv.spmm_into(&ws.t4, &mut ws.t3)?;
        for (r, &v) in ws.r2.data_mut().iter_mut().zip(ws.t3.data()) {
            *r = self.c * v;
        }

        // r₁ = U₁⁻¹ L₁⁻¹ (c q₁ − H₁₂ r₂); `t1` holds the finished r₁.
        self.h12.spmm_into(&ws.r2, &mut ws.t1)?;
        for (t, &qv) in ws.t1.data_mut().iter_mut().zip(ws.q1.data()) {
            *t = self.c * qv - *t;
        }
        self.spokes.spmm_into(Factor::L1, &ws.t1, &mut ws.t2)?;
        self.spokes.spmm_into(Factor::U1, &ws.t2, &mut ws.t1)?;

        // Map each column back to the original node ids.
        for j in 0..k {
            ws.r[..self.n1].copy_from_slice(ws.t1.col(j));
            ws.r[self.n1..].copy_from_slice(ws.r2.col(j));
            self.perm.unpermute_vec_into(&ws.r, out.col_mut(j))?;
        }
        Ok(())
    }
}

impl Bear {
    /// Answers many single-seed queries, fanning out over `threads` scoped
    /// workers (queries are independent and `Bear` is immutable after
    /// preprocessing). Results are in seed order and bit-identical to
    /// sequential [`Bear::query`] calls.
    ///
    /// All seeds are validated before any work starts, so an out-of-range
    /// seed fails fast with an error naming it; a panicking worker
    /// surfaces as an error instead of aborting the process. Long-lived
    /// callers should prefer [`crate::engine::QueryEngine`], which keeps
    /// its pool and per-worker buffers alive across calls instead of
    /// re-spawning threads here.
    pub fn query_batch(&self, seeds: &[usize], threads: usize) -> Result<Vec<Vec<f64>>> {
        let n = self.num_nodes();
        if let Some(&bad) = seeds.iter().find(|&&s| s >= n) {
            return Err(Error::IndexOutOfBounds { index: bad, bound: n });
        }
        // Nothing to answer: return without allocating workspaces or
        // touching any thread machinery.
        if seeds.is_empty() {
            return Ok(Vec::new());
        }
        let threads = threads.max(1).min(seeds.len().max(1));
        if threads <= 1 {
            let mut ws = QueryWorkspace::for_bear(self);
            return seeds
                .iter()
                .map(|&s| {
                    let mut out = vec![0.0; n];
                    self.query_into(s, &mut ws, &mut out)?;
                    Ok(out)
                })
                .collect();
        }
        let chunk = seeds.len().div_ceil(threads);
        let results: Vec<Result<Vec<Vec<f64>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .chunks(chunk)
                .map(|chunk_seeds| {
                    scope.spawn(move || -> Result<Vec<Vec<f64>>> {
                        let mut ws = QueryWorkspace::for_bear(self);
                        chunk_seeds
                            .iter()
                            .map(|&s| {
                                let mut out = vec![0.0; n];
                                self.query_into(s, &mut ws, &mut out)?;
                                Ok(out)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(Error::InvalidStructure("query_batch worker panicked".into()))
                    })
                })
                .collect()
        });
        let mut out = Vec::with_capacity(seeds.len());
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    }
}

impl RwrSolver for Bear {
    fn name(&self) -> &'static str {
        "BEAR"
    }

    fn query(&self, seed: usize) -> Result<Vec<f64>> {
        Bear::query(self, seed)
    }

    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        Bear::query_distribution(self, q)
    }

    fn num_nodes(&self) -> usize {
        Bear::num_nodes(self)
    }

    fn memory_bytes(&self) -> usize {
        self.spokes.memory_bytes()
            + self.l2_inv.memory_bytes()
            + self.u2_inv.memory_bytes()
            + self.h12.memory_bytes()
            + self.h21.memory_bytes()
    }

    fn precomputed_nnz(&self) -> usize {
        self.stats().total_nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::BearConfig;
    use bear_graph::Graph;
    use bear_sparse::DenseMatrix;

    /// Dense oracle: solve H r = c q directly.
    fn oracle(g: &Graph, c: f64, q: &[f64]) -> Vec<f64> {
        let h = crate::rwr::build_h(
            g,
            &crate::rwr::RwrConfig { c, normalization: crate::rwr::Normalization::Row },
        )
        .unwrap();
        let dense: DenseMatrix = h.to_dense();
        let lu = bear_sparse::DenseLu::factor(&dense).unwrap();
        let rhs: Vec<f64> = q.iter().map(|v| c * v).collect();
        lu.solve(&rhs).unwrap()
    }

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    #[test]
    fn exact_matches_dense_solve_on_star() {
        let g = undirected(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        for seed in 0..6 {
            let got = bear.query(seed).unwrap();
            let mut q = vec![0.0; 6];
            q[seed] = 1.0;
            let want = oracle(&g, 0.05, &q);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-10, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn exact_matches_dense_solve_on_two_caves() {
        // Hub 0 bridges two triangles.
        let g = undirected(
            7,
            &[(0, 1), (1, 2), (2, 1), (0, 2), (0, 3), (3, 4), (4, 5), (5, 3), (0, 6)],
        );
        let bear = Bear::new(&g, &BearConfig::exact(0.2)).unwrap();
        for seed in [0, 1, 4, 6] {
            let got = bear.query(seed).unwrap();
            let mut q = vec![0.0; 7];
            q[seed] = 1.0;
            let want = oracle(&g, 0.2, &q);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn scores_sum_to_one_on_strongly_connected_graph() {
        // Directed cycle: every row of Ã sums to 1, so scores sum to 1.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let r = bear.query(2).unwrap();
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-10, "sum = {sum}");
    }

    #[test]
    fn ppr_distribution_query_matches_superposition() {
        let g = undirected(6, &[(0, 1), (0, 2), (2, 3), (3, 4), (0, 5)]);
        let bear = Bear::new(&g, &BearConfig::exact(0.15)).unwrap();
        // RWR is linear in q: query over a mixture equals the mixture of
        // single-seed queries.
        let q = vec![0.5, 0.0, 0.25, 0.0, 0.0, 0.25];
        let got = bear.query_distribution(&q).unwrap();
        let r0 = bear.query(0).unwrap();
        let r2 = bear.query(2).unwrap();
        let r5 = bear.query(5).unwrap();
        for i in 0..6 {
            let want = 0.5 * r0[i] + 0.25 * r2[i] + 0.25 * r5[i];
            assert!((got[i] - want).abs() < 1e-10);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        assert!(bear.query(4).is_err());
        assert!(bear.query_distribution(&[0.0; 3]).is_err());
        assert!(bear.query_distribution(&[0.0; 4]).is_err()); // all-zero
        assert!(bear.query_distribution(&[-1.0, 0.0, 0.0, 1.0]).is_err());
    }

    #[test]
    fn approx_close_to_exact_for_small_tolerance() {
        let g = undirected(8, &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5), (0, 6), (6, 7), (1, 2)]);
        let exact = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        let approx = Bear::new(&g, &BearConfig::approx(0.05, 1e-4)).unwrap();
        let re = exact.query(1).unwrap();
        let ra = approx.query(1).unwrap();
        let err: f64 = re.iter().zip(&ra).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(err < 1e-2, "L2 error {err}");
    }

    #[test]
    fn batch_query_matches_sequential() {
        let g = undirected(
            10,
            &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6), (0, 7), (7, 8), (8, 9)],
        );
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let seeds: Vec<usize> = (0..10).collect();
        let sequential: Vec<Vec<f64>> = seeds.iter().map(|&s| bear.query(s).unwrap()).collect();
        for threads in [1, 2, 4, 16] {
            let batch = bear.query_batch(&seeds, threads).unwrap();
            assert_eq!(batch, sequential, "threads = {threads}");
        }
        // Error propagation: an out-of-range seed fails the whole batch.
        assert!(bear.query_batch(&[0, 99], 2).is_err());
        // Empty batch is fine.
        assert!(bear.query_batch(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn block_query_bitwise_equals_per_seed() {
        let g = undirected(
            12,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (0, 4),
                (4, 5),
                (5, 6),
                (0, 7),
                (7, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (4, 6),
            ],
        );
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        // Duplicates and arbitrary order are allowed.
        let seeds = [3usize, 0, 7, 3, 11, 5];
        let blocked = bear.query_block(&seeds).unwrap();
        assert_eq!(blocked.len(), seeds.len());
        for (j, &s) in seeds.iter().enumerate() {
            assert_eq!(blocked[j], bear.query(s).unwrap(), "seed {s} (column {j})");
        }
        // Duplicate seeds yield identical columns.
        assert_eq!(blocked[0], blocked[3]);
    }

    #[test]
    fn block_workspace_reuses_across_widths() {
        let g = undirected(9, &[(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6), (6, 7), (7, 8)]);
        let bear = Bear::new(&g, &BearConfig::exact(0.2)).unwrap();
        let mut ws = crate::engine::BlockWorkspace::for_bear(&bear);
        for seeds in [vec![0usize, 4, 8], vec![2], vec![1, 1, 3, 5, 7, 0, 2], vec![]] {
            let mut out = bear_sparse::DenseBlock::zeros(9, seeds.len());
            bear.query_block_into(&seeds, &mut ws, &mut out).unwrap();
            for (j, &s) in seeds.iter().enumerate() {
                assert_eq!(out.col(j), &bear.query(s).unwrap()[..], "width {}", seeds.len());
            }
        }
    }

    #[test]
    fn block_query_validates_inputs() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let mut ws = crate::engine::BlockWorkspace::for_bear(&bear);
        // Out-of-range seed named in the error.
        let mut out = bear_sparse::DenseBlock::zeros(5, 2);
        let err = bear.query_block_into(&[0, 9], &mut ws, &mut out).unwrap_err();
        assert_eq!(err, Error::IndexOutOfBounds { index: 9, bound: 5 });
        // Output block must be n × k.
        let mut wrong = bear_sparse::DenseBlock::zeros(5, 3);
        assert!(bear.query_block_into(&[0, 1], &mut ws, &mut wrong).is_err());
        let mut wrong = bear_sparse::DenseBlock::zeros(4, 2);
        assert!(bear.query_block_into(&[0, 1], &mut ws, &mut wrong).is_err());
        // Empty block is a no-op.
        assert!(bear.query_block(&[]).unwrap().is_empty());
    }

    #[test]
    fn dangling_nodes_handled() {
        // Node 3 has no out-edges.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        let r = bear.query(0).unwrap();
        let mut q = vec![0.0; 4];
        q[0] = 1.0;
        let want = oracle(&g, 0.05, &q);
        for (a, b) in r.iter().zip(&want) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
