//! Criterion micro-benchmark: blocked multi-RHS query kernels
//! ([`Bear::query_block_into`]) at widths 1/4/16/64 versus the per-seed
//! path ([`Bear::query_into`]). Times a full pass over a fixed seed set
//! so the numbers are per-query amortized and directly comparable across
//! widths; the recordable counterpart is the `query_block_speedup` bin.

use bear_core::{Bear, BearConfig, BlockWorkspace, QueryWorkspace};
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use bear_sparse::DenseBlock;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_query_block(c: &mut Criterion) {
    let g = hub_and_spoke(
        &HubSpokeConfig {
            num_hubs: 12,
            num_caves: 120,
            max_cave_size: 24,
            cave_density: 0.3,
            hub_links: 2,
            hub_density: 0.4,
        },
        &mut StdRng::seed_from_u64(42),
    );
    let bear = Bear::new(&g, &BearConfig::exact(0.05)).expect("preprocess");
    let n = bear.num_nodes();
    let seeds: Vec<usize> = (0..64).map(|i| (i * 2654435761) % n).collect();

    let mut group = c.benchmark_group("query_block");
    group.sample_size(20);

    let mut ws = QueryWorkspace::for_bear(&bear);
    let mut result = vec![0.0; n];
    group.bench_function(BenchmarkId::from_parameter("per_seed"), |b| {
        b.iter(|| {
            for &seed in &seeds {
                bear.query_into(seed, &mut ws, &mut result).unwrap();
            }
            std::hint::black_box(&result);
        })
    });

    for width in [1usize, 4, 16, 64] {
        let mut block_ws = BlockWorkspace::for_bear(&bear);
        let mut out = DenseBlock::zeros(n, 0);
        group.bench_function(BenchmarkId::from_parameter(format!("width_{width}")), |b| {
            b.iter(|| {
                for chunk in seeds.chunks(width) {
                    out.reset(n, chunk.len());
                    bear.query_block_into(chunk, &mut block_ws, &mut out).unwrap();
                }
                std::hint::black_box(&out);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_block);
criterion_main!(benches);
