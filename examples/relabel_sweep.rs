//! Scratch sweep (not part of the test suite): exhaustively check
//! relabelling invariance on all tiny weighted graphs with self-loops.
use bear_core::{Bear, BearConfig};
use bear_graph::Graph;
use bear_sparse::Permutation;

fn perms(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for p in perms(n - 1) {
        for i in 0..n {
            let mut q = p.clone();
            q.insert(i, n - 1);
            out.push(q);
        }
    }
    out
}

fn main() {
    let weights = [1.0, 2.0, 0.5];
    let mut checked = 0usize;
    let mut worst: f64 = 0.0;
    for n in 2..=3usize {
        let pairs: Vec<(usize, usize)> = (0..n).flat_map(|u| (0..n).map(move |v| (u, v))).collect();
        let m = pairs.len();
        // Every subset of possible directed edges (incl. self-loops), each with a weight pattern.
        for mask in 1u32..(1 << m) {
            for wpat in 0..weights.len() {
                let edges: Vec<(usize, usize, f64)> = pairs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(i, &(u, v))| (u, v, weights[(i + wpat) % weights.len()]))
                    .collect();
                // Every node needs out-degree >= 1 for a well-posed RWR? (dangling allowed per tests)
                let g = match Graph::from_weighted_edges(n, &edges) {
                    Ok(g) => g,
                    Err(_) => continue,
                };
                let b1 = match Bear::new(&g, &BearConfig::exact(0.15)) {
                    Ok(b) => b,
                    Err(e) => {
                        println!("PREP FAIL n={n} mask={mask} wpat={wpat}: {e} edges={edges:?}");
                        continue;
                    }
                };
                for order in perms(n) {
                    let p = Permutation::from_new_to_old(order.clone()).unwrap();
                    let rel: Vec<(usize, usize, f64)> =
                        g.edges().iter().map(|&(u, v, w)| (p.new_of(u), p.new_of(v), w)).collect();
                    let g2 = Graph::from_weighted_edges(n, &rel).unwrap();
                    let b2 = match Bear::new(&g2, &BearConfig::exact(0.15)) {
                        Ok(b) => b,
                        Err(e) => {
                            println!("PREP FAIL relabelled n={n} mask={mask} order={order:?}: {e}");
                            continue;
                        }
                    };
                    for seed in 0..n {
                        let r1 = match b1.query(seed) {
                            Ok(r) => r,
                            Err(e) => {
                                println!("QUERY FAIL n={n} mask={mask} seed={seed}: {e}");
                                continue;
                            }
                        };
                        let r2 = match b2.query(p.new_of(seed)) {
                            Ok(r) => r,
                            Err(e) => {
                                println!(
                                    "QUERY FAIL relabelled n={n} mask={mask} seed={seed}: {e}"
                                );
                                continue;
                            }
                        };
                        for u in 0..n {
                            let d = (r1[u] - r2[p.new_of(u)]).abs();
                            worst = worst.max(d);
                            if d >= 1e-9 {
                                println!("MISMATCH n={n} mask={mask} wpat={wpat} order={order:?} seed={seed} node={u}: {} vs {} (d={d:e}) edges={edges:?}", r1[u], r2[p.new_of(u)]);
                            }
                        }
                        checked += 1;
                    }
                }
            }
        }
    }
    println!("checked {checked} (graph, perm, seed) triples; worst diff = {worst:e}");
}
