//! L5 fixture: a small error taxonomy with unit, struct, and tuple
//! variants. Never compiled — parsed by the lint tests only.

/// Fixture error enum.
#[derive(Debug)]
pub enum Error {
    /// Unit variant.
    Timeout,
    /// Struct variant (its field names must not read as variants).
    QueueFull { capacity: usize },
    /// Tuple variant (its payload type must not read as a variant).
    Invalid(String),
}
