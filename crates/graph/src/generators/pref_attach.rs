//! Preferential-attachment (Barabási–Albert style) generator, producing
//! power-law degree graphs used by the dataset stand-ins.

use crate::graph::Graph;
use rand::Rng;

/// Grows a graph node by node; each new node attaches `m_per_node`
/// out-edges to existing nodes chosen proportionally to their current
/// degree (plus one, so isolated nodes stay reachable). The first
/// `m_per_node + 1` nodes form a seed clique.
pub fn preferential_attachment<R: Rng>(n: usize, m_per_node: usize, rng: &mut R) -> Graph {
    let m = m_per_node.max(1);
    if n == 0 {
        return Graph::from_edges(0, &[]).unwrap();
    }
    let seed = (m + 1).min(n);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * m);
    // Target pool: node id repeated once per incident edge, giving
    // degree-proportional sampling in O(1).
    let mut pool: Vec<usize> = Vec::with_capacity(2 * n * m);
    for u in 0..seed {
        for v in 0..u {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    if pool.is_empty() {
        pool.push(0);
    }
    for u in seed..n {
        let mut chosen = std::collections::HashSet::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            let v = pool[rng.gen_range(0..pool.len())];
            if v != u {
                chosen.insert(v);
            }
            guard += 1;
        }
        for &v in &chosen {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grows_to_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = preferential_attachment(100, 3, &mut rng);
        assert_eq!(g.num_nodes(), 100);
        // Each non-seed node adds up to 3 edges.
        assert!(g.num_edges() >= 100);
    }

    #[test]
    fn produces_skewed_degrees() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = preferential_attachment(500, 2, &mut rng);
        let degs = g.undirected_degrees();
        let max = *degs.iter().max().unwrap();
        let avg = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(max as f64 > 4.0 * avg, "max {max} not hub-like vs avg {avg}");
    }

    #[test]
    fn handles_degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(preferential_attachment(0, 2, &mut rng).num_nodes(), 0);
        assert_eq!(preferential_attachment(1, 2, &mut rng).num_nodes(), 1);
        let g = preferential_attachment(2, 3, &mut rng);
        assert_eq!(g.num_nodes(), 2);
    }
}
