//! Reverse Cuthill–McKee ordering.
//!
//! A classic bandwidth-reducing node ordering, provided as an alternative
//! reordering strategy to SlashBurn: useful for comparing BEAR's
//! hub-and-spoke ordering against the standard sparse-matrix heuristic,
//! and as a pre-ordering for the whole-matrix LU baseline on
//! mesh-like graphs where community structure is weak.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Computes the reverse Cuthill–McKee ordering of the undirected view of
/// `g`. Returns the `new -> old` array: position `i` of the reordered
/// matrix holds original node `order[i]`.
///
/// Components are processed in order of their lowest-degree member
/// ("pseudo-peripheral-ish" start); within a component, BFS visits
/// neighbors in ascending degree, and the final order is reversed.
pub fn reverse_cuthill_mckee(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let sym = g.symmetrized_pattern();
    let degree: Vec<usize> = (0..n).map(|u| sym.row_nnz(u)).collect();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut nbrs_buf: Vec<usize> = Vec::new();

    // Seed order: ascending degree, so each component starts at a
    // low-degree (peripheral) node.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_unstable_by_key(|&u| (degree[u], u));

    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let (nbrs, _) = sym.row(u);
            nbrs_buf.clear();
            nbrs_buf.extend(nbrs.iter().copied().filter(|&v| !visited[v]));
            nbrs_buf.sort_unstable_by_key(|&v| (degree[v], v));
            for &v in &nbrs_buf {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    order
}

/// Bandwidth of the symmetrized pattern under a `new -> old` ordering:
/// the maximum `|i − j|` over stored entries of the reordered matrix.
pub fn bandwidth(g: &Graph, order: &[usize]) -> usize {
    let n = g.num_nodes();
    debug_assert_eq!(order.len(), n);
    let mut position = vec![0usize; n];
    for (new, &old) in order.iter().enumerate() {
        position[old] = new;
    }
    let sym = g.symmetrized_pattern();
    let mut bw = 0usize;
    for (u, v, _) in sym.iter() {
        bw = bw.max(position[u].abs_diff(position[v]));
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn order_is_a_permutation() {
        let g = path(10);
        let order = reverse_cuthill_mckee(&g);
        let mut seen = [false; 10];
        for &u in &order {
            assert!(!seen[u]);
            seen[u] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn path_graph_gets_bandwidth_one() {
        let g = path(20);
        let order = reverse_cuthill_mckee(&g);
        assert_eq!(bandwidth(&g, &order), 1);
    }

    #[test]
    fn rcm_improves_bandwidth_over_shuffled_order() {
        // A path relabelled badly: identity order on shuffled labels has
        // large bandwidth; RCM must recover bandwidth 1.
        let edges: Vec<(usize, usize)> =
            vec![(0, 7), (7, 3), (3, 9), (9, 1), (1, 5), (5, 8), (8, 2), (2, 6), (6, 4)];
        let g = Graph::from_edges(10, &edges).unwrap();
        let identity: Vec<usize> = (0..10).collect();
        let rcm = reverse_cuthill_mckee(&g);
        assert!(bandwidth(&g, &rcm) < bandwidth(&g, &identity));
        assert_eq!(bandwidth(&g, &rcm), 1);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::from_edges(6, &[(0, 1), (3, 4)]).unwrap();
        let order = reverse_cuthill_mckee(&g);
        assert_eq!(order.len(), 6);
        let mut seen = [false; 6];
        for &u in &order {
            seen[u] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(reverse_cuthill_mckee(&g).is_empty());
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(reverse_cuthill_mckee(&g), vec![0]);
    }
}
