//! L2 fixture: allocations inside `*_into`/`*_acc` kernel bodies (true
//! positives) and alloc-free kernels / non-kernel helpers (true
//! negatives). Never compiled — parsed by the lint tests only.

/// True positives ×3: `Vec::new`, `.collect()`, and `vec![]` inside a
/// kernel body.
pub fn bad_axpy_into(out: &mut [f64], xs: &[f64], a: f64) {
    let mut scratch: Vec<f64> = Vec::new();
    for x in xs {
        scratch.push(a * x);
    }
    let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
    let tail = vec![0.0; out.len()];
    for ((o, d), t) in out.iter_mut().zip(&doubled).zip(&tail) {
        *o += d + t;
    }
}

/// True positive: `.to_vec()` inside an accumulator kernel.
pub fn bad_norm_acc(acc: &mut f64, xs: &[f64]) {
    let copy = xs.to_vec();
    for x in &copy {
        *acc += x * x;
    }
}

/// True negative: an alloc-free kernel.
pub fn good_axpy_into(out: &mut [f64], xs: &[f64], a: f64) {
    for (o, x) in out.iter_mut().zip(xs) {
        *o += a * x;
    }
}

/// True negative: helpers without the kernel suffix may allocate.
pub fn build_scratch(n: usize) -> Vec<f64> {
    let mut v = Vec::new();
    v.resize(n, 0.0);
    v
}
