//! Synchronization shim: `std::sync` in production, `loom` under model
//! checking.
//!
//! The engine's concurrency machinery ([`crate::engine::queue`] and
//! [`crate::engine::Metrics`]) imports its primitives from this module
//! instead of `std::sync`. A normal build re-exports the real `std`
//! types, so there is zero runtime cost. Building with
//! `RUSTFLAGS="--cfg loom"` swaps in the [`loom`] model checker's
//! instrumented equivalents, which explore every relevant interleaving
//! of the code under test (see `crates/core/tests/loom_engine.rs`).
//!
//! Only the primitives the engine actually uses are re-exported; add to
//! this list rather than importing `std::sync` directly from engine
//! code.

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex};

#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex};

/// Atomic integers and memory orderings (std or loom, matching the
/// parent module).
pub(crate) mod atomic {
    #[cfg(loom)]
    pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};

    #[cfg(not(loom))]
    pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
}
