//! R-MAT recursive matrix generator (Chakrabarti, Zhan & Faloutsos, SDM
//! 2004), parameterized the way the BEAR paper uses it: `p_ul` is the
//! probability of recursing into the upper-left quadrant and the other
//! three quadrants share `(1 - p_ul) / 3` each. Larger `p_ul` produces a
//! stronger hub-and-spoke structure (Section 4.4, Figure 7).

use crate::graph::Graph;
use rand::Rng;

/// Configuration for an R-MAT generation run.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of nodes (the generated graph has `2^scale`
    /// node slots; nodes that receive no edge stay isolated).
    pub scale: u32,
    /// Number of edges to sample (duplicates are merged, so the final
    /// count can be slightly lower).
    pub edges: usize,
    /// Probability of the upper-left quadrant (`a` in R-MAT terms).
    pub p_ul: f64,
    /// Noise added per recursion level to avoid exact self-similarity,
    /// as recommended by the original paper. 0 disables.
    pub noise: f64,
}

impl RmatConfig {
    /// The paper's Section 4.4 setup: quadrant probabilities
    /// `(p_ul, rest/3, rest/3, rest/3)`.
    pub fn paper(scale: u32, edges: usize, p_ul: f64) -> Self {
        RmatConfig { scale, edges, p_ul, noise: 0.0 }
    }
}

/// Generates a directed R-MAT graph.
pub fn rmat<R: Rng>(config: &RmatConfig, rng: &mut R) -> Graph {
    let n = 1usize << config.scale;
    let rest = (1.0 - config.p_ul) / 3.0;
    let (a, b, c) = (config.p_ul, rest, rest);
    let mut edges = Vec::with_capacity(config.edges);
    for _ in 0..config.edges {
        let (mut row, mut col) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            let (mut pa, mut pb, mut pc) = (a, b, c);
            if config.noise > 0.0 {
                let jitter = |p: f64, rng: &mut R| {
                    (p * (1.0 - config.noise + 2.0 * config.noise * rng.gen::<f64>())).max(0.0)
                };
                pa = jitter(pa, rng);
                pb = jitter(pb, rng);
                pc = jitter(pc, rng);
                let pd = jitter(1.0 - a - b - c, rng);
                let total = pa + pb + pc + pd;
                pa /= total;
                pb /= total;
                pc /= total;
            }
            let u: f64 = rng.gen();
            if u < pa {
                // upper-left: nothing to add
            } else if u < pa + pb {
                col += half;
            } else if u < pa + pb + pc {
                row += half;
            } else {
                row += half;
                col += half;
            }
            half >>= 1;
        }
        edges.push((row, col));
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_count_is_power_of_two() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = rmat(&RmatConfig::paper(8, 1000, 0.6), &mut rng);
        assert_eq!(g.num_nodes(), 256);
    }

    #[test]
    fn edge_count_close_to_requested() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = rmat(&RmatConfig::paper(10, 5000, 0.6), &mut rng);
        // Duplicates merge, so <= requested but not wildly fewer.
        assert!(g.num_edges() <= 5000);
        assert!(g.num_edges() > 3000, "too many duplicates: {}", g.num_edges());
    }

    #[test]
    fn high_p_ul_concentrates_in_low_ids() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = rmat(&RmatConfig::paper(10, 20000, 0.9), &mut rng);
        // With p_ul = 0.9, the top-left quadrant (ids < n/2 both endpoints)
        // should hold the large majority of edges.
        let n_half = g.num_nodes() / 2;
        let in_ul = g.edges().iter().filter(|&&(u, v, _)| u < n_half && v < n_half).count();
        assert!(
            in_ul as f64 > 0.7 * g.num_edges() as f64,
            "only {in_ul}/{} edges in upper-left",
            g.num_edges()
        );
    }

    #[test]
    fn higher_p_ul_means_more_skew() {
        // Compare the share of edges held by the ten busiest sources —
        // a stabler skew measure than the single max degree.
        let top10_share = |p_ul: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = rmat(&RmatConfig::paper(10, 10000, p_ul), &mut rng);
            let mut degs = g.out_degrees();
            degs.sort_unstable_by(|a, b| b.cmp(a));
            degs.iter().take(10).sum::<usize>() as f64 / g.num_edges() as f64
        };
        let low = top10_share(0.5, 4);
        let high = top10_share(0.9, 4);
        assert!(high > low, "top-10 share {high} !> {low}");
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = rmat(&RmatConfig::paper(8, 500, 0.7), &mut StdRng::seed_from_u64(9));
        let g2 = rmat(&RmatConfig::paper(8, 500, 0.7), &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }
}
