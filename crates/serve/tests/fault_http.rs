//! Deterministic overload mapping over HTTP, driven by bear-core's
//! fail-point sites (enable with `--features failpoints`).
//!
//! The core queue-full scenario is raced-free by construction: a
//! `Delay` fail point pins the single worker inside a job, requests
//! carrying generous deadlines skip the caller-assist path (inline
//! work cannot be abandoned mid-compute once a deadline is set), so
//! the one-slot queue fills deterministically and the next admission
//! must observe `Error::QueueFull` → `429 Too Many Requests`.

#![cfg(feature = "failpoints")]

use bear_core::failpoints::{self, FailAction};
use bear_core::rwr::RwrConfig;
use bear_core::{Bear, BearConfig, EngineConfig, FallbackSolver, QueryEngine};
use bear_graph::Graph;
use bear_serve::{client, Registry, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn star_graph() -> Graph {
    let mut edges = Vec::new();
    for v in 1..12 {
        edges.push((0, v));
        edges.push((v, 0));
    }
    Graph::from_edges(12, &edges).unwrap()
}

#[test]
fn queue_full_maps_to_429_with_retry_after() {
    let bear = Arc::new(Bear::new(&star_graph(), &BearConfig::exact(0.15)).unwrap());
    // One worker, one queue slot, no caching: the tightest engine the
    // config validator admits.
    let engine_config = EngineConfig::builder()
        .threads(1)
        .queue_capacity(1)
        .cache_capacity(0)
        .block_width(1)
        .build()
        .unwrap();
    let engine = QueryEngine::new(bear, engine_config.clone()).unwrap();
    let registry = Arc::new(Registry::new());
    registry.publish("g", Arc::new(engine));
    let tenant = registry.get("g").unwrap();
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig { http_threads: 4, engine_config, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.addr();

    failpoints::configure("engine::run_job", FailAction::Delay(Duration::from_millis(600)));

    // A occupies the worker (delayed inside run_job), B fills the one
    // queue slot. Both carry 30 s deadlines so neither is assisted
    // inline by its submitting HTTP worker.
    let slow = |seed: usize| {
        std::thread::spawn(move || {
            client::get(
                addr,
                &format!("/v1/query?graph=g&seed={seed}"),
                &[("X-Deadline-Ms", "30000")],
            )
            .unwrap()
        })
    };
    let a = slow(1);
    // Give A time to be admitted *and* popped: the worker is then
    // parked inside the 600 ms delay with the queue slot free again.
    std::thread::sleep(Duration::from_millis(150));
    let b = slow(2);
    // B's job parks in the queue slot while the worker is still pinned.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while tenant.engine.queue_depth() < 1 {
        assert!(std::time::Instant::now() < deadline, "queue never filled");
        std::thread::sleep(Duration::from_millis(5));
    }

    // C must be rejected at admission: 429, typed, with backoff advice.
    let c = client::get(addr, "/v1/query?graph=g&seed=3", &[("X-Deadline-Ms", "30000")]).unwrap();
    assert_eq!(c.status, 429, "{}", c.body_str());
    assert!(c.body_str().contains("overloaded"));
    assert_eq!(c.header("retry-after"), Some("1"));

    failpoints::clear_all();
    assert_eq!(a.join().unwrap().status, 200, "pinned request must still complete");
    assert_eq!(b.join().unwrap().status, 200, "queued request must still complete");

    let m = tenant.engine.metrics();
    assert!(m.queue_rejections >= 1, "rejection must be counted: {m:?}");
    let text = client::get(addr, "/metrics", &[]).unwrap().body_str();
    assert!(text.contains("bear_http_responses_429_total 1"), "{text}");

    server.shutdown();
}

/// Satellite regression: a degraded *top-k* answer carries the same
/// `X-Degraded` ladder headers as the full-vector endpoints — the old
/// path lost the tag because `/v1/topk` never consulted the engine's
/// fallback. A worker panic (injected) with a fallback attached must
/// produce `200` + `X-Degraded: worker panicked`, and the degraded
/// ranking must never enter the top-k cache.
#[test]
fn degraded_topk_carries_x_degraded_header() {
    let g = star_graph();
    let bear = Arc::new(Bear::new(&g, &BearConfig::exact(0.15)).unwrap());
    let rwr = RwrConfig { c: 0.15, ..RwrConfig::default() };
    let fallback = Arc::new(FallbackSolver::new(&g, &rwr, 64).unwrap());
    let engine_config =
        EngineConfig::builder().threads(1).cache_capacity(8).block_width(1).build().unwrap();
    let engine = QueryEngine::with_fallback(bear, engine_config.clone(), fallback).unwrap();
    let registry = Arc::new(Registry::new());
    registry.publish("g", Arc::new(engine));
    let tenant = registry.get("g").unwrap();
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig { http_threads: 2, engine_config, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.addr();

    failpoints::configure("engine::run_job", FailAction::Panic);
    let resp = client::get(addr, "/v1/topk?graph=g&seed=1&k=3", &[]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(resp.header("x-degraded"), Some("worker panicked"), "{}", resp.body_str());
    assert!(resp.header("x-error-bound").is_some());
    assert_eq!(resp.body_str().matches("\"node\":").count(), 3);
    failpoints::clear_all();

    let m = tenant.engine.metrics();
    assert!(m.degraded >= 1, "degradation must be counted: {m:?}");
    assert!(m.worker_panics >= 1, "panic must be counted: {m:?}");

    // The degraded ranking must not have been cached: with the
    // failpoint cleared, the same request is answered exact (no
    // X-Degraded) rather than served from a poisoned cache entry.
    let resp = client::get(addr, "/v1/topk?graph=g&seed=1&k=3", &[]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(resp.header("x-degraded"), None, "degraded answers must never be cached");

    server.shutdown();
}
