//! Permutations of node/row/column indices.
//!
//! BEAR's preprocessing is built around symmetric permutations
//! `P H Pᵀ` computed by SlashBurn; this module provides the permutation
//! type and the permuted-matrix kernels.

use crate::csr::CsrMatrix;
use crate::error::{Error, Result};
use crate::validate::{Invariant, PermMutation};

/// A permutation of `0..n`.
///
/// `perm[new_index] = old_index`: applying the permutation to a matrix
/// places old row `perm[i]` at new row `i`. This is the "gather"
/// convention, which makes composing with SlashBurn orderings natural
/// (SlashBurn emits the new ordering as a list of old ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>, // forward[new] = old
    inverse: Vec<usize>, // inverse[old] = new
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        let forward: Vec<usize> = (0..n).collect();
        Permutation { inverse: forward.clone(), forward }
    }

    /// Builds from a `new -> old` mapping, validating that it is a
    /// bijection on `0..n`.
    pub fn from_new_to_old(forward: Vec<usize>) -> Result<Self> {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (new, &old) in forward.iter().enumerate() {
            if old >= n {
                return Err(Error::IndexOutOfBounds { index: old, bound: n });
            }
            if inverse[old] != usize::MAX {
                return Err(Error::InvalidStructure(format!(
                    "duplicate element {old} in permutation"
                )));
            }
            inverse[old] = new;
        }
        Ok(Permutation { forward, inverse })
    }

    /// Alias of [`Permutation::from_new_to_old`] matching the
    /// `try_from_parts` naming of the matrix types: the fallible
    /// constructor for trust boundaries. (Permutations store no floats, so
    /// there is no additional finiteness check to run.)
    pub fn try_from_parts(forward: Vec<usize>) -> Result<Self> {
        Self::from_new_to_old(forward)
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Old index sitting at new position `new`.
    #[inline]
    pub fn old_of(&self, new: usize) -> usize {
        self.forward[new]
    }

    /// New position of old index `old`.
    #[inline]
    pub fn new_of(&self, old: usize) -> usize {
        self.inverse[old]
    }

    /// The `new -> old` array.
    pub fn as_new_to_old(&self) -> &[usize] {
        &self.forward
    }

    /// The `old -> new` array.
    pub fn as_old_to_new(&self) -> &[usize] {
        &self.inverse
    }

    /// Returns the inverse permutation.
    pub fn inverted(&self) -> Permutation {
        Permutation { forward: self.inverse.clone(), inverse: self.forward.clone() }
    }

    /// Composes `self` after `first`: the result maps
    /// `new -> first.old_of(self.old_of(new))`, i.e. applying the result
    /// equals applying `first` then `self`.
    pub fn compose(&self, first: &Permutation) -> Result<Permutation> {
        if self.len() != first.len() {
            return Err(Error::InvalidStructure(format!(
                "cannot compose permutations of lengths {} and {}",
                self.len(),
                first.len()
            )));
        }
        let forward = (0..self.len()).map(|new| first.old_of(self.old_of(new))).collect();
        Permutation::from_new_to_old(forward)
    }

    /// Applies the symmetric permutation `P A Pᵀ`: entry `(r, c)` of the
    /// result equals entry `(old_of(r), old_of(c))` of `a`.
    pub fn permute_symmetric(&self, a: &CsrMatrix) -> Result<CsrMatrix> {
        if a.nrows() != self.len() || a.ncols() != self.len() {
            return Err(Error::DimensionMismatch {
                op: "permute_symmetric",
                lhs: (self.len(), self.len()),
                rhs: (a.nrows(), a.ncols()),
            });
        }
        let mut indptr = Vec::with_capacity(a.nrows() + 1);
        let mut indices = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        indptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for new_r in 0..self.len() {
            let old_r = self.forward[new_r];
            let (cols, vals) = a.row(old_r);
            scratch.clear();
            scratch.extend(cols.iter().zip(vals).map(|(&c, &v)| (self.inverse[c], v)));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix::from_raw_unchecked(a.nrows(), a.ncols(), indptr, indices, values))
    }

    /// Permutes only the rows: `out.row(new) = a.row(old_of(new))`.
    pub fn permute_rows(&self, a: &CsrMatrix) -> Result<CsrMatrix> {
        if a.nrows() != self.len() {
            return Err(Error::DimensionMismatch {
                op: "permute_rows",
                lhs: (self.len(), self.len()),
                rhs: (a.nrows(), a.ncols()),
            });
        }
        let mut indptr = Vec::with_capacity(a.nrows() + 1);
        let mut indices = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        indptr.push(0);
        for new_r in 0..self.len() {
            let (cols, vals) = a.row(self.forward[new_r]);
            indices.extend_from_slice(cols);
            values.extend_from_slice(vals);
            indptr.push(indices.len());
        }
        Ok(CsrMatrix::from_raw_unchecked(a.nrows(), a.ncols(), indptr, indices, values))
    }

    /// Permutes only the columns: old column `c` moves to `new_of(c)`.
    pub fn permute_cols(&self, a: &CsrMatrix) -> Result<CsrMatrix> {
        if a.ncols() != self.len() {
            return Err(Error::DimensionMismatch {
                op: "permute_cols",
                lhs: (self.len(), self.len()),
                rhs: (a.nrows(), a.ncols()),
            });
        }
        let mut indptr = Vec::with_capacity(a.nrows() + 1);
        let mut indices = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        indptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            scratch.clear();
            scratch.extend(cols.iter().zip(vals).map(|(&c, &v)| (self.inverse[c], v)));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix::from_raw_unchecked(a.nrows(), a.ncols(), indptr, indices, values))
    }

    /// Permutes a dense vector: `out[new] = x[old_of(new)]`.
    pub fn permute_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.len() {
            return Err(Error::DimensionMismatch {
                op: "permute_vec",
                lhs: (self.len(), 1),
                rhs: (x.len(), 1),
            });
        }
        Ok(self.forward.iter().map(|&old| x[old]).collect())
    }

    /// [`Permutation::permute_vec`] into a caller-owned buffer (no
    /// allocation): `out[new] = x[old_of(new)]`.
    pub fn permute_vec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.len() || out.len() != self.len() {
            return Err(Error::DimensionMismatch {
                op: "permute_vec_into",
                lhs: (self.len(), 1),
                rhs: (x.len(), out.len()),
            });
        }
        for (o, &old) in out.iter_mut().zip(&self.forward) {
            *o = x[old];
        }
        Ok(())
    }

    /// Undoes [`Permutation::permute_vec`]: `out[old_of(new)] = x[new]`.
    pub fn unpermute_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.len() {
            return Err(Error::DimensionMismatch {
                op: "unpermute_vec",
                lhs: (self.len(), 1),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; x.len()];
        self.unpermute_vec_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Permutation::unpermute_vec`] into a caller-owned buffer (no
    /// allocation): `out[old_of(new)] = x[new]`.
    pub fn unpermute_vec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.len() || out.len() != self.len() {
            return Err(Error::DimensionMismatch {
                op: "unpermute_vec_into",
                lhs: (self.len(), 1),
                rhs: (x.len(), out.len()),
            });
        }
        for (new, &old) in self.forward.iter().enumerate() {
            out[old] = x[new];
        }
        Ok(())
    }

    /// Test support: breaks exactly one invariant in place, bypassing the
    /// validating constructor. Returns whether the mutation was applicable.
    /// See [`crate::validate`].
    #[doc(hidden)]
    pub fn apply_mutation(&mut self, mutation: PermMutation) -> bool {
        match mutation {
            PermMutation::DuplicateEntry => {
                if self.forward.len() < 2 {
                    return false;
                }
                self.forward[1] = self.forward[0];
                true
            }
            PermMutation::OutOfBoundsEntry => {
                let n = self.forward.len();
                match self.forward.first_mut() {
                    Some(f) => {
                        *f = n;
                        true
                    }
                    None => false,
                }
            }
            PermMutation::InconsistentInverse => {
                if self.inverse.len() < 2 {
                    return false;
                }
                self.inverse.swap(0, 1);
                true
            }
        }
    }
}

impl Invariant for Permutation {
    fn validate(&self) -> Result<()> {
        let n = self.forward.len();
        if self.inverse.len() != n {
            return Err(Error::InvalidStructure(format!(
                "permutation arrays have mismatched lengths: {} forward, {} inverse",
                n,
                self.inverse.len()
            )));
        }
        let mut seen = vec![false; n];
        for (new, &old) in self.forward.iter().enumerate() {
            if old >= n {
                return Err(Error::IndexOutOfBounds { index: old, bound: n });
            }
            if seen[old] {
                return Err(Error::InvalidStructure(format!(
                    "duplicate element {old} in permutation"
                )));
            }
            seen[old] = true;
            if self.inverse[old] != new {
                return Err(Error::InvalidStructure(format!(
                    "cached inverse is inconsistent at element {old}: \
                     inverse[{old}] = {}, expected {new}",
                    self.inverse[old]
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(3);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(p.permute_vec(&x).unwrap(), x);
        let m = CsrMatrix::identity(3);
        assert_eq!(p.permute_symmetric(&m).unwrap(), m);
    }

    #[test]
    fn from_new_to_old_rejects_non_bijection() {
        assert!(Permutation::from_new_to_old(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_new_to_old(vec![0, 3]).is_err());
    }

    #[test]
    fn vec_round_trip() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let x = vec![10.0, 20.0, 30.0];
        let y = p.permute_vec(&x).unwrap();
        assert_eq!(y, vec![30.0, 10.0, 20.0]);
        assert_eq!(p.unpermute_vec(&y).unwrap(), x);
    }

    #[test]
    fn symmetric_permutation_moves_entries() {
        // A = [[0, 1], [2, 0]]; swap rows/cols.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        let a = coo.to_csr();
        let p = Permutation::from_new_to_old(vec![1, 0]).unwrap();
        let b = p.permute_symmetric(&a).unwrap();
        assert_eq!(b.get(0, 1), 2.0);
        assert_eq!(b.get(1, 0), 1.0);
    }

    #[test]
    fn symmetric_permutation_is_involutive_under_inverse() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(3, 0, 3.0);
        coo.push(2, 2, 4.0);
        let a = coo.to_csr();
        let p = Permutation::from_new_to_old(vec![3, 1, 0, 2]).unwrap();
        let b = p.permute_symmetric(&a).unwrap();
        let back = p.inverted().permute_symmetric(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn compose_applies_in_sequence() {
        let first = Permutation::from_new_to_old(vec![1, 2, 0]).unwrap();
        let second = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let combined = second.compose(&first).unwrap();
        let x = vec![10.0, 20.0, 30.0];
        let step = first.permute_vec(&x).unwrap();
        let two_step = second.permute_vec(&step).unwrap();
        assert_eq!(combined.permute_vec(&x).unwrap(), two_step);
    }

    #[test]
    fn row_and_col_permutations_compose_to_symmetric() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(2, 0, 3.0);
        let a = coo.to_csr();
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let via_two_steps = p.permute_cols(&p.permute_rows(&a).unwrap()).unwrap();
        let via_symmetric = p.permute_symmetric(&a).unwrap();
        assert_eq!(via_two_steps, via_symmetric);
    }

    #[test]
    fn permute_rows_moves_rows() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 5.0);
        let a = coo.to_csr();
        let p = Permutation::from_new_to_old(vec![1, 0]).unwrap();
        let b = p.permute_rows(&a).unwrap();
        assert_eq!(b.get(1, 0), 5.0);
        assert_eq!(b.get(0, 0), 0.0);
    }

    #[test]
    fn permute_cols_moves_cols() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 5.0);
        let a = coo.to_csr();
        let p = Permutation::from_new_to_old(vec![1, 0]).unwrap();
        let b = p.permute_cols(&a).unwrap();
        assert_eq!(b.get(0, 1), 5.0);
    }

    #[test]
    fn old_new_round_trip() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]).unwrap();
        for new in 0..4 {
            assert_eq!(p.new_of(p.old_of(new)), new);
        }
        for old in 0..4 {
            assert_eq!(p.old_of(p.new_of(old)), old);
        }
    }

    #[test]
    fn vec_into_forms_match_allocating_forms() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]).unwrap();
        let x = [10.0, 11.0, 12.0, 13.0];
        let permuted = p.permute_vec(&x).unwrap();
        let mut buf = [0.0; 4];
        p.permute_vec_into(&x, &mut buf).unwrap();
        assert_eq!(buf, permuted[..]);
        let mut back = [0.0; 4];
        p.unpermute_vec_into(&permuted, &mut back).unwrap();
        assert_eq!(back, x);
        assert!(p.permute_vec_into(&x, &mut [0.0; 3]).is_err());
        assert!(p.unpermute_vec_into(&x[..3], &mut [0.0; 4]).is_err());
    }
}
