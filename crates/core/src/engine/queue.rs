//! Shared job queue feeding the worker pool.
//!
//! A `Condvar`-signalled deque instead of an mpsc channel, so the
//! *submitting* thread can opportunistically pop work too
//! ([`JobQueue::try_pop`]) while pool workers block in [`JobQueue::pop`].
//! The lock is held only for queue surgery, never while waiting for or
//! executing a job.
//!
//! The queue is generic over the job type and built exclusively on the
//! `crate::sync` shim, so the loom suite
//! (`crates/core/tests/loom_engine.rs`) model-checks exactly the code
//! that runs in production: submit vs. steal, concurrent shutdown, and
//! the wakeup protocol are all explored exhaustively under
//! `--cfg loom`.

use crate::sync::{Condvar, Mutex};
use bear_sparse::{Error, Result};
use std::collections::VecDeque;

/// Shared multi-producer multi-consumer job queue with explicit
/// shutdown.
///
/// Invariants maintained across all interleavings (loom-checked):
///
/// * every job accepted by [`JobQueue::push`] is handed to exactly one
///   popper;
/// * after [`JobQueue::close`], `push` fails and blocked poppers drain
///   the backlog then observe `None`;
/// * a successful `push` wakes at least one blocked popper (the
///   lost-wakeup regression is demonstrated caught by the loom suite
///   via `JobQueue::push_without_notify`, compiled only under
///   `cfg(any(test, loom))`).
pub struct JobQueue<T> {
    state: Mutex<JobQueueState<T>>,
    ready: Condvar,
}

struct JobQueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// An open, empty queue.
    pub fn new() -> Self {
        JobQueue {
            state: Mutex::new(JobQueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job and wakes one worker; fails once the queue closed.
    pub fn push(&self, job: T) -> Result<()> {
        self.enqueue(job)?;
        self.ready.notify_one();
        Ok(())
    }

    /// [`JobQueue::push`] without the worker wakeup — a deliberately
    /// reintroduced lost-notification bug, kept compiled only for the
    /// model-checking suite, which demonstrates that the loom models
    /// catch the resulting deadlock (`lost_notify_is_caught` in
    /// `crates/core/tests/loom_engine.rs`).
    #[cfg(any(test, loom))]
    pub fn push_without_notify(&self, job: T) -> Result<()> {
        self.enqueue(job)
    }

    fn enqueue(&self, job: T) -> Result<()> {
        let mut state = self
            .state
            .lock()
            .map_err(|_| Error::InvalidStructure("query engine queue is poisoned".into()))?;
        if state.closed {
            return Err(Error::InvalidStructure("query engine pool is shut down".into()));
        }
        state.jobs.push_back(job);
        Ok(())
    }

    /// Blocks until a job is available; `None` once closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().ok()?;
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).ok()?;
        }
    }

    /// Non-blocking pop, used by submitting threads to assist the pool.
    pub fn try_pop(&self) -> Option<T> {
        self.state.lock().ok()?.jobs.pop_front()
    }

    /// Closes the queue and wakes every blocked worker.
    pub fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.closed = true;
        }
        self.ready.notify_all();
    }
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}
