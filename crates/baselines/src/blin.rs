//! B_LIN (Tong, Faloutsos & Pan, KAIS 2008): partition the graph, keep
//! within-partition edges exact, and low-rank-approximate the
//! cross-partition edges.
//!
//! With `Ãᵀ = A₁ + A₂` (within / cross) and `A₂ ≈ U Σ V`,
//!
//! ```text
//! H ≈ M − (1−c) U Σ V,    M = I − (1−c) A₁   (block diagonal)
//! H⁻¹ ≈ M⁻¹ + M⁻¹ U Λ V M⁻¹,  Λ = ( ((1−c)Σ)⁻¹ − V M⁻¹ U )⁻¹
//! ```
//!
//! `M⁻¹` is materialized block by block (the step where the original
//! implementation runs out of memory on large partitions — reproduced
//! here with a budget pre-check on `Σ sizeᵢ²`).

use crate::nblin::{build_lambda, effective_rank};
use bear_core::rwr::{normalized_adjacency, validate_distribution, RwrConfig};
use bear_core::RwrSolver;
use bear_graph::partition::{partition_bfs, partition_ordering, split_by_partition};
use bear_graph::Graph;
use bear_sparse::mem::{MemBudget, MemoryUsage, VALUE_BYTES};
use bear_sparse::svd::{csr_times_dense, randomized_svd};
use bear_sparse::{CooMatrix, CsrMatrix, DenseLu, DenseMatrix, Error, Permutation, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for B_LIN.
#[derive(Debug, Clone, Copy)]
pub struct BLinConfig {
    /// Restart probability and normalization.
    pub rwr: RwrConfig,
    /// Number of partitions `#p` (Table 5 uses 100–2000).
    pub num_partitions: usize,
    /// Approximation rank `t` for the cross-partition edges.
    pub rank: usize,
    /// Drop tolerance `ξ` applied to `M⁻¹`, `U`, and `V`.
    pub drop_tolerance: f64,
    /// RNG seed for the randomized SVD sketch.
    pub seed: u64,
}

impl Default for BLinConfig {
    fn default() -> Self {
        BLinConfig {
            rwr: RwrConfig::default(),
            num_partitions: 10,
            rank: 100,
            drop_tolerance: 0.0,
            seed: 0,
        }
    }
}

/// Preprocessed B_LIN solver.
#[derive(Debug, Clone)]
pub struct BLin {
    m_inv: CsrMatrix,
    u: CsrMatrix,
    v: CsrMatrix,
    lambda: DenseMatrix,
    perm: Permutation,
    c: f64,
}

impl BLin {
    /// Preprocesses `g`, honouring `budget` for the block inverses.
    pub fn new(g: &Graph, config: &BLinConfig, budget: &MemBudget) -> Result<Self> {
        config.rwr.validate()?;
        let n = g.num_nodes();
        let c = config.rwr.c;

        // Partition, then reorder so partitions are contiguous.
        let labels = partition_bfs(g, config.num_partitions);
        let (order, sizes) = partition_ordering(&labels, config.num_partitions);
        let perm = Permutation::from_new_to_old(order)?;

        // Block-inverse footprint pre-check: the original implementation
        // densifies each diagonal block to invert it.
        let block_footprint: usize =
            sizes.iter().map(|&s| s.saturating_mul(s).saturating_mul(VALUE_BYTES)).sum();
        budget.check(block_footprint)?;

        let at = perm.permute_symmetric(&normalized_adjacency(g, &config.rwr).transpose())?;
        let perm_labels: Vec<usize> = (0..n).map(|i| labels[perm.old_of(i)]).collect();
        let (a1, a2) = split_by_partition(&at, &perm_labels);

        // M = I − (1−c) A₁, block diagonal; invert per block (dense).
        let m_inv = invert_block_diagonal(&a1, &sizes, c)?;

        // Low-rank approximation of the cross-partition edges.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let svd = randomized_svd(&a2, config.rank, 10.min(n), 2, &mut rng)?;
        let t = effective_rank(&svd.s);
        if t == 0 {
            return Err(Error::InvalidStructure(
                "cross-partition matrix has no significant singular values \
                 (try fewer partitions)"
                    .into(),
            ));
        }

        // G = V M⁻¹ U: Y = M⁻¹ U (n × t), then G = V · Y (t × t).
        let mut u_dense = DenseMatrix::zeros(n, t);
        for i in 0..n {
            for j in 0..t {
                u_dense[(i, j)] = svd.u[(i, j)];
            }
        }
        let y = csr_times_dense(&m_inv, &u_dense)?;
        let mut g_mat = DenseMatrix::zeros(t, t);
        for i in 0..t {
            for j in 0..t {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += svd.vt[(i, k)] * y[(k, j)];
                }
                g_mat[(i, j)] = acc;
            }
        }
        let lambda = build_lambda(&svd.s[..t], &g_mat, c)?;

        let mut v_dense = DenseMatrix::zeros(t, n);
        for i in 0..t {
            for j in 0..n {
                v_dense[(i, j)] = svd.vt[(i, j)];
            }
        }
        let xi = config.drop_tolerance.max(0.0);
        let m_inv = bear_sparse::sparsify::drop_tolerance_csr(&m_inv, xi);
        Ok(BLin { m_inv, u: u_dense.to_csr(xi), v: v_dense.to_csr(xi), lambda, perm, c })
    }
}

/// Inverts `M = I − (1−c) A₁` where `A₁` only has entries inside the
/// contiguous diagonal blocks given by `sizes`. Each block is densified,
/// inverted with partial-pivot LU, and written back sparsely.
fn invert_block_diagonal(a1: &CsrMatrix, sizes: &[usize], c: f64) -> Result<CsrMatrix> {
    let n = a1.nrows();
    let mut coo = CooMatrix::new(n, n);
    let mut off = 0usize;
    for &size in sizes {
        if size == 0 {
            continue;
        }
        let block = a1.submatrix(off, off + size, off, off + size)?;
        let mut dense = DenseMatrix::zeros(size, size);
        for (r, col, v) in block.iter() {
            dense[(r, col)] = -(1.0 - c) * v;
        }
        for i in 0..size {
            dense[(i, i)] += 1.0;
        }
        let inv = DenseLu::factor(&dense)?.inverse()?;
        for r in 0..size {
            for col in 0..size {
                let v = inv[(r, col)];
                if v != 0.0 {
                    coo.push(off + r, off + col, v);
                }
            }
        }
        off += size;
    }
    if off != n {
        return Err(Error::InvalidStructure(format!("partition sizes sum to {off}, expected {n}")));
    }
    Ok(coo.to_csr())
}

impl RwrSolver for BLin {
    fn name(&self) -> &'static str {
        "B_LIN"
    }

    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        let n = self.perm.len();
        if q.len() != n {
            return Err(Error::DimensionMismatch {
                op: "b_lin query",
                lhs: (n, 1),
                rhs: (q.len(), 1),
            });
        }
        validate_distribution(q)?;
        let qp = self.perm.permute_vec(q)?;
        // r = c (M⁻¹q + M⁻¹ U Λ V M⁻¹ q)
        let t0 = self.m_inv.matvec(&qp)?;
        let t1 = self.v.matvec(&t0)?;
        let t2 = self.lambda.matvec(&t1)?;
        let t3 = self.u.matvec(&t2)?;
        let t4 = self.m_inv.matvec(&t3)?;
        let r: Vec<f64> = t0.iter().zip(&t4).map(|(a, b)| self.c * (a + b)).collect();
        self.perm.unpermute_vec(&r)
    }

    fn num_nodes(&self) -> usize {
        self.perm.len()
    }

    fn memory_bytes(&self) -> usize {
        self.m_inv.memory_bytes()
            + self.u.memory_bytes()
            + self.v.memory_bytes()
            + self.lambda.memory_bytes()
    }

    fn precomputed_nnz(&self) -> usize {
        self.m_inv.nnz() + self.u.nnz() + self.v.nnz() + self.lambda.nrows() * self.lambda.ncols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_core::metrics::cosine_similarity;
    use bear_core::{Bear, BearConfig};

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    fn two_communities() -> Graph {
        undirected(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (0, 2),
                (1, 3),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (5, 7),
                (6, 8),
                (4, 5), // single cross edge
            ],
        )
    }

    #[test]
    fn high_rank_blin_is_nearly_exact() {
        let g = two_communities();
        let config = BLinConfig { num_partitions: 2, rank: 10, ..BLinConfig::default() };
        let bl = BLin::new(&g, &config, &MemBudget::unlimited()).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        for seed in [0, 4, 5, 9] {
            let ra = bl.query(seed).unwrap();
            let rb = bear.query(seed).unwrap();
            for (a, b) in ra.iter().zip(&rb) {
                assert!((a - b).abs() < 1e-6, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn low_rank_blin_is_directionally_right() {
        let g = two_communities();
        let config = BLinConfig { num_partitions: 2, rank: 2, ..BLinConfig::default() };
        let bl = BLin::new(&g, &config, &MemBudget::unlimited()).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        let ra = bl.query(0).unwrap();
        let rb = bear.query(0).unwrap();
        assert!(cosine_similarity(&ra, &rb) > 0.9);
    }

    #[test]
    fn budget_on_block_inverses_enforced() {
        let g = two_communities();
        let config = BLinConfig { num_partitions: 1, rank: 2, ..BLinConfig::default() };
        // One partition of 10 nodes = 100 floats = 800 bytes of block
        // inverse; a 100-byte budget must refuse.
        assert!(matches!(
            BLin::new(&g, &config, &MemBudget::bytes(100)),
            Err(Error::OutOfBudget { .. })
        ));
    }

    #[test]
    fn memory_accounts_all_parts() {
        let g = two_communities();
        let config = BLinConfig { num_partitions: 2, rank: 3, ..BLinConfig::default() };
        let bl = BLin::new(&g, &config, &MemBudget::unlimited()).unwrap();
        assert!(bl.memory_bytes() > 0);
        assert_eq!(bl.num_nodes(), 10);
        assert_eq!(bl.name(), "B_LIN");
    }
}
