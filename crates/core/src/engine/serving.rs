//! The serving layer: persistent worker pool, result caches, and the
//! public [`QueryEngine`] API.
//!
//! Everything here drives real OS threads and wall-clock timers, so the
//! whole module is compiled out under `cfg(loom)`; the synchronization
//! skeleton it is built on ([`JobQueue`], [`Metrics`]) lives in sibling
//! modules and *is* model-checked.

use super::metrics::Metrics;
use super::queue::JobQueue;
use super::{MetricsSnapshot, QueryWorkspace};
use crate::precompute::Bear;
use crate::topk::{top_k_excluding_seed, ScoredNode};
use bear_sparse::{Error, Result};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Bounded LRU cache
// ---------------------------------------------------------------------------

/// Minimal bounded LRU: a `HashMap` with a monotonically increasing use
/// stamp per entry. Eviction scans for the stale entry — O(capacity), which
/// is fine for the small bounded capacities the engine uses and keeps the
/// implementation dependency-free.
struct LruCache<K, V> {
    capacity: usize,
    stamp: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    fn new(capacity: usize) -> Self {
        LruCache { capacity, stamp: 0, map: HashMap::with_capacity(capacity) }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get_mut(key).map(|(s, v)| {
            *s = stamp;
            v.clone()
        })
    }

    fn insert(&mut self, key: K, value: V) {
        self.stamp += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (s, _))| *s).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.stamp, value));
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Configuration for [`QueryEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads in the persistent pool (clamped to at least 1).
    pub threads: usize,
    /// Capacity of each result cache (full-score and top-k); `0` disables
    /// caching entirely.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_capacity: 1024,
        }
    }
}

/// One unit of work for the pool: answer `seed`, reply with `tag` so the
/// submitter can reassemble batch order.
struct Job {
    seed: usize,
    tag: usize,
    reply: Sender<(usize, Result<Arc<Vec<f64>>>)>,
}

/// Persistent concurrent query server over a preprocessed [`Bear`] index.
///
/// Workers are spawned once at construction and fed over a channel; each
/// owns a [`QueryWorkspace`], so steady-state queries allocate only their
/// result vector. Dropping the engine shuts the pool down cleanly.
///
/// ```
/// use std::sync::Arc;
/// use bear_core::{Bear, BearConfig};
/// use bear_core::engine::{EngineConfig, QueryEngine};
/// use bear_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]).unwrap();
/// let bear = Arc::new(Bear::new(&g, &BearConfig::default()).unwrap());
/// let engine = QueryEngine::new(Arc::clone(&bear), EngineConfig::default());
/// let scores = engine.query(0).unwrap();
/// assert_eq!(*scores, bear.query(0).unwrap()); // bit-identical
/// ```
pub struct QueryEngine {
    bear: Arc<Bear>,
    queue: Arc<JobQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Spare workspace for caller-assist: the thread submitting a batch
    /// borrows this to drain the job queue itself while waiting.
    caller_ws: Mutex<QueryWorkspace>,
    full_cache: Option<Mutex<FullScoreCache>>,
    topk_cache: Option<Mutex<TopKCache>>,
    metrics: Metrics,
}

/// Full score vectors keyed by seed.
type FullScoreCache = LruCache<usize, Arc<Vec<f64>>>;
/// Top-k answers keyed by `(seed, k)`.
type TopKCache = LruCache<(usize, usize), Arc<Vec<ScoredNode>>>;

impl QueryEngine {
    /// Spawns the worker pool and returns a ready-to-serve engine.
    pub fn new(bear: Arc<Bear>, config: EngineConfig) -> Self {
        let threads = config.threads.max(1);
        let queue = Arc::new(JobQueue::new());
        let workers = (0..threads)
            .map(|i| {
                let bear = Arc::clone(&bear);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("bear-query-{i}"))
                    .spawn(move || worker_loop(&bear, &queue))
                    .expect("spawn query worker")
            })
            .collect();
        let caches_on = config.cache_capacity > 0;
        QueryEngine {
            caller_ws: Mutex::new(QueryWorkspace::for_bear(&bear)),
            bear,
            queue,
            workers,
            full_cache: caches_on.then(|| Mutex::new(LruCache::new(config.cache_capacity))),
            topk_cache: caches_on.then(|| Mutex::new(LruCache::new(config.cache_capacity))),
            metrics: Metrics::new(),
        }
    }

    /// The index this engine serves.
    pub fn bear(&self) -> &Bear {
        &self.bear
    }

    /// Point-in-time serving metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Entries currently held in the full-score cache.
    pub fn cached_results(&self) -> usize {
        self.full_cache.as_ref().map_or(0, |c| c.lock().map_or(0, |c| c.len()))
    }

    fn check_seed(&self, seed: usize) -> Result<()> {
        let n = self.bear.num_nodes();
        if seed >= n {
            return Err(Error::IndexOutOfBounds { index: seed, bound: n });
        }
        Ok(())
    }

    /// Computes (or fetches) the full score vector for `seed`, without
    /// touching metrics. Returns `(scores, was_cache_hit)`.
    fn fetch_full(&self, seed: usize) -> Result<(Arc<Vec<f64>>, bool)> {
        if let Some(cache) = &self.full_cache {
            if let Some(hit) = cache.lock().ok().and_then(|mut c| c.get(&seed)) {
                return Ok((hit, true));
            }
        }
        let (reply_tx, reply_rx) = channel();
        self.queue.push(Job { seed, tag: 0, reply: reply_tx })?;
        // Caller-assist: if the spare workspace is free, answer a pending
        // job (usually the one just pushed) on this thread instead of
        // round-tripping through a worker.
        if let Ok(mut ws) = self.caller_ws.try_lock() {
            if let Some(job) = self.queue.try_pop() {
                run_job(&self.bear, &mut ws, job);
            }
        }
        let scores = recv_result(&reply_rx)?.1?;
        if let Some(cache) = &self.full_cache {
            if let Ok(mut c) = cache.lock() {
                c.insert(seed, Arc::clone(&scores));
            }
        }
        Ok((scores, false))
    }

    /// RWR scores of every node w.r.t. `seed` — bit-identical to
    /// [`Bear::query`], shared via `Arc` so cache hits allocate nothing.
    pub fn query(&self, seed: usize) -> Result<Arc<Vec<f64>>> {
        let start = Instant::now();
        self.check_seed(seed)?;
        let (scores, hit) = self.fetch_full(seed)?;
        self.metrics.record(hit, start.elapsed());
        Ok(scores)
    }

    /// The `k` most relevant nodes w.r.t. `seed` (seed excluded),
    /// identical to [`Bear::query_top_k`].
    pub fn query_top_k(&self, seed: usize, k: usize) -> Result<Arc<Vec<ScoredNode>>> {
        let start = Instant::now();
        self.check_seed(seed)?;
        if let Some(cache) = &self.topk_cache {
            if let Some(hit) = cache.lock().ok().and_then(|mut c| c.get(&(seed, k))) {
                self.metrics.record(true, start.elapsed());
                return Ok(hit);
            }
        }
        let (scores, hit) = self.fetch_full(seed)?;
        let top = Arc::new(top_k_excluding_seed(&scores, seed, k));
        if let Some(cache) = &self.topk_cache {
            if let Ok(mut c) = cache.lock() {
                c.insert((seed, k), Arc::clone(&top));
            }
        }
        self.metrics.record(hit, start.elapsed());
        Ok(top)
    }

    /// Answers many single-seed queries on the persistent pool. Results
    /// are in seed order and bit-identical to sequential [`Bear::query`].
    ///
    /// All seeds are validated before any work is dispatched, so an
    /// invalid seed fails fast and names the offender; a worker panic
    /// surfaces as an error on the affected seed instead of aborting the
    /// process.
    pub fn query_batch(&self, seeds: &[usize]) -> Result<Vec<Arc<Vec<f64>>>> {
        for &seed in seeds {
            self.check_seed(seed)?;
        }
        let start = Instant::now();
        let mut slots: Vec<Option<Arc<Vec<f64>>>> = vec![None; seeds.len()];
        let (reply_tx, reply_rx) = channel();
        let mut outstanding = 0usize;
        for (tag, &seed) in seeds.iter().enumerate() {
            let cached = self
                .full_cache
                .as_ref()
                .and_then(|cache| cache.lock().ok().and_then(|mut c| c.get(&seed)));
            match cached {
                Some(hit) => {
                    slots[tag] = Some(hit);
                    self.metrics.record(true, start.elapsed());
                }
                None => {
                    self.queue.push(Job { seed, tag, reply: reply_tx.clone() })?;
                    outstanding += 1;
                }
            }
        }
        drop(reply_tx);
        // Caller-assist: while replies are pending, this thread drains the
        // job queue with the engine's spare workspace instead of blocking.
        // On a small pool (or single core) the whole batch runs inline
        // with no thread ping-pong; on a big pool it adds one worker.
        let mut caller_ws = self.caller_ws.try_lock().ok();
        let mut collected = 0usize;
        while collected < outstanding {
            match reply_rx.try_recv() {
                Ok((tag, result)) => {
                    self.store_batch_result(seeds, &mut slots, tag, result, start)?;
                    collected += 1;
                    continue;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    return Err(Error::InvalidStructure(
                        "query worker disconnected before replying".into(),
                    ));
                }
            }
            if let Some(ws) = caller_ws.as_deref_mut() {
                if let Some(job) = self.queue.try_pop() {
                    run_job(&self.bear, ws, job);
                    continue;
                }
            }
            // Nothing left to steal: block until a worker finishes.
            let (tag, result) = recv_result(&reply_rx)?;
            self.store_batch_result(seeds, &mut slots, tag, result, start)?;
            collected += 1;
        }
        Ok(slots.into_iter().map(|s| s.expect("every slot filled")).collect())
    }

    /// Caches, stores, and accounts one computed batch result.
    fn store_batch_result(
        &self,
        seeds: &[usize],
        slots: &mut [Option<Arc<Vec<f64>>>],
        tag: usize,
        result: Result<Arc<Vec<f64>>>,
        start: Instant,
    ) -> Result<()> {
        let scores = result?;
        if let Some(cache) = &self.full_cache {
            if let Ok(mut c) = cache.lock() {
                c.insert(seeds[tag], Arc::clone(&scores));
            }
        }
        slots[tag] = Some(scores);
        self.metrics.record(false, start.elapsed());
        Ok(())
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        // Closing the queue ends every worker's pop loop.
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn recv_result(
    rx: &Receiver<(usize, Result<Arc<Vec<f64>>>)>,
) -> Result<(usize, Result<Arc<Vec<f64>>>)> {
    rx.recv()
        .map_err(|_| Error::InvalidStructure("query worker disconnected before replying".into()))
}

/// Worker body: pull jobs until the queue closes.
fn worker_loop(bear: &Bear, queue: &JobQueue<Job>) {
    let mut ws = QueryWorkspace::for_bear(bear);
    while let Some(job) = queue.pop() {
        run_job(bear, &mut ws, job);
    }
}

/// Answers one job with the given workspace — the freshly allocated
/// result vector is the single allocation per query — converting panics
/// into errors so the pool (and assisting callers) survive poisoned
/// inputs. Shared by pool workers and caller-assist.
fn run_job(bear: &Bear, ws: &mut QueryWorkspace, job: Job) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut result = vec![0.0; bear.num_nodes()];
        bear.query_into(job.seed, ws, &mut result)?;
        Ok(Arc::new(result))
    }))
    .unwrap_or_else(|_| {
        Err(Error::InvalidStructure(format!("query worker panicked answering seed {}", job.seed)))
    });
    // A receiver that hung up no longer wants the answer; ignore.
    let _ = job.reply.send((job.tag, outcome));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::BearConfig;
    use bear_graph::Graph;
    use std::time::Duration;

    fn test_bear(n: usize) -> Arc<Bear> {
        // Hub-spoke graph with a little extra structure.
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push((0, v));
            edges.push((v, 0));
        }
        for v in (1..n.saturating_sub(1)).step_by(3) {
            edges.push((v, v + 1));
            edges.push((v + 1, v));
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        Arc::new(Bear::new(&g, &BearConfig::exact(0.15)).unwrap())
    }

    #[test]
    fn engine_matches_sequential_query_bitwise() {
        let bear = test_bear(30);
        let engine =
            QueryEngine::new(Arc::clone(&bear), EngineConfig { threads: 4, cache_capacity: 0 });
        for seed in 0..30 {
            let want = bear.query(seed).unwrap();
            let got = engine.query(seed).unwrap();
            assert_eq!(*got, want, "seed {seed}");
        }
    }

    #[test]
    fn engine_batch_matches_sequential_in_order() {
        let bear = test_bear(25);
        let engine =
            QueryEngine::new(Arc::clone(&bear), EngineConfig { threads: 3, cache_capacity: 32 });
        let seeds: Vec<usize> = (0..25).rev().collect();
        let want: Vec<Vec<f64>> = seeds.iter().map(|&s| bear.query(s).unwrap()).collect();
        let got = engine.query_batch(&seeds).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(**g, *w);
        }
        // Second pass is served from cache and stays bit-identical.
        let again = engine.query_batch(&seeds).unwrap();
        for (g, w) in again.iter().zip(&want) {
            assert_eq!(**g, *w);
        }
        assert!(engine.metrics().cache_hits >= seeds.len() as u64);
    }

    #[test]
    fn engine_validates_batch_seeds_upfront() {
        let bear = test_bear(10);
        let engine = QueryEngine::new(bear, EngineConfig { threads: 2, cache_capacity: 4 });
        let before = engine.metrics().queries;
        let err = engine.query_batch(&[0, 3, 99, 5]).unwrap_err();
        assert_eq!(err, Error::IndexOutOfBounds { index: 99, bound: 10 });
        // Nothing was dispatched: no query was counted.
        assert_eq!(engine.metrics().queries, before);
    }

    #[test]
    fn cache_hit_returns_identical_scores_and_counts() {
        let bear = test_bear(12);
        let engine =
            QueryEngine::new(Arc::clone(&bear), EngineConfig { threads: 2, cache_capacity: 16 });
        let first = engine.query(3).unwrap();
        let second = engine.query(3).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit shares the cached Arc");
        assert_eq!(*first, bear.query(3).unwrap());
        let m = engine.metrics();
        assert_eq!(m.queries, 2);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert!((m.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_k_matches_bear_and_caches() {
        let bear = test_bear(15);
        let engine =
            QueryEngine::new(Arc::clone(&bear), EngineConfig { threads: 2, cache_capacity: 16 });
        let want = bear.query_top_k(2, 5).unwrap();
        let got = engine.query_top_k(2, 5).unwrap();
        assert_eq!(*got, want);
        let again = engine.query_top_k(2, 5).unwrap();
        assert!(Arc::ptr_eq(&got, &again));
    }

    #[test]
    fn metrics_percentiles_populate() {
        let bear = test_bear(10);
        let engine = QueryEngine::new(bear, EngineConfig { threads: 2, cache_capacity: 0 });
        for seed in 0..10 {
            engine.query(seed).unwrap();
        }
        let m = engine.metrics();
        assert_eq!(m.queries, 10);
        assert_eq!(m.cache_misses, 10);
        assert!(m.p50 > Duration::ZERO);
        assert!(m.p95 >= m.p50);
        assert!(m.p99 >= m.p95);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let bear = test_bear(8);
        let engine = QueryEngine::new(bear, EngineConfig { threads: 1, cache_capacity: 0 });
        engine.query(1).unwrap();
        engine.query(1).unwrap();
        assert_eq!(engine.metrics().cache_hits, 0);
        assert_eq!(engine.cached_results(), 0);
    }

    #[test]
    fn lru_cache_evicts_least_recently_used() {
        let mut cache: LruCache<usize, usize> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10)); // refresh 1
        cache.insert(3, 30); // evicts 2
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.len(), 2);
    }
}
