//! Degraded-mode solver: bounded-iteration power method.
//!
//! The serving engine's degradation ladder needs an answer path that is
//! independent of the precomputed BEAR index: when the index fails
//! validation at load, a worker panics on a seed, or a query blows its
//! deadline budget, the service should return a *usable ranking* rather
//! than an error. The paper frames BEAR-Approx as a deliberate
//! accuracy-for-resources trade (§4.3); this module is the runtime
//! version of that trade — the definitional iterative RWR (Equation 3)
//! run for a bounded number of iterations, tagged with the reason for
//! degradation and an estimated residual so callers can judge the
//! answer's quality.
//!
//! The iteration `r ← (1−c) Ãᵀ r + c q` contracts in L1 with factor
//! `1 − c`, so after `k` steps the distance to the fixed point is at most
//! `‖r⁽ᵏ⁾ − r⁽ᵏ⁻¹⁾‖₁ · (1−c) / c` — the residual bound reported in
//! [`FallbackAnswer::error_bound`]. A few dozen iterations already give
//! top-k rankings that agree closely with the exact answer (the
//! fault-injection suite pins top-10 overlap ≥ 0.9).

use crate::metrics::l1_diff;
use crate::rwr::{normalized_adjacency, validate_distribution, RwrConfig};
use bear_graph::Graph;
use bear_sparse::{CsrMatrix, Error, Result};

/// Why a query was answered by the degraded path instead of the exact
/// BEAR index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// The query exceeded its deadline budget before the exact answer
    /// arrived.
    DeadlineExceeded,
    /// A worker panicked while computing the exact answer.
    WorkerPanicked,
    /// Admission control rejected the query (queue at capacity).
    QueueFull,
    /// The precomputed index was unavailable (failed validation at load
    /// or the pool is shut down).
    IndexUnavailable,
}

impl std::fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DegradedReason::DeadlineExceeded => "deadline exceeded",
            DegradedReason::WorkerPanicked => "worker panicked",
            DegradedReason::QueueFull => "queue full",
            DegradedReason::IndexUnavailable => "index unavailable",
        };
        f.write_str(s)
    }
}

/// One bounded-iteration power-method answer with its accuracy estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackAnswer {
    /// RWR scores of every node w.r.t. the seed.
    pub scores: Vec<f64>,
    /// L1 change of the final iteration, `‖r⁽ᵏ⁾ − r⁽ᵏ⁻¹⁾‖₁`.
    pub residual: f64,
    /// Iterations actually performed (≤ the configured cap; fewer when
    /// the iteration converged early).
    pub iterations: usize,
    /// Restart probability, kept so [`FallbackAnswer::error_bound`] can
    /// be computed without the solver at hand.
    c: f64,
}

impl FallbackAnswer {
    /// Upper bound on `‖r* − r⁽ᵏ⁾‖₁`, from the contraction factor
    /// `1 − c` of the power iteration.
    pub fn error_bound(&self) -> f64 {
        self.residual * (1.0 - self.c) / self.c
    }
}

/// Bounded-iteration power-method RWR solver, independent of any
/// precomputed index. Construction costs one adjacency normalization and
/// transpose; each answer costs `iterations` sparse matvecs.
#[derive(Debug, Clone)]
pub struct FallbackSolver {
    /// `Ãᵀ`; the iteration scales its matvec by `1−c` in place.
    at: CsrMatrix,
    c: f64,
    max_iterations: usize,
}

/// Default iteration cap: with the paper's `c = 0.05` this bounds the L1
/// error by `(1−c)^64 ≈ 0.037`, and rankings stabilize much earlier.
pub const DEFAULT_FALLBACK_ITERATIONS: usize = 64;

impl FallbackSolver {
    /// Prepares the fallback path for `g`. `max_iterations` is the hard
    /// per-query budget (must be ≥ 1).
    pub fn new(g: &Graph, rwr: &RwrConfig, max_iterations: usize) -> Result<Self> {
        rwr.validate()?;
        if max_iterations == 0 {
            return Err(Error::InvalidConfig {
                param: "max_iterations",
                reason: "fallback iteration budget must be at least 1".into(),
            });
        }
        let at = normalized_adjacency(g, rwr).transpose();
        Ok(FallbackSolver { at, c: rwr.c, max_iterations })
    }

    /// Number of nodes served.
    pub fn num_nodes(&self) -> usize {
        self.at.nrows()
    }

    /// The configured per-query iteration budget.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Answers `seed` with at most the configured iteration budget.
    /// Unlike the exact solvers this *never* fails on budget exhaustion —
    /// a bounded-accuracy answer is the whole point — only on an invalid
    /// seed.
    pub fn solve(&self, seed: usize) -> Result<FallbackAnswer> {
        let n = self.at.nrows();
        if seed >= n {
            return Err(Error::IndexOutOfBounds { index: seed, bound: n });
        }
        let mut q = vec![0.0; n];
        q[seed] = 1.0;
        self.solve_distribution(&q)
    }

    /// [`FallbackSolver::solve`] for an arbitrary preference
    /// distribution.
    pub fn solve_distribution(&self, q: &[f64]) -> Result<FallbackAnswer> {
        let n = self.at.nrows();
        if q.len() != n {
            return Err(Error::DimensionMismatch {
                op: "fallback query",
                lhs: (n, 1),
                rhs: (q.len(), 1),
            });
        }
        validate_distribution(q)?;
        // Early-exit tolerance: iterating past machine precision is
        // wasted budget.
        const EPSILON: f64 = 1e-12;
        let mut r = q.to_vec();
        let mut residual = f64::INFINITY;
        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            // r' = (1-c) Ãᵀ r + c q
            let mut next = self.at.matvec(&r)?;
            for (nv, &qv) in next.iter_mut().zip(q) {
                *nv = (1.0 - self.c) * *nv + self.c * qv;
            }
            residual = l1_diff(&next, &r);
            r = next;
            iterations += 1;
            if residual < EPSILON {
                break;
            }
        }
        Ok(FallbackAnswer { scores: r, residual, iterations, c: self.c })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::{Bear, BearConfig};
    use crate::topk::top_k_excluding_seed;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    fn hub_spoke(n: usize) -> Graph {
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push((0, v));
        }
        for v in (1..n.saturating_sub(1)).step_by(3) {
            edges.push((v, v + 1));
        }
        undirected(n, &edges)
    }

    #[test]
    fn converges_toward_exact_bear_answer() {
        let g = hub_spoke(20);
        let rwr = RwrConfig { c: 0.15, ..RwrConfig::default() };
        let bear = Bear::new(&g, &BearConfig { rwr, ..BearConfig::default() }).unwrap();
        let fb = FallbackSolver::new(&g, &rwr, 500).unwrap();
        for seed in [0, 3, 11] {
            let exact = bear.query(seed).unwrap();
            let ans = fb.solve(seed).unwrap();
            let l1: f64 = exact.iter().zip(&ans.scores).map(|(a, b)| (a - b).abs()).sum();
            assert!(l1 <= ans.error_bound() + 1e-9, "seed {seed}: {l1} > {}", ans.error_bound());
            assert!(l1 < 1e-8, "seed {seed}: l1 = {l1}");
        }
    }

    /// Acceptance criterion: degraded answers agree with the exact BEAR
    /// answer on top-10 overlap ≥ 0.9 on the test graphs, with the
    /// residual bound reported alongside.
    #[test]
    fn bounded_budget_top10_overlap_at_least_090() {
        for (name, g) in [
            ("hub_spoke", hub_spoke(40)),
            ("two_caves", {
                undirected(
                    12,
                    &[
                        (0, 1),
                        (1, 2),
                        (2, 0),
                        (0, 3),
                        (3, 4),
                        (4, 5),
                        (5, 3),
                        (0, 6),
                        (6, 7),
                        (7, 8),
                        (8, 6),
                        (8, 9),
                        (9, 10),
                        (10, 11),
                    ],
                )
            }),
        ] {
            let rwr = RwrConfig::default(); // paper's c = 0.05
            let bear = Bear::new(&g, &BearConfig { rwr, ..BearConfig::default() }).unwrap();
            let fb = FallbackSolver::new(&g, &rwr, DEFAULT_FALLBACK_ITERATIONS).unwrap();
            for seed in 0..g.num_nodes().min(8) {
                let exact = bear.query(seed).unwrap();
                let ans = fb.solve(seed).unwrap();
                assert!(ans.residual.is_finite() && ans.residual >= 0.0);
                assert!(ans.iterations <= DEFAULT_FALLBACK_ITERATIONS);
                let want = top_k_excluding_seed(&exact, seed, 10);
                let got: Vec<usize> = top_k_excluding_seed(&ans.scores, seed, 10)
                    .into_iter()
                    .map(|s| s.node)
                    .collect();
                // Tie-aware overlap: symmetric graphs score whole orbits
                // of nodes identically, so any node within a whisker of
                // the exact k-th score is a legitimate member of the
                // exact top-k.
                let cutoff = want.last().map_or(0.0, |s| s.score) - 1e-9;
                let overlap = got.iter().filter(|&&node| exact[node] >= cutoff).count();
                assert!(
                    overlap as f64 >= 0.9 * want.len() as f64,
                    "{name} seed {seed}: overlap {overlap}/{} (residual {}, bound {})",
                    want.len(),
                    ans.residual,
                    ans.error_bound()
                );
            }
        }
    }

    #[test]
    fn rejects_bad_inputs_and_configs() {
        let g = hub_spoke(6);
        let rwr = RwrConfig::default();
        assert_eq!(
            FallbackSolver::new(&g, &rwr, 0).unwrap_err(),
            Error::InvalidConfig {
                param: "max_iterations",
                reason: "fallback iteration budget must be at least 1".into(),
            }
        );
        let fb = FallbackSolver::new(&g, &rwr, 10).unwrap();
        assert_eq!(fb.num_nodes(), 6);
        assert_eq!(fb.max_iterations(), 10);
        assert!(fb.solve(6).is_err());
        assert!(fb.solve_distribution(&[1.0]).is_err());
        assert!(fb.solve_distribution(&[0.0; 6]).is_err());
    }

    #[test]
    fn tiny_budget_still_returns_a_ranking() {
        let g = hub_spoke(15);
        let fb = FallbackSolver::new(&g, &RwrConfig::default(), 1).unwrap();
        let ans = fb.solve(2).unwrap();
        assert_eq!(ans.iterations, 1);
        assert_eq!(ans.scores.len(), 15);
        assert!(ans.residual > 0.0);
        // One step preserves the distribution and leaves the seed its
        // restart mass; all probability sits on the seed's neighborhood.
        assert!((ans.scores.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(ans.scores[2] >= 0.05 - 1e-12);
        let (neighbors, _) = g.out_neighbors(2);
        for (node, &score) in ans.scores.iter().enumerate() {
            if score > 0.0 {
                assert!(node == 2 || neighbors.contains(&node), "unexpected mass at {node}");
            }
        }
    }
}
