//! Experiment harness for the BEAR reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §5 for the mapping); this library
//! holds the shared machinery: the method registry, per-dataset
//! parameters (the paper's Table 5), wall-clock measurement, result rows,
//! and table/JSON output.

pub mod cli;
pub mod experiments;
pub mod harness;
pub mod methods;
pub mod params;

pub use harness::{measure, ExperimentResult, ResultRow};
pub use methods::{build_method, exact_method_names, MethodSpec};
pub use params::{DatasetParams, DEFAULT_BUDGET_BYTES};
