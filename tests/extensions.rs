//! Integration tests for the production extensions: persistence, dynamic
//! updates, the iterative-hub variant, top-k queries, and multi-threaded
//! preprocessing — exercised together on registry datasets.

use bear_core::{Bear, BearConfig, BearHubIterative, DynamicBear, RwrSolver, UpdateKind};
use bear_datasets::small_suite;

#[test]
fn persisted_index_serves_identical_queries_across_datasets() {
    for spec in small_suite() {
        let g = spec.load();
        let bear = Bear::new(&g, &BearConfig::default()).unwrap();
        let path = std::env::temp_dir().join(format!("ext_persist_{}.idx", spec.name));
        bear.save(&path).unwrap();
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for seed in [0, g.num_nodes() / 2] {
            assert_eq!(bear.query(seed).unwrap(), loaded.query(seed).unwrap(), "{}", spec.name);
        }
        assert_eq!(bear.stats(), loaded.stats());
    }
}

#[test]
fn hub_iterative_parity_across_datasets() {
    for spec in small_suite() {
        let g = spec.load();
        let exact = Bear::new(&g, &BearConfig::default()).unwrap();
        let hub_iter = BearHubIterative::new(&g, &BearConfig::default()).unwrap();
        for seed in [1, g.num_nodes() - 1] {
            let re = exact.query(seed).unwrap();
            let ri = hub_iter.query(seed).unwrap();
            for (a, b) in re.iter().zip(&ri) {
                assert!((a - b).abs() < 1e-7, "{}: {a} vs {b}", spec.name);
            }
        }
    }
}

#[test]
fn hub_iterative_never_needs_more_memory_than_exact() {
    for spec in small_suite() {
        let g = spec.load();
        let exact = Bear::new(&g, &BearConfig::default()).unwrap();
        let hub_iter = BearHubIterative::new(&g, &BearConfig::default()).unwrap();
        // nnz(S) <= nnz(L2^-1) + nnz(U2^-1) always (the inverted factors
        // contain at least S's fill), so memory can only go down.
        assert!(
            hub_iter.memory_bytes() <= exact.memory_bytes(),
            "{}: {} > {}",
            spec.name,
            hub_iter.memory_bytes(),
            exact.memory_bytes()
        );
    }
}

#[test]
fn dynamic_updates_track_oracle_over_a_burst_of_insertions() {
    let g = small_suite()[0].load();
    let mut dynamic = DynamicBear::new(&g, &BearConfig::default()).unwrap();
    let n = g.num_nodes();
    let mut incremental = 0;
    let mut rebuilds = 0;
    for i in 0..6 {
        let u = (i * 131) % n;
        let v = (i * 977 + 11) % n;
        if u == v {
            continue;
        }
        match dynamic.insert_edge(u, v, 1.0).unwrap() {
            UpdateKind::IncrementalHub => incremental += 1,
            UpdateKind::FullRebuild => rebuilds += 1,
        }
    }
    assert_eq!(incremental + rebuilds, 6);
    let oracle = Bear::new(&dynamic.current_graph().unwrap(), &BearConfig::default()).unwrap();
    for seed in [0, n / 2] {
        let got = dynamic.query(seed).unwrap();
        let want = oracle.query(seed).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn top_k_is_consistent_with_full_query() {
    let g = small_suite()[1].load();
    let bear = Bear::new(&g, &BearConfig::default()).unwrap();
    let seed = 3;
    let scores = bear.query(seed).unwrap();
    let top = bear.query_top_k(seed, 15).unwrap();
    assert_eq!(top.len(), 15);
    // Descending and score-consistent.
    for w in top.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    for s in &top {
        assert_eq!(s.score, scores[s.node]);
        assert_ne!(s.node, seed);
    }
    // Nothing outside the top-k scores higher than its last member.
    let cutoff = top.last().unwrap().score;
    let better = (0..g.num_nodes()).filter(|&u| u != seed && scores[u] > cutoff).count();
    assert!(better <= 15);
}

#[test]
fn threaded_preprocessing_equals_serial_on_every_dataset() {
    for spec in small_suite() {
        let g = spec.load();
        let serial = Bear::new(&g, &BearConfig::default()).unwrap();
        let threaded = Bear::new(&g, &BearConfig { threads: 3, ..BearConfig::default() }).unwrap();
        assert_eq!(serial.stats(), threaded.stats(), "{}", spec.name);
        assert_eq!(serial.query(2).unwrap(), threaded.query(2).unwrap(), "{}", spec.name);
    }
}
