//! The RWR linear system: `H = I − (1−c) Ãᵀ` and its variants.

use bear_graph::Graph;
use bear_sparse::{ops, CsrMatrix, Error, Result};

/// How the adjacency matrix is normalized before building `H`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Row normalization `Ã` — standard RWR / personalized PageRank.
    #[default]
    Row,
    /// Symmetric normalization `D^{-1/2} A D^{-1/2}` — the
    /// normalized-graph-Laplacian variant of Tong et al. (Section 3.4).
    Symmetric,
}

/// Shared RWR configuration: restart probability and normalization.
#[derive(Debug, Clone, Copy)]
pub struct RwrConfig {
    /// Restart probability `c ∈ (0, 1)`. The paper's experiments use 0.05
    /// ("in this work, c denotes 1 − restart probability" — i.e. their
    /// walk follows edges with probability 0.95).
    pub c: f64,
    /// Adjacency normalization.
    pub normalization: Normalization,
}

impl Default for RwrConfig {
    fn default() -> Self {
        RwrConfig { c: 0.05, normalization: Normalization::Row }
    }
}

impl RwrConfig {
    /// Validates `0 < c < 1`.
    pub fn validate(&self) -> Result<()> {
        if !(self.c > 0.0 && self.c < 1.0) {
            return Err(Error::InvalidStructure(format!(
                "restart probability c = {} outside (0, 1)",
                self.c
            )));
        }
        Ok(())
    }
}

/// Returns the normalized adjacency matrix selected by the config.
pub fn normalized_adjacency(g: &Graph, config: &RwrConfig) -> CsrMatrix {
    match config.normalization {
        Normalization::Row => g.row_normalized(),
        Normalization::Symmetric => g.symmetric_normalized(),
    }
}

/// Builds `H = I − (1−c) Ãᵀ` (Equation 2 of the paper).
pub fn build_h(g: &Graph, config: &RwrConfig) -> Result<CsrMatrix> {
    config.validate()?;
    let a = normalized_adjacency(g, config);
    let at = a.transpose();
    let identity = CsrMatrix::identity(g.num_nodes());
    ops::axpby(1.0, &identity, -(1.0 - config.c), &at)
}

/// Builds the one-hot starting vector for `seed`.
pub fn one_hot(n: usize, seed: usize) -> Result<Vec<f64>> {
    if seed >= n {
        return Err(Error::IndexOutOfBounds { index: seed, bound: n });
    }
    let mut q = vec![0.0; n];
    q[seed] = 1.0;
    Ok(q)
}

/// Validates a PPR preference distribution: non-negative, finite, and not
/// all zero (it is conventionally normalized to sum 1, but any positive
/// scale is accepted since RWR is linear in `q`).
pub fn validate_distribution(q: &[f64]) -> Result<()> {
    if q.iter().any(|&v| !v.is_finite() || v < 0.0) {
        return Err(Error::InvalidStructure(
            "preference vector has negative or non-finite entries".into(),
        ));
    }
    if q.iter().all(|&v| v == 0.0) {
        return Err(Error::InvalidStructure("preference vector is all zero".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn h_has_unit_diagonal_for_cycle() {
        let g = cycle();
        let h = build_h(&g, &RwrConfig::default()).unwrap();
        for i in 0..3 {
            assert!((h.get(i, i) - 1.0).abs() < 1e-12);
        }
        // Off-diagonal: -(1-c) * Ã^T entries.
        assert!((h.get(1, 0) + 0.95).abs() < 1e-12);
    }

    #[test]
    fn h_columns_are_diagonally_dominant() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]).unwrap();
        let h = build_h(&g, &RwrConfig::default()).unwrap();
        // Column sums of |off-diagonal| must be < diagonal (strict
        // dominance by columns, the basis for pivot-free LU).
        let ht = h.transpose();
        for j in 0..4 {
            let (cols, vals) = ht.row(j);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == j {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "column {j} not dominant: {diag} <= {off}");
        }
    }

    #[test]
    fn invalid_c_rejected() {
        let g = cycle();
        for c in [0.0, 1.0, -0.5, 1.5] {
            let cfg = RwrConfig { c, normalization: Normalization::Row };
            assert!(build_h(&g, &cfg).is_err());
        }
    }

    #[test]
    fn one_hot_basics() {
        let q = one_hot(4, 2).unwrap();
        assert_eq!(q, vec![0.0, 0.0, 1.0, 0.0]);
        assert!(one_hot(4, 4).is_err());
    }

    #[test]
    fn distribution_validation() {
        assert!(validate_distribution(&[0.5, 0.5]).is_ok());
        assert!(validate_distribution(&[0.0, 0.0]).is_err());
        assert!(validate_distribution(&[-0.1, 1.1]).is_err());
        assert!(validate_distribution(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn symmetric_normalization_builds_symmetric_h() {
        // Undirected path graph.
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let cfg = RwrConfig { c: 0.1, normalization: Normalization::Symmetric };
        let h = build_h(&g, &cfg).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((h.get(i, j) - h.get(j, i)).abs() < 1e-12);
            }
        }
    }
}
