//! Workspace automation library behind the `cargo xtask` binary.
//!
//! The binary's subprocess steps (fmt, clippy, loom, ...) live in
//! `main.rs`; this library holds the in-process analysis passes —
//! currently [`lint`], the repo-specific static analysis with a
//! ratcheting baseline — so the integration tests in `tests/` can drive
//! them against fixture trees directly.

pub mod lint;
