//! Reproduces **Figure 1(b)**: average query time of the exact methods
//! (plus the iterative method) over a spread of random seed nodes.
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig1b_query_time \
//!     [--datasets a,b] [--seeds N] [--budget-mb N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::exact_suite;
use bear_datasets::all_datasets;

fn main() {
    let args = Args::from_env();
    let default_names: Vec<String> = all_datasets().iter().map(|d| d.name.to_string()).collect();
    let defaults: Vec<&str> = default_names.iter().map(|s| s.as_str()).collect();
    let opts = CommonOpts::from_args(&args, &defaults);
    let result = exact_suite(
        "figure_1b",
        "query time of exact methods (mean over seeds)",
        &opts.datasets,
        opts.num_seeds,
        opts.budget_bytes,
    );
    result.print_table();
    if let Some(path) = &opts.json {
        result.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
