//! L5 fixture: one mapping that names every variant (true negative) and
//! one that hides a variant under `_` (true positive). Never compiled —
//! parsed by the lint tests only.

use super::error::Error;

/// True negative: every variant has an explicit arm.
pub fn full_map(e: &Error) -> i32 {
    match e {
        Error::Timeout => 3,
        Error::QueueFull { .. } => 4,
        Error::Invalid(_) => 1,
    }
}

/// True positive: `Invalid` falls through the `_` arm.
pub fn partial_map(e: &Error) -> i32 {
    match e {
        Error::Timeout => 3,
        Error::QueueFull { .. } => 4,
        _ => 1,
    }
}
