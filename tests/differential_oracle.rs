//! Differential-oracle suite: every query path in the workspace —
//! BEAR-Exact per-seed, the blocked multi-RHS kernels at several widths,
//! the scoped-thread batch path, and the LU / QR / iterative baselines —
//! is checked against one independent ground truth, dense matrix
//! inversion, within an L∞ tolerance of 1e-10.
//!
//! The panel runs on the paper-shape datasets (`small_suite`) plus
//! randomly generated SlashBurn-able hub-and-spoke graphs, so both the
//! structures the paper evaluates and adversarially random ones are
//! covered. A uniform restart probability of 0.2 keeps the iterative
//! method's contraction factor small enough that its converged answer
//! sits well inside the shared tolerance.

use bear_baselines::{Inversion, Iterative, IterativeConfig, LuDecomp, QrDecomp};
use bear_core::rwr::RwrConfig;
use bear_core::{Bear, BearConfig, BlockWorkspace, RwrSolver};
use bear_datasets::small_suite;
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use bear_graph::Graph;
use bear_sparse::mem::MemBudget;
use bear_sparse::DenseBlock;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared L∞ agreement tolerance for every solver on the panel.
const TOL: f64 = 1e-10;
/// Restart probability for the whole panel. Larger than the paper's
/// default 0.05 so the iterative method's geometric error (factor
/// `1 - c` per sweep) converges below [`TOL`] instead of stalling at it.
const C: f64 = 0.2;

fn linf(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Paper-shape datasets plus random SlashBurn-able graphs.
fn graph_panel() -> Vec<(String, Graph)> {
    let mut graphs: Vec<(String, Graph)> =
        small_suite().iter().map(|spec| (spec.name.to_string(), spec.load())).collect();
    for rng_seed in [7u64, 99, 1234] {
        let g = hub_and_spoke(
            &HubSpokeConfig {
                num_hubs: 4,
                num_caves: 14,
                max_cave_size: 9,
                cave_density: 0.4,
                hub_links: 2,
                hub_density: 0.5,
            },
            &mut StdRng::seed_from_u64(rng_seed),
        );
        graphs.push((format!("hub_spoke_rng{rng_seed}"), g));
    }
    graphs
}

#[test]
fn every_query_path_matches_the_dense_inversion_oracle() {
    for (name, g) in graph_panel() {
        let n = g.num_nodes();
        let rwr = RwrConfig { c: C, ..RwrConfig::default() };
        let budget = MemBudget::unlimited();
        let oracle = Inversion::new(&g, &rwr, &budget).expect("dense inversion oracle");
        let seeds: Vec<usize> = (0..8).map(|i| (i * 977) % n).collect();
        let truth: Vec<Vec<f64>> =
            seeds.iter().map(|&s| oracle.query(s).expect("oracle query")).collect();

        // Per-seed paths: BEAR exact and the three baselines.
        let bear = Bear::new(&g, &BearConfig::exact(C)).expect("bear");
        let solvers: Vec<(&str, Box<dyn RwrSolver>)> = vec![
            ("lu", Box::new(LuDecomp::new(&g, &rwr, &budget).unwrap())),
            ("qr", Box::new(QrDecomp::new(&g, &rwr, &budget).unwrap())),
            (
                "iterative",
                Box::new(
                    Iterative::new(
                        &g,
                        &IterativeConfig { rwr, epsilon: 1e-13, max_iterations: 100_000 },
                    )
                    .unwrap(),
                ),
            ),
        ];
        for (&seed, want) in seeds.iter().zip(&truth) {
            let r = bear.query(seed).unwrap();
            let err = linf(&r, want);
            assert!(err < TOL, "{name}: bear off oracle by {err:.3e} at seed {seed}");
            for (sname, solver) in &solvers {
                let r = solver.query(seed).unwrap();
                let err = linf(&r, want);
                assert!(err < TOL, "{name}: {sname} off oracle by {err:.3e} at seed {seed}");
            }
        }

        // Blocked multi-RHS path, one reused workspace across widths —
        // including widths that leave a remainder chunk.
        let mut ws = BlockWorkspace::for_bear(&bear);
        let mut out = DenseBlock::zeros(n, 0);
        for width in [1usize, 3, 8] {
            let mut offset = 0;
            for chunk in seeds.chunks(width) {
                out.reset(n, chunk.len());
                bear.query_block_into(chunk, &mut ws, &mut out).unwrap();
                for (j, want) in truth[offset..offset + chunk.len()].iter().enumerate() {
                    let err = linf(out.col(j), want);
                    assert!(
                        err < TOL,
                        "{name}: blocked width {width} off oracle by {err:.3e} at column {j}"
                    );
                }
                offset += chunk.len();
            }
        }

        // Scoped-thread batch path.
        let batch = bear.query_batch(&seeds, 2).unwrap();
        for (i, (got, want)) in batch.iter().zip(&truth).enumerate() {
            let err = linf(got, want);
            assert!(err < TOL, "{name}: query_batch off oracle by {err:.3e} at seed #{i}");
        }
    }
}
