//! QR-decomposition baseline (Fujiwara et al., KDD 2012): factor the
//! degree-reordered `H = QR` and store `Qᵀ` and `R⁻¹` for
//! `r = c R⁻¹ (Qᵀ q)`.
//!
//! The paper (citing Boyd & Vandenberghe) notes sparsity is hard to
//! exploit in QR: on most graphs `Qᵀ` and `R⁻¹` come out dense
//! (Figure 2(b,c)), which is why this baseline only scales to the
//! smallest datasets. Accordingly the kernel here is a dense Householder
//! QR, and the constructor refuses inputs whose `2·n²` dense footprint
//! exceeds the memory budget — reproducing the paper's OOM bars.

use bear_core::rwr::{build_h, validate_distribution, RwrConfig};
use bear_core::RwrSolver;
use bear_graph::Graph;
use bear_sparse::mem::{dense_bytes, MemBudget, MemoryUsage};
use bear_sparse::qr::DenseQr;
use bear_sparse::{DenseMatrix, Error, Permutation, Result};

/// Preprocessed QR-decomposition solver.
#[derive(Debug, Clone)]
pub struct QrDecomp {
    qt: DenseMatrix,
    r_inv: DenseMatrix,
    perm: Permutation,
    c: f64,
}

impl QrDecomp {
    /// Preprocesses `g` with Fujiwara's degree reordering followed by QR.
    pub fn new(g: &Graph, rwr: &RwrConfig, budget: &MemBudget) -> Result<Self> {
        rwr.validate()?;
        let n = g.num_nodes();
        // Qᵀ + R⁻¹ + factorization workspace: refuse before allocating.
        budget.check(dense_bytes(n, n).saturating_mul(3))?;

        // Degree reordering (ascending) — Fujiwara's rule for sparser
        // factors.
        let deg = g.undirected_degrees();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&u| (deg[u], u));
        let perm = Permutation::from_new_to_old(order)?;

        let h = perm.permute_symmetric(&build_h(g, rwr)?)?;
        let qr = DenseQr::factor(&h.to_dense())?;
        let r_inv = qr.r_inverse()?;
        Ok(QrDecomp { qt: qr.q.transpose(), r_inv, perm, c: rwr.c })
    }
}

impl RwrSolver for QrDecomp {
    fn name(&self) -> &'static str {
        "QR decomp."
    }

    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        let n = self.perm.len();
        if q.len() != n {
            return Err(Error::DimensionMismatch {
                op: "qr decomp query",
                lhs: (n, 1),
                rhs: (q.len(), 1),
            });
        }
        validate_distribution(q)?;
        let qp = self.perm.permute_vec(q)?;
        // r = c R⁻¹ (Qᵀ q)
        let t = self.qt.matvec(&qp)?;
        let mut r = self.r_inv.matvec(&t)?;
        for v in &mut r {
            *v *= self.c;
        }
        self.perm.unpermute_vec(&r)
    }

    fn num_nodes(&self) -> usize {
        self.perm.len()
    }

    fn memory_bytes(&self) -> usize {
        self.qt.memory_bytes() + self.r_inv.memory_bytes()
    }

    fn precomputed_nnz(&self) -> usize {
        2 * self.qt.nrows() * self.qt.ncols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_core::{Bear, BearConfig};

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    #[test]
    fn matches_bear_exact() {
        let g = undirected(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5), (5, 6)]);
        let qr = QrDecomp::new(&g, &RwrConfig::default(), &MemBudget::unlimited()).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        for seed in 0..7 {
            let rq = qr.query(seed).unwrap();
            let rb = bear.query(seed).unwrap();
            for (a, b) in rq.iter().zip(&rb) {
                assert!((a - b).abs() < 1e-9, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn budget_refused_before_allocation() {
        let g = undirected(200, &[(0, 1)]);
        assert!(matches!(
            QrDecomp::new(&g, &RwrConfig::default(), &MemBudget::bytes(1 << 10)),
            Err(Error::OutOfBudget { .. })
        ));
    }

    #[test]
    fn memory_is_two_dense_matrices() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let qr = QrDecomp::new(&g, &RwrConfig::default(), &MemBudget::unlimited()).unwrap();
        assert_eq!(qr.memory_bytes(), 2 * 25 * 8);
    }
}
