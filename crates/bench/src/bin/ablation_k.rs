//! Ablation (DESIGN.md §6): sensitivity of BEAR to SlashBurn's `k`
//! (hubs removed per iteration). The paper fixes `k = 0.001 n` as "a good
//! trade-off between running time and reordering quality"; this sweep
//! shows why, reporting `n₂`, `Σ n₁ᵢ²`, space, and timing across k/n.
//!
//! ```text
//! cargo run --release -p bear-bench --bin ablation_k \
//!     [--datasets a,b] [--seeds N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::load_dataset;
use bear_bench::harness::{mean_query_time, measure, ExperimentResult, ResultRow};
use bear_core::{Bear, BearConfig, RwrSolver};

fn main() {
    let args = Args::from_env();
    let opts = CommonOpts::from_args(&args, &["routing_like", "email_like"]);
    let mut out = ExperimentResult::new(
        "ablation_k",
        "BEAR-Exact vs SlashBurn k (hubs removed per iteration)",
    );
    println!(
        "{:<16} {:>9} {:>7} {:>12} {:>9} {:>11} {:>10}",
        "dataset", "k/n", "n2", "sum n1i^2", "pre(s)", "query(ms)", "mem(KB)"
    );
    for dataset in &opts.datasets {
        let g = load_dataset(dataset);
        let n = g.num_nodes();
        for ratio in [0.0005f64, 0.001, 0.005, 0.01, 0.05] {
            let k = ((n as f64 * ratio).ceil() as usize).max(1);
            let config = BearConfig { slashburn_k: Some(k), ..BearConfig::default() };
            let (bear, pre_s) = measure(|| Bear::new(&g, &config).expect("preprocess"));
            let st = bear.stats();
            let query_s = mean_query_time(&bear, opts.num_seeds);
            println!(
                "{:<16} {:>9} {:>7} {:>12} {:>9.3} {:>11.3} {:>10}",
                dataset,
                format!("{ratio}"),
                st.n2,
                st.sum_block_sq,
                pre_s,
                query_s * 1e3,
                bear.memory_bytes() / 1024
            );
            let mut row = ResultRow::new(dataset, "BEAR-Exact");
            row.param = Some(format!("k/n={ratio} n2={} sum_sq={}", st.n2, st.sum_block_sq));
            row.preprocess_s = Some(pre_s);
            row.query_s = Some(query_s);
            row.memory_bytes = Some(bear.memory_bytes());
            out.rows.push(row);
        }
    }
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
