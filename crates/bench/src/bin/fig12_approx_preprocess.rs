//! Reproduces **Figure 12** (Appendix E.2): preprocessing time of the
//! approximate methods (BEAR-Approx, B_LIN, NB_LIN). B_LIN fails on
//! datasets where its block inverses exceed the budget, matching the
//! paper's note that it cannot scale to Talk or Citation.
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig12_approx_preprocess \
//!     [--datasets a,b] [--budget-mb N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::load_dataset;
use bear_bench::harness::{measure, ExperimentResult, ResultRow};
use bear_bench::methods::{build_method, MethodSpec};
use bear_bench::params::params_for;
use bear_datasets::all_datasets;
use bear_sparse::mem::MemBudget;

fn main() {
    let args = Args::from_env();
    let default_names: Vec<String> = all_datasets().iter().map(|d| d.name.to_string()).collect();
    let defaults: Vec<&str> = default_names.iter().map(|s| s.as_str()).collect();
    let opts = CommonOpts::from_args(&args, &defaults);
    let budget = MemBudget::bytes(opts.budget_bytes);

    let mut out = ExperimentResult::new("figure_12", "preprocessing time of approximate methods");
    for dataset in &opts.datasets {
        let g = load_dataset(dataset);
        let params = params_for(dataset);
        let xi = (g.num_nodes() as f64).powf(-0.5);
        for spec in
            [MethodSpec::Bear { xi }, MethodSpec::BLin { xi: 0.0 }, MethodSpec::NbLin { xi: 0.0 }]
        {
            let mut row = ResultRow::new(dataset, &spec.display_name());
            let (built, pre_s) = measure(|| build_method(&spec, &g, &params, &budget));
            match built {
                Ok(solver) => {
                    row.preprocess_s = Some(pre_s);
                    row.memory_bytes = Some(solver.memory_bytes());
                }
                Err(e) => row.failed = Some(format!("{e}")),
            }
            out.rows.push(row);
        }
    }
    out.print_table();
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
