//! The inversion baseline: precompute the dense `H⁻¹` (Equation 4).
//!
//! Exact but hopelessly unscalable — `H⁻¹` is dense (Figure 2(a)), so the
//! method needs `n²` floats. The constructor refuses inputs whose dense
//! footprint exceeds the memory budget *before* allocating, reproducing
//! the paper's out-of-memory bars.

use bear_core::rwr::{build_h, validate_distribution, RwrConfig};
use bear_core::RwrSolver;
use bear_sparse::mem::{dense_bytes, MemBudget, MemoryUsage};
use bear_sparse::{DenseLu, DenseMatrix, Error, Result};

/// Preprocessed dense-inversion solver.
#[derive(Debug, Clone)]
pub struct Inversion {
    h_inv: DenseMatrix,
    c: f64,
}

impl Inversion {
    /// Computes `H⁻¹` for `g`, honouring the memory budget.
    pub fn new(g: &bear_graph::Graph, rwr: &RwrConfig, budget: &MemBudget) -> Result<Self> {
        rwr.validate()?;
        let n = g.num_nodes();
        // Refuse before allocating: the dense inverse plus the working
        // copy used by the factorization.
        budget.check(dense_bytes(n, n).saturating_mul(2))?;
        let h = build_h(g, rwr)?;
        let lu = DenseLu::factor(&h.to_dense())?;
        Ok(Inversion { h_inv: lu.inverse()?, c: rwr.c })
    }
}

impl RwrSolver for Inversion {
    fn name(&self) -> &'static str {
        "Inversion"
    }

    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        if q.len() != self.h_inv.nrows() {
            return Err(Error::DimensionMismatch {
                op: "inversion query",
                lhs: (self.h_inv.nrows(), 1),
                rhs: (q.len(), 1),
            });
        }
        validate_distribution(q)?;
        // r = c H⁻¹ q
        let mut r = self.h_inv.matvec(q)?;
        for v in &mut r {
            *v *= self.c;
        }
        Ok(r)
    }

    fn num_nodes(&self) -> usize {
        self.h_inv.nrows()
    }

    fn memory_bytes(&self) -> usize {
        self.h_inv.memory_bytes()
    }

    fn precomputed_nnz(&self) -> usize {
        self.h_inv.nrows() * self.h_inv.ncols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_core::{Bear, BearConfig};
    use bear_graph::Graph;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    #[test]
    fn matches_bear_exact() {
        let g = undirected(6, &[(0, 1), (0, 2), (2, 3), (3, 4), (0, 5)]);
        let inv = Inversion::new(&g, &RwrConfig::default(), &MemBudget::unlimited()).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        for seed in 0..6 {
            let ri = inv.query(seed).unwrap();
            let rb = bear.query(seed).unwrap();
            for (a, b) in ri.iter().zip(&rb) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn budget_refused_before_allocation() {
        let g = undirected(100, &[(0, 1)]);
        let tiny = MemBudget::bytes(1024);
        assert!(matches!(
            Inversion::new(&g, &RwrConfig::default(), &tiny),
            Err(Error::OutOfBudget { .. })
        ));
    }

    #[test]
    fn memory_is_dense_n_squared() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let inv = Inversion::new(&g, &RwrConfig::default(), &MemBudget::unlimited()).unwrap();
        assert_eq!(inv.memory_bytes(), 25 * 8);
    }
}
