//! Round-trip corruption tests for the persisted index.
//!
//! Each test saves a valid index, performs targeted byte surgery on one
//! payload field — producing a file that is *length-valid* (every frame
//! and length prefix still consistent) but violates a structural or
//! numerical invariant — and asserts that [`Bear::load`] rejects it with
//! [`Error::CorruptIndex`] under **default features**. This pins the
//! trust boundary: the loader must route every array through the
//! `try_from_parts` constructors rather than trusting bytes that merely
//! parse.
//!
//! The v2 format checksums every section and the whole file, so naive
//! surgery would be caught by the CRCs before the structural validators
//! ever ran. To keep exercising the deeper layer, each corrupted image
//! has its checksums *re-fixed* ([`fix_checksums`]) before loading —
//! simulating an adversarial or wrote-garbage-honestly artifact whose
//! integrity envelope is intact but whose content is wrong. (Checksum
//! violations themselves are covered by `crash_injection.rs`.)
//!
//! The byte walker below mirrors the `BEARIDX2` layout written by
//! `Bear::save`: magic(8), then ten framed sections
//! (`tag(4) len(8) payload crc(4)`) in order META, PERM, BSIZ, DEGS and
//! six matrices (`l1_inv`, `u1_inv`, `l2_inv`, `u2_inv` as CSC; `h12`,
//! `h21` as CSR — each `nrows(8) ncols(8)` + length-prefixed
//! indptr/indices/values), then the 20-byte trailer.

use bear_core::{crc32, Bear, BearConfig};
use bear_graph::Graph;
use bear_sparse::Error;
use std::path::PathBuf;

/// Trailer layout: magic (8) + whole-file crc32 (4) + file length (8).
const TRAILER_LEN: usize = 20;

/// Byte span of one length-prefixed array in the index file.
#[derive(Debug, Clone, Copy)]
struct ArraySpan {
    /// Offset of the first element (just past the 8-byte length).
    data: usize,
    /// Element count.
    len: usize,
}

impl ArraySpan {
    /// Byte offset of element `i`.
    fn elem(&self, i: usize) -> usize {
        assert!(i < self.len, "element {i} out of {}", self.len);
        self.data + 8 * i
    }
}

/// Byte spans of one serialized matrix.
#[derive(Debug, Clone, Copy)]
struct MatrixSpan {
    ncols: usize,
    indptr: ArraySpan,
    indices: ArraySpan,
    values: ArraySpan,
}

/// Parsed layout of a saved v2 index file.
struct Layout {
    /// Offset of the META payload (`n1(8) n2(8) c(8)`).
    meta: usize,
    perm: ArraySpan,
    block_sizes: ArraySpan,
    /// `l1_inv, u1_inv, l2_inv, u2_inv, h12, h21` in file order.
    matrices: [MatrixSpan; 6],
}

fn read_u64_at(bytes: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap())
}

fn write_u64_at(bytes: &mut [u8], pos: usize, v: u64) {
    bytes[pos..pos + 8].copy_from_slice(&v.to_le_bytes());
}

fn walk_array(bytes: &[u8], pos: &mut usize) -> ArraySpan {
    let len = read_u64_at(bytes, *pos) as usize;
    let span = ArraySpan { data: *pos + 8, len };
    *pos += 8 + 8 * len;
    span
}

/// `(payload offset, payload length)` for each of the ten v2 frames.
fn walk_frames(bytes: &[u8]) -> Vec<(usize, usize)> {
    assert_eq!(&bytes[..8], b"BEARIDX2");
    let trailer_off = bytes.len() - TRAILER_LEN;
    let mut pos = 8;
    let mut frames = Vec::new();
    while pos < trailer_off {
        let len = read_u64_at(bytes, pos + 4) as usize;
        frames.push((pos + 12, len));
        pos += 12 + len + 4;
    }
    assert_eq!(pos, trailer_off, "walker must consume every section exactly");
    frames
}

fn walk(bytes: &[u8]) -> Layout {
    let frames = walk_frames(bytes);
    assert_eq!(frames.len(), 10, "v2 file has ten sections");
    // Raw u64 sections carry no inner length prefix; the frame length is
    // the byte count.
    let raw = |f: (usize, usize)| ArraySpan { data: f.0, len: f.1 / 8 };
    let matrices = std::array::from_fn(|i| {
        let (off, _) = frames[4 + i];
        let ncols = read_u64_at(bytes, off + 8) as usize;
        let mut pos = off + 16; // nrows + ncols
        let indptr = walk_array(bytes, &mut pos);
        let indices = walk_array(bytes, &mut pos);
        let values = walk_array(bytes, &mut pos);
        MatrixSpan { ncols, indptr, indices, values }
    });
    Layout { meta: frames[0].0, perm: raw(frames[1]), block_sizes: raw(frames[2]), matrices }
}

/// Recomputes every section CRC and the trailer after payload surgery
/// (lengths unchanged), so the corruption reaches the structural
/// validators instead of bouncing off the checksums.
fn fix_checksums(bytes: &mut [u8]) {
    let trailer_off = bytes.len() - TRAILER_LEN;
    let mut pos = 8;
    while pos < trailer_off {
        let len = read_u64_at(bytes, pos + 4) as usize;
        let payload_end = pos + 12 + len;
        let crc = crc32::crc32(&bytes[pos + 12..payload_end]);
        bytes[payload_end..payload_end + 4].copy_from_slice(&crc.to_le_bytes());
        pos = payload_end + 4;
    }
    let file_crc = crc32::crc32(&bytes[..trailer_off]);
    bytes[trailer_off + 8..trailer_off + 12].copy_from_slice(&file_crc.to_le_bytes());
}

/// A star graph (hub 0) plus a chord: `h21` (hubs × spokes) gets a row
/// with many entries, so index-ordering corruptions have room to land.
fn saved_index(tag: &str) -> (Vec<u8>, PathBuf) {
    let mut edges = Vec::new();
    for v in 1..12 {
        edges.push((0, v));
        edges.push((v, 0));
    }
    edges.push((5, 6));
    edges.push((6, 5));
    let g = Graph::from_edges(12, &edges).unwrap();
    let bear = Bear::new(&g, &BearConfig::exact(0.15)).unwrap();
    let path = std::env::temp_dir().join(format!("bear_corrupt_{tag}.idx"));
    bear.save(&path).unwrap();
    (std::fs::read(&path).unwrap(), path)
}

/// Re-fixes checksums over the surgically corrupted bytes, writes them,
/// and asserts `Bear::load` rejects them with the corruption taxonomy.
fn assert_rejected(bytes: &[u8], path: &PathBuf, what: &str) -> Error {
    let mut fixed = bytes.to_vec();
    fix_checksums(&mut fixed);
    std::fs::write(path, &fixed).unwrap();
    let result = Bear::load(path);
    std::fs::remove_file(path).ok();
    match result {
        Ok(_) => panic!("corrupt index ({what}) was accepted"),
        Err(e) => {
            assert!(
                matches!(e, Error::CorruptIndex { .. }),
                "corrupt index ({what}) must fail typed, got: {e:?}"
            );
            e
        }
    }
}

/// The first matrix (in file order) with a multi-entry first compressed
/// segment whose leading indices are strictly increasing — guaranteed to
/// exist here because `h21`'s hub row spans every spoke.
fn multi_entry_matrix(bytes: &[u8], layout: &Layout) -> MatrixSpan {
    *layout
        .matrices
        .iter()
        .find(|m| {
            m.indices.len >= 2
                && read_u64_at(bytes, m.indptr.elem(1)) >= 2
                && read_u64_at(bytes, m.indices.elem(0)) < read_u64_at(bytes, m.indices.elem(1))
        })
        .expect("test graph yields a matrix with a sorted multi-entry segment")
}

#[test]
fn unsorted_indices_are_rejected() {
    let (mut bytes, path) = saved_index("unsorted");
    let layout = walk(&bytes);
    let m = multi_entry_matrix(&bytes, &layout);
    let (a, b) = (read_u64_at(&bytes, m.indices.elem(0)), read_u64_at(&bytes, m.indices.elem(1)));
    write_u64_at(&mut bytes, m.indices.elem(0), b);
    write_u64_at(&mut bytes, m.indices.elem(1), a);
    assert_rejected(&bytes, &path, "unsorted column indices");
}

#[test]
fn duplicate_indices_are_rejected() {
    let (mut bytes, path) = saved_index("duplicate");
    let layout = walk(&bytes);
    let m = multi_entry_matrix(&bytes, &layout);
    let first = read_u64_at(&bytes, m.indices.elem(0));
    write_u64_at(&mut bytes, m.indices.elem(1), first);
    assert_rejected(&bytes, &path, "duplicate indices in one segment");
}

#[test]
fn out_of_bounds_index_is_rejected() {
    let (mut bytes, path) = saved_index("oob_index");
    let layout = walk(&bytes);
    // h21 is CSR (last matrix): its indices are column ids < ncols.
    let m = layout.matrices[5];
    assert!(m.indices.len >= 1);
    write_u64_at(&mut bytes, m.indices.elem(0), m.ncols as u64);
    assert_rejected(&bytes, &path, "index beyond the inner dimension");
}

#[test]
fn broken_indptr_is_rejected() {
    let (mut bytes, path) = saved_index("indptr");
    let layout = walk(&bytes);
    let m = layout.matrices[4]; // h12
    let last = m.indptr.elem(m.indptr.len - 1);
    let v = read_u64_at(&bytes, last);
    write_u64_at(&mut bytes, last, v + 1);
    assert_rejected(&bytes, &path, "indptr not matching nnz");
}

#[test]
fn nan_value_is_rejected_with_typed_error() {
    let (mut bytes, path) = saved_index("nan");
    let layout = walk(&bytes);
    let m = layout.matrices[0]; // l1_inv: unit-diagonal inverse, nonempty
    assert!(m.values.len >= 1);
    bytes[m.values.elem(0)..m.values.elem(0) + 8].copy_from_slice(&f64::NAN.to_le_bytes());
    let err = assert_rejected(&bytes, &path, "NaN value payload");
    // The non-finite audit fires beneath the checksums and surfaces
    // through the corruption taxonomy naming the owning section.
    assert!(
        matches!(err, Error::CorruptIndex { section: "l1_inv", .. }),
        "want CorruptIndex for l1_inv, got: {err:?}"
    );
    assert!(format!("{err}").contains("non-finite"), "detail lost the root cause: {err}");
}

#[test]
fn infinite_value_is_rejected() {
    let (mut bytes, path) = saved_index("inf");
    let layout = walk(&bytes);
    let m = layout.matrices[2]; // l2_inv
    assert!(m.values.len >= 1);
    bytes[m.values.elem(0)..m.values.elem(0) + 8].copy_from_slice(&f64::INFINITY.to_le_bytes());
    let err = assert_rejected(&bytes, &path, "infinite value payload");
    assert!(format!("{err}").contains("non-finite"), "detail lost the root cause: {err}");
}

#[test]
fn non_bijective_permutation_is_rejected() {
    let (mut bytes, path) = saved_index("perm_dup");
    let layout = walk(&bytes);
    assert!(layout.perm.len >= 2);
    let first = read_u64_at(&bytes, layout.perm.elem(0));
    write_u64_at(&mut bytes, layout.perm.elem(1), first);
    assert_rejected(&bytes, &path, "duplicate permutation entry");
}

#[test]
fn out_of_bounds_permutation_is_rejected() {
    let (mut bytes, path) = saved_index("perm_oob");
    let layout = walk(&bytes);
    write_u64_at(&mut bytes, layout.perm.elem(0), layout.perm.len as u64);
    assert_rejected(&bytes, &path, "permutation entry beyond n");
}

#[test]
fn block_size_sum_mismatch_is_rejected() {
    let (mut bytes, path) = saved_index("blocks");
    let layout = walk(&bytes);
    assert!(layout.block_sizes.len >= 1, "partition has at least one block");
    let pos = layout.block_sizes.elem(0);
    let v = read_u64_at(&bytes, pos);
    write_u64_at(&mut bytes, pos, v + 1);
    let err = assert_rejected(&bytes, &path, "block sizes not summing to n1");
    assert!(format!("{err}").contains("dimensions"), "unexpected error: {err}");
}

/// Satellite regression: on-disk `u64` header dimensions near the top of
/// the range must fail typed everywhere. `n1`/`n2` are raw META payload
/// words (not length prefixes), so no bounded reader ever sees them;
/// before the checked conversions, `n1 + n2` overflowed (a panic in
/// debug builds, a wrapped bogus `n` in release) and on 32-bit targets
/// the `as usize` truncated them into valid-looking small values.
#[test]
fn huge_header_dimensions_are_rejected_not_overflowed() {
    for (tag, n1, n2) in [
        ("huge_both", u64::MAX, u64::MAX),
        ("huge_n1", u64::MAX, 2),
        ("huge_sum", u64::MAX / 2 + 1, u64::MAX / 2 + 1),
    ] {
        let (mut bytes, path) = saved_index(tag);
        let meta = walk(&bytes).meta;
        write_u64_at(&mut bytes, meta, n1);
        write_u64_at(&mut bytes, meta + 8, n2);
        let err = assert_rejected(&bytes, &path, "huge n1/n2 header");
        assert!(matches!(err, Error::CorruptIndex { .. }), "want typed error, got: {err:?}");
    }
}

/// Satellite regression: a huge element inside a `usize` array (here a
/// permutation entry at `u64::MAX`) must be rejected by the checked
/// conversion / validation path, never truncated by `as usize` into an
/// in-bounds id on narrower targets.
#[test]
fn huge_usize_array_element_is_rejected() {
    let (mut bytes, path) = saved_index("huge_elem");
    let layout = walk(&bytes);
    write_u64_at(&mut bytes, layout.perm.elem(0), u64::MAX);
    assert_rejected(&bytes, &path, "u64::MAX permutation entry");
}

#[test]
fn untouched_round_trip_still_loads() {
    // Control: the walker itself proves the layout assumption, and an
    // unmodified file still loads after all the hardening.
    let (bytes, path) = saved_index("control");
    std::fs::write(&path, &bytes).unwrap();
    let loaded = Bear::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.num_nodes(), 12);
}

// ---------------------------------------------------------------------------
// v3 shard surgery
// ---------------------------------------------------------------------------
//
// The sharded v3 layout wraps each spoke block in its own CRC frame
// (`SPKB tag(4) len(8) payload crc(4)`) before the resident region and a
// 28-byte trailer. As above, naive surgery bounces off the checksums, so
// [`fix_checksums_v3`] re-fixes the whole chain — segment frame CRC, the
// copy of it inside the `SDIR` directory, every resident section CRC,
// and the trailer's resident-region CRC — so the corruption reaches the
// segment *decoder*. Decoding is lazy (the load-time sweep only checks
// CRCs), so the contract under content corruption is: the load may
// succeed, but the first query touching the shard must fail with the
// typed `CorruptIndex` naming it — never a panic, never a wrong answer.

/// Trailer layout: magic (8) + region crc32 (4) + resident_off (8) +
/// total length (8).
const TRAILER_LEN_V3: usize = 28;

/// `(payload offset, payload length)` of every `SPKB` segment frame.
fn walk_segments_v3(bytes: &[u8]) -> Vec<(usize, usize)> {
    assert_eq!(&bytes[..8], b"BEARIDX3");
    let trailer_off = bytes.len() - TRAILER_LEN_V3;
    let resident_off = read_u64_at(bytes, trailer_off + 12) as usize;
    let mut pos = 8;
    let mut segments = Vec::new();
    while pos < resident_off {
        assert_eq!(&bytes[pos..pos + 4], b"SPKB", "segment walker off the rails");
        let len = read_u64_at(bytes, pos + 4) as usize;
        segments.push((pos + 12, len));
        pos += 12 + len + 4;
    }
    assert_eq!(pos, resident_off, "walker must consume every segment exactly");
    segments
}

/// Recomputes the full v3 checksum chain after payload surgery.
fn fix_checksums_v3(bytes: &mut [u8]) {
    let trailer_off = bytes.len() - TRAILER_LEN_V3;
    let resident_off = read_u64_at(bytes, trailer_off + 12) as usize;
    // Segment frames and their fresh CRCs, in block order.
    let segments = walk_segments_v3(bytes);
    let mut seg_crcs = Vec::with_capacity(segments.len());
    for &(payload, len) in &segments {
        let crc = crc32::crc32(&bytes[payload..payload + len]);
        bytes[payload + len..payload + len + 4].copy_from_slice(&crc.to_le_bytes());
        seg_crcs.push(crc);
    }
    // Resident sections: update the SDIR payload's crc column first,
    // then re-fix every section frame CRC.
    let mut pos = resident_off;
    while pos < trailer_off {
        let tag: [u8; 4] = bytes[pos..pos + 4].try_into().unwrap();
        let len = read_u64_at(bytes, pos + 4) as usize;
        let payload = pos + 12;
        if &tag == b"SDIR" {
            let count = read_u64_at(bytes, payload) as usize;
            assert_eq!(count, seg_crcs.len(), "directory count must match the segment walk");
            for (i, &crc) in seg_crcs.iter().enumerate() {
                // Entry: offset, frame_len, crc, block_dim, l1_nnz, u1_nnz.
                let entry = payload + 8 + i * 48;
                write_u64_at(bytes, entry + 16, u64::from(crc));
            }
        }
        let crc = crc32::crc32(&bytes[payload..payload + len]);
        bytes[payload + len..payload + len + 4].copy_from_slice(&crc.to_le_bytes());
        pos = payload + len + 4;
    }
    let region_crc = crc32::crc32(&bytes[resident_off..trailer_off]);
    bytes[trailer_off + 8..trailer_off + 12].copy_from_slice(&region_crc.to_le_bytes());
}

/// Same graph as [`saved_index`], persisted in the sharded v3 layout.
fn saved_index_v3(tag: &str) -> (Vec<u8>, PathBuf) {
    let mut edges = Vec::new();
    for v in 1..12 {
        edges.push((0, v));
        edges.push((v, 0));
    }
    edges.push((5, 6));
    edges.push((6, 5));
    let g = Graph::from_edges(12, &edges).unwrap();
    let bear = Bear::new(&g, &BearConfig::exact(0.15)).unwrap();
    let path = std::env::temp_dir().join(format!("bear_corrupt_v3_{tag}.idx"));
    bear.save_v3(&path).unwrap();
    (std::fs::read(&path).unwrap(), path)
}

/// Re-fixes the v3 checksum chain, writes the image, and asserts the
/// corruption surfaces typed — at load, or (lazy decode) at the first
/// query touching the shard. Returns the typed error for detail checks.
fn assert_v3_rejected(bytes: &[u8], path: &PathBuf, what: &str) -> Error {
    let mut fixed = bytes.to_vec();
    fix_checksums_v3(&mut fixed);
    std::fs::write(path, &fixed).unwrap();
    let result = Bear::load(path);
    let err = match result {
        Err(e) => {
            assert!(
                matches!(e, Error::CorruptIndex { .. }),
                "corrupt v3 index ({what}) must fail typed at load, got: {e:?}"
            );
            e
        }
        Ok(bear) => {
            // CRC-consistent content corruption is caught by the lazy
            // segment decoder: some query must fail typed; none may
            // panic or answer from the damaged shard.
            let mut first = None;
            for seed in 0..bear.num_nodes() {
                match bear.query(seed) {
                    Ok(_) => {}
                    Err(e @ Error::CorruptIndex { .. }) => {
                        first = Some(e);
                        break;
                    }
                    Err(e) => panic!("corrupt v3 shard ({what}) surfaced untyped: {e:?}"),
                }
            }
            first.unwrap_or_else(|| panic!("corrupt v3 index ({what}) was accepted end to end"))
        }
    };
    std::fs::remove_file(path).ok();
    err
}

#[test]
fn v3_segment_wrong_block_index_is_rejected() {
    let (mut bytes, path) = saved_index_v3("blockidx");
    let segments = walk_segments_v3(&bytes);
    // First payload word is the block index; claim block 0 is block 1.
    let (payload, _) = segments[0];
    write_u64_at(&mut bytes, payload, 1);
    let err = assert_v3_rejected(&bytes, &path, "segment block-index mismatch");
    assert!(
        matches!(err, Error::CorruptIndex { section: "spoke_segment", .. }),
        "want the shard section named, got: {err:?}"
    );
    assert!(format!("{err}").contains("shard 0"), "detail must name the shard: {err}");
}

#[test]
fn v3_segment_wrong_dimension_is_rejected() {
    let (mut bytes, path) = saved_index_v3("dim");
    let segments = walk_segments_v3(&bytes);
    // Second payload word is the block dimension; disagree with the
    // directory.
    let (payload, _) = segments[0];
    let dim = read_u64_at(&bytes, payload + 8);
    write_u64_at(&mut bytes, payload + 8, dim + 1);
    let err = assert_v3_rejected(&bytes, &path, "segment dimension mismatch");
    assert!(
        matches!(err, Error::CorruptIndex { section: "spoke_segment", .. }),
        "want the shard section named, got: {err:?}"
    );
}

#[test]
fn v3_segment_nan_value_is_rejected() {
    let (mut bytes, path) = saved_index_v3("nan");
    let segments = walk_segments_v3(&bytes);
    // Payload: block(8) dim(8), then l1 indptr/indices/values as
    // length-prefixed arrays; poison the first l1 value (the factor has
    // a unit diagonal, so at least one value exists per block).
    let (payload, _) = segments[0];
    let mut pos = payload + 16;
    let indptr_len = read_u64_at(&bytes, pos) as usize;
    pos += 8 + 8 * indptr_len;
    let indices_len = read_u64_at(&bytes, pos) as usize;
    pos += 8 + 8 * indices_len;
    let values_len = read_u64_at(&bytes, pos) as usize;
    assert!(values_len >= 1, "L1 inverse block must store its unit diagonal");
    bytes[pos + 8..pos + 16].copy_from_slice(&f64::NAN.to_le_bytes());
    let err = assert_v3_rejected(&bytes, &path, "NaN in a shard's values");
    assert!(format!("{err}").contains("non-finite"), "detail lost the root cause: {err}");
}

#[test]
fn v3_untouched_round_trip_still_loads_and_answers() {
    // Control: the v3 walker and checksum fixer are sound — a re-fixed
    // but unmodified image loads and pages correctly.
    let (mut bytes, path) = saved_index_v3("control");
    fix_checksums_v3(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    let loaded = Bear::load(&path).unwrap();
    assert_eq!(loaded.num_nodes(), 12);
    loaded.query(0).unwrap();
    std::fs::remove_file(&path).ok();
}
