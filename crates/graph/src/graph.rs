//! Directed weighted graph stored as a CSR adjacency matrix.

use bear_sparse::{CooMatrix, CsrMatrix, Error, Result};

/// A directed, weighted graph over nodes `0..n`.
///
/// ```
/// use bear_graph::Graph;
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// // Row-normalized adjacency: each non-empty row sums to 1.
/// let a = g.row_normalized();
/// assert_eq!(a.get(0, 1), 1.0);
/// ```
///
/// The adjacency matrix `A` has `A[u][v] = w` for each edge `u → v` of
/// weight `w`. Parallel edges are merged by summing weights at
/// construction. Self-loops are allowed (RWR handles them naturally).
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    adj: CsrMatrix,
}

impl Graph {
    /// Builds a graph from unweighted edges (each of weight 1).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let weighted: Vec<(usize, usize, f64)> = edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Graph::from_weighted_edges(n, &weighted)
    }

    /// Builds a graph from weighted edges. Parallel edges sum their weights.
    pub fn from_weighted_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut coo = CooMatrix::with_capacity(n, n, edges.len());
        for &(u, v, w) in edges {
            if u >= n {
                return Err(Error::IndexOutOfBounds { index: u, bound: n });
            }
            if v >= n {
                return Err(Error::IndexOutOfBounds { index: v, bound: n });
            }
            if !(w.is_finite()) || w < 0.0 {
                return Err(Error::InvalidStructure(format!(
                    "edge ({u}, {v}) has invalid weight {w}"
                )));
            }
            coo.push(u, v, w);
        }
        Ok(Graph { adj: coo.to_csr() })
    }

    /// Wraps an existing square adjacency matrix.
    pub fn from_adjacency(adj: CsrMatrix) -> Result<Self> {
        if adj.nrows() != adj.ncols() {
            return Err(Error::DimensionMismatch {
                op: "graph adjacency",
                lhs: (adj.nrows(), adj.ncols()),
                rhs: (adj.nrows(), adj.nrows()),
            });
        }
        if adj.values().iter().any(|&w| !w.is_finite() || w < 0.0) {
            return Err(Error::InvalidStructure(
                "adjacency contains negative or non-finite weights".into(),
            ));
        }
        Ok(Graph { adj })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.nrows()
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.nnz()
    }

    /// The adjacency matrix.
    #[inline]
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// Out-neighbors of `u` with edge weights.
    #[inline]
    pub fn out_neighbors(&self, u: usize) -> (&[usize], &[f64]) {
        self.adj.row(u)
    }

    /// Out-degree (count of out-edges) of `u`.
    #[inline]
    pub fn out_degree(&self, u: usize) -> usize {
        self.adj.row_nnz(u)
    }

    /// Out-degrees of all nodes.
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.num_nodes()).map(|u| self.out_degree(u)).collect()
    }

    /// In-degrees of all nodes (one pass over the edges).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes()];
        for &c in self.adj.indices() {
            deg[c] += 1;
        }
        deg
    }

    /// Undirected degrees: number of distinct neighbors over the
    /// symmetrized edge set. This is the degree notion SlashBurn uses.
    pub fn undirected_degrees(&self) -> Vec<usize> {
        let sym = self.symmetrized_pattern();
        (0..self.num_nodes()).map(|u| sym.row_nnz(u)).collect()
    }

    /// The symmetrized, unweighted adjacency pattern `A ∪ Aᵀ` with all
    /// weights 1 and self-loops removed — the undirected view SlashBurn
    /// and connected-components run on.
    pub fn symmetrized_pattern(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let mut coo = CooMatrix::with_capacity(n, n, 2 * self.num_edges());
        for (u, v, _) in self.adj.iter() {
            if u != v {
                coo.push(u, v, 1.0);
                coo.push(v, u, 1.0);
            }
        }
        // Duplicates collapse in to_csr; values may exceed 1 but only the
        // pattern matters, so clamp for cleanliness.
        let mut csr = coo.to_csr();
        for v in csr.values_mut() {
            *v = 1.0;
        }
        csr
    }

    /// The row-normalized adjacency matrix `Ã`: each nonzero row sums
    /// to 1. Rows with no out-edges (dangling nodes) are left all-zero,
    /// the standard convention for RWR.
    pub fn row_normalized(&self) -> CsrMatrix {
        let mut out = self.adj.clone();
        for r in 0..out.nrows() {
            let (lo, hi) = (out.indptr()[r], out.indptr()[r + 1]);
            let sum: f64 = out.values()[lo..hi].iter().sum();
            if sum > 0.0 {
                for v in &mut out.values_mut()[lo..hi] {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// The symmetric normalization `D^{-1/2} A D^{-1/2}` used by the
    /// normalized-graph-Laplacian RWR variant (Section 3.4), where `D` is
    /// the diagonal of row sums of `A`. Rows/columns with zero degree stay
    /// zero.
    pub fn symmetric_normalized(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let mut dsqrt_inv = vec![0.0f64; n];
        for (r, d) in dsqrt_inv.iter_mut().enumerate() {
            let (_, vals) = self.adj.row(r);
            let sum: f64 = vals.iter().sum();
            if sum > 0.0 {
                *d = 1.0 / sum.sqrt();
            }
        }
        let mut out = self.adj.clone();
        for r in 0..n {
            let (lo, hi) = (out.indptr()[r], out.indptr()[r + 1]);
            // Split borrows: copy indices range first.
            for k in lo..hi {
                let c = out.indices()[k];
                let scale = dsqrt_inv[r] * dsqrt_inv[c];
                out.values_mut()[k] *= scale;
            }
        }
        out
    }

    /// Lists all edges as `(u, v, w)`.
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        self.adj.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn parallel_edges_merge() {
        let g = Graph::from_weighted_edges(2, &[(0, 1, 1.0), (0, 1, 2.0)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.adjacency().get(0, 1), 3.0);
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(Graph::from_edges(2, &[(0, 5)]).is_err());
        assert!(Graph::from_weighted_edges(2, &[(0, 1, -1.0)]).is_err());
        assert!(Graph::from_weighted_edges(2, &[(0, 1, f64::NAN)]).is_err());
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let a = g.row_normalized();
        let (_, vals) = a.row(0);
        let sum: f64 = vals.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(a.get(0, 1), 0.5);
    }

    #[test]
    fn dangling_row_stays_zero() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let a = g.row_normalized();
        assert_eq!(a.row_nnz(1), 0);
        assert_eq!(a.row_nnz(2), 0);
    }

    #[test]
    fn weighted_normalization_respects_weights() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 3.0), (0, 2, 1.0)]).unwrap();
        let a = g.row_normalized();
        assert!((a.get(0, 1) - 0.75).abs() < 1e-12);
        assert!((a.get(0, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn symmetrized_pattern_is_symmetric_and_loopless() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 2), (3, 1)]).unwrap();
        let s = g.symmetrized_pattern();
        assert_eq!(s.get(1, 0), 1.0);
        assert_eq!(s.get(0, 1), 1.0);
        assert_eq!(s.get(1, 3), 1.0);
        assert_eq!(s.get(2, 2), 0.0); // self-loop removed
    }

    #[test]
    fn undirected_degrees_count_distinct_neighbors() {
        // 0 <-> 1 both directions should count once.
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        let d = g.undirected_degrees();
        assert_eq!(d, vec![1, 2, 1]);
    }

    #[test]
    fn symmetric_normalized_matches_formula() {
        // Undirected path 0 - 1 - 2 (as a symmetric directed graph).
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let s = g.symmetric_normalized();
        // d = [1, 2, 1]; entry (0,1) = 1/sqrt(1*2).
        assert!((s.get(0, 1) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
        assert!((s.get(1, 0) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn from_adjacency_requires_square() {
        let rect = CsrMatrix::zeros(2, 3);
        assert!(Graph::from_adjacency(rect).is_err());
    }
}
