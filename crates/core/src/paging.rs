//! Out-of-core paging of the block-diagonal spoke factors (DESIGN.md §18).
//!
//! BEAR's preprocessed index is dominated by `L₁⁻¹`/`U₁⁻¹`, the inverted
//! factors of the block-diagonal spoke matrix `H₁₁`. On large graphs
//! those factors outgrow RAM — which is exactly why approximate
//! successors (TPA, BePI) trade exactness for memory. This module keeps
//! the *exact* query path while letting the spoke factors live on disk:
//!
//! * the v3 index format (`persist.rs`) stores one framed, individually
//!   CRC'd **segment per diagonal block**, holding that block's
//!   `L₁⁻¹`/`U₁⁻¹` slices as block-local CSC matrices;
//! * [`BlockPager`] materializes segments lazily via a [`SegmentSource`]
//!   (`pread` on a file handle; plain `std`, no mmap dependency) into an
//!   LRU-evicted resident set capped by a byte budget;
//! * [`SpokeFactors`] is the dispatch point the query kernels run
//!   through: the `Resident` variant holds the familiar whole matrices,
//!   the `Paged` variant walks blocks through the pager.
//!
//! # Bit-identity
//!
//! The paged kernels are **bit-identical** to the resident ones, which
//! is what `tests/paging_identity.rs` proves exhaustively. The argument:
//! `CscMatrix::matvec_acc` visits columns in ascending order and skips
//! exact-zero inputs; because the factors are block diagonal, every
//! output element `y[r]` receives contributions only from columns inside
//! `r`'s block. Iterating blocks in ascending order and, within each
//! block, local columns in ascending order therefore replays the exact
//! same additions in the exact same order into every `y[r]` — including
//! the zero-input skip, so an untouched block can skip its *fetch*
//! entirely (the paging win: a one-hot seed touches one block in the
//! first sweep). The blocked multi-RHS kernel (`spmm_acc_inner`) and the
//! top-k scatter replicate their resident counterparts the same way.
//!
//! # Concurrency
//!
//! [`BlockPager`] is shared by all engine workers. Fetches take a single
//! mutex over the resident map; segment I/O and decoding happen
//! *outside* the lock, so concurrent misses on different blocks overlap.
//! Eviction removes entries from the map only — in-flight queries hold
//! `Arc`s, so a block evicted mid-query stays valid until the last user
//! drops it (forced mid-query eviction is exercised by the identity
//! suite with a one-block budget). Hit/miss/eviction counters are
//! atomics surfaced through [`PagerStats`] and the serving `/metrics`.

use bear_sparse::mem::{sparse_bytes, MemoryUsage};
use bear_sparse::{CscMatrix, DenseBlock, Error, Result};
use std::collections::HashMap;
use crate::sync::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frame tag of a spoke-block segment in a v3 image.
pub(crate) const SEGMENT_TAG: &[u8; 4] = b"SPKB";
/// Segment frame overhead: tag (4) + payload length (8) + payload crc (4).
pub(crate) const SEGMENT_FRAME_OVERHEAD: usize = 16;

pub(crate) fn corrupt_shard(shard: usize, detail: impl std::fmt::Display) -> Error {
    Error::CorruptIndex {
        section: "spoke_segment",
        detail: format!("shard {shard}: {detail}"),
    }
}

/// Which spoke factor a kernel applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Factor {
    /// `L₁⁻¹` — inverse unit-lower factor.
    L1,
    /// `U₁⁻¹` — inverse upper factor.
    U1,
}

/// One diagonal block's inverted factors, stored block-locally: both
/// matrices are `dim × dim` CSC with row indices rebased to the block.
#[derive(Debug, Clone)]
pub struct FactorPair {
    pub(crate) l1: CscMatrix,
    pub(crate) u1: CscMatrix,
}

impl FactorPair {
    /// Builds a pair from block-local factors, validating the shapes.
    pub(crate) fn new(l1: CscMatrix, u1: CscMatrix) -> Result<Self> {
        let dim = l1.nrows();
        if l1.ncols() != dim || u1.nrows() != dim || u1.ncols() != dim {
            return Err(Error::DimensionMismatch {
                op: "spoke factor pair",
                lhs: (l1.nrows(), l1.ncols()),
                rhs: (u1.nrows(), u1.ncols()),
            });
        }
        Ok(FactorPair { l1, u1 })
    }

    /// Block dimension.
    pub fn dim(&self) -> usize {
        self.l1.nrows()
    }

    fn factor(&self, f: Factor) -> &CscMatrix {
        match f {
            Factor::L1 => &self.l1,
            Factor::U1 => &self.u1,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.l1.memory_bytes() + self.u1.memory_bytes()
    }
}

/// Directory entry locating one spoke-block segment inside a v3 image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Absolute file offset of the segment frame (first tag byte).
    pub offset: u64,
    /// Whole frame length: tag + length + payload + crc.
    pub frame_len: u64,
    /// CRC32 of the payload (duplicated inside the frame itself).
    pub crc: u32,
    /// Block dimension; must match the index's `block_sizes` entry.
    pub block_dim: u64,
    /// Stored nonzeros of the block's `L₁⁻¹`.
    pub l1_nnz: u64,
    /// Stored nonzeros of the block's `U₁⁻¹`.
    pub u1_nnz: u64,
}

impl SegmentMeta {
    /// Logical (decoded) byte footprint of this segment's matrices.
    pub fn resident_bytes(&self) -> usize {
        let dim = usize::try_from(self.block_dim).unwrap_or(usize::MAX);
        let l1 = usize::try_from(self.l1_nnz).unwrap_or(usize::MAX);
        let u1 = usize::try_from(self.u1_nnz).unwrap_or(usize::MAX);
        sparse_bytes(dim, l1).saturating_add(sparse_bytes(dim, u1))
    }
}

// ---------------------------------------------------------------------------
// Segment codec
// ---------------------------------------------------------------------------

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_usize_array(out: &mut Vec<u8>, data: &[usize]) {
    push_u64(out, data.len() as u64);
    for &v in data {
        push_u64(out, v as u64);
    }
}

fn push_f64_array(out: &mut Vec<u8>, data: &[f64]) {
    push_u64(out, data.len() as u64);
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes one block's factors as a segment payload:
/// `block_index | block_dim | L₁⁻¹ arrays | U₁⁻¹ arrays` (each matrix as
/// length-prefixed `indptr | indices | values`; the dimension is the
/// block dimension on both axes).
pub(crate) fn encode_segment(block_index: usize, pair: &FactorPair) -> Vec<u8> {
    let cap = 16
        + 8 * (pair.l1.indptr().len() + pair.l1.indices().len() + pair.l1.values().len())
        + 8 * (pair.u1.indptr().len() + pair.u1.indices().len() + pair.u1.values().len())
        + 48;
    let mut out = Vec::with_capacity(cap);
    push_u64(&mut out, block_index as u64);
    push_u64(&mut out, pair.dim() as u64);
    for m in [&pair.l1, &pair.u1] {
        push_usize_array(&mut out, m.indptr());
        push_usize_array(&mut out, m.indices());
        push_f64_array(&mut out, m.values());
    }
    out
}

/// Bounds-checked cursor over a segment payload; every failure is a
/// typed `CorruptIndex { section: "spoke_segment", .. }` naming the
/// shard.
struct SegCursor<'a> {
    bytes: &'a [u8], // lint:allow(L1, slice type syntax, not an index expression)
    pos: usize,
    shard: usize,
}

impl<'a> SegCursor<'a> {
    // lint:allow(L1, slice type in the signature, not an index expression)
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end))
            .ok_or_else(|| {
                corrupt_shard(
                    self.shard,
                    format!(
                        "payload truncated: needed {n} bytes at offset {}, payload is {} bytes",
                        self.pos,
                        self.bytes.len()
                    ),
                )
            })?;
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Validates a length prefix against the remaining payload before
    /// any allocation (a corrupt prefix must not trigger a huge
    /// `Vec::with_capacity`).
    fn checked_len(&self, len: u64) -> Result<usize> {
        let bytes = len
            .checked_mul(8)
            .ok_or_else(|| corrupt_shard(self.shard, format!("corrupt length prefix {len}")))?;
        if bytes > (self.bytes.len() - self.pos) as u64 {
            return Err(corrupt_shard(
                self.shard,
                format!(
                    "corrupt length prefix {len}: needs {bytes} bytes but only {} remain",
                    self.bytes.len() - self.pos
                ),
            ));
        }
        usize::try_from(len)
            .map_err(|_| corrupt_shard(self.shard, format!("length {len} does not fit in usize")))
    }

    fn usize_array(&mut self) -> Result<Vec<usize>> {
        let raw = self.u64()?;
        let len = self.checked_len(raw)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let v = self.u64()?;
            out.push(usize::try_from(v).map_err(|_| {
                corrupt_shard(self.shard, format!("array element {v} does not fit in usize"))
            })?);
        }
        Ok(out)
    }

    fn f64_array(&mut self) -> Result<Vec<f64>> {
        let raw = self.u64()?;
        let len = self.checked_len(raw)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let b = self.take(8)?;
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            out.push(f64::from_le_bytes(a));
        }
        Ok(out)
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(corrupt_shard(
                self.shard,
                format!("{} unconsumed bytes at end of payload", self.bytes.len() - self.pos),
            ));
        }
        Ok(())
    }
}

/// Decodes a segment payload, running the full structural audit
/// (`try_from_parts`) on both matrices — a checksum-valid segment can
/// still have been written with broken structure or non-finite values.
pub(crate) fn decode_segment(
    payload: &[u8],
    expect_block: usize,
    expect_dim: usize,
) -> Result<FactorPair> {
    let mut cur = SegCursor { bytes: payload, pos: 0, shard: expect_block };
    let stored_block = cur.u64()?;
    if stored_block != expect_block as u64 {
        return Err(corrupt_shard(
            expect_block,
            format!("segment claims block index {stored_block}"),
        ));
    }
    let dim = cur.u64()?;
    if dim != expect_dim as u64 {
        return Err(corrupt_shard(
            expect_block,
            format!("segment block dimension {dim} does not match directory ({expect_dim})"),
        ));
    }
    let mut mats = Vec::with_capacity(2);
    for which in ["l1_inv", "u1_inv"] {
        let indptr = cur.usize_array()?;
        let indices = cur.usize_array()?;
        let values = cur.f64_array()?;
        let m = CscMatrix::try_from_parts(expect_dim, expect_dim, indptr, indices, values)
            .map_err(|e| corrupt_shard(expect_block, format!("{which}: {e}")))?;
        mats.push(m);
    }
    cur.finish()?;
    let (Some(u1), Some(l1)) = (mats.pop(), mats.pop()) else {
        return Err(corrupt_shard(expect_block, "segment decoded fewer than two matrices"));
    };
    FactorPair::new(l1, u1)
}

/// Slices the columns `[bs, be)` of a block-diagonal matrix into a
/// block-local CSC (row indices rebased to the block), rejecting
/// cross-block entries. Inverse of placing the block back at offset
/// `bs` via `block_diag_concat`.
pub(crate) fn split_block(m: &CscMatrix, bs: usize, be: usize) -> Result<CscMatrix> {
    if be < bs || be > m.ncols() {
        return Err(Error::InvalidStructure(format!(
            "block range [{bs}, {be}) out of bounds for {} columns",
            m.ncols()
        )));
    }
    let bdim = be - bs;
    let mut indptr = Vec::with_capacity(bdim + 1);
    indptr.push(0);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for c in bs..be {
        let (rows, vals) = m.col(c);
        for (&r, &v) in rows.iter().zip(vals) {
            if r < bs || r >= be {
                return Err(Error::InvalidStructure(format!(
                    "entry ({r}, {c}) crosses block boundary"
                )));
            }
            indices.push(r - bs);
            values.push(v);
        }
        indptr.push(indices.len());
    }
    CscMatrix::try_from_parts(bdim, bdim, indptr, indices, values)
}

// ---------------------------------------------------------------------------
// Segment sources
// ---------------------------------------------------------------------------

/// Positional reads over an immutable byte store — the only capability
/// the pager needs. Implemented with `pread` for files (no shared seek
/// cursor, so concurrent fetches never interleave) and by plain slicing
/// for in-memory images (tests).
pub trait SegmentSource: Send + Sync + std::fmt::Debug {
    /// Fills `buf` from `offset`; short reads are errors.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;
}

/// File-backed segment source.
#[derive(Debug)]
pub struct FileSource {
    #[cfg(unix)]
    file: std::fs::File,
    #[cfg(not(unix))]
    file: Mutex<std::fs::File>,
}

impl FileSource {
    /// Wraps an open file.
    pub fn new(file: std::fs::File) -> Self {
        #[cfg(unix)]
        {
            FileSource { file }
        }
        #[cfg(not(unix))]
        {
            FileSource { file: Mutex::new(file) }
        }
    }
}

fn read_err(e: std::io::Error) -> Error {
    Error::CorruptIndex {
        section: "spoke_segment",
        detail: format!("segment read failed: {e}"),
    }
}

impl SegmentSource for FileSource {
    #[cfg(unix)]
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset).map_err(read_err)
    }

    #[cfg(not(unix))]
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self
            .file
            .lock()
            .map_err(|_| Error::InvalidStructure("segment source lock poisoned".into()))?;
        file.seek(SeekFrom::Start(offset)).map_err(read_err)?;
        file.read_exact(buf).map_err(read_err)
    }
}

/// In-memory segment source (tests and benchmarks).
#[derive(Debug)]
pub struct MemSource(pub Vec<u8>);

impl SegmentSource for MemSource {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let start = usize::try_from(offset).map_err(|_| {
            Error::CorruptIndex {
                section: "spoke_segment",
                detail: format!("segment offset {offset} does not fit in usize"),
            }
        })?;
        let src = start
            .checked_add(buf.len())
            .and_then(|end| self.0.get(start..end))
            .ok_or_else(|| Error::CorruptIndex {
                section: "spoke_segment",
                detail: format!(
                    "segment read [{start}, +{}) beyond image of {} bytes",
                    buf.len(),
                    self.0.len()
                ),
            })?;
        buf.copy_from_slice(src);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The pager
// ---------------------------------------------------------------------------

/// Snapshot of the pager's counters and residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagerStats {
    /// Fetches answered from the resident set.
    pub hits: u64,
    /// Fetches that read and decoded a segment.
    pub misses: u64,
    /// Blocks evicted to stay under the budget.
    pub evictions: u64,
    /// Bytes currently held by the resident set.
    pub resident_bytes: u64,
    /// Blocks currently resident.
    pub resident_blocks: u64,
}

struct ResidentEntry {
    pair: Arc<FactorPair>,
    bytes: usize,
    last_used: u64,
}

struct ResidentSet {
    map: HashMap<usize, ResidentEntry>,
    bytes: usize,
    tick: u64,
    /// Byte cap on `bytes`; `None` is unlimited. A single block larger
    /// than the cap is still admitted (the query could not run
    /// otherwise) — it just evicts everything else.
    limit: Option<usize>,
}

struct PagerInner {
    source: Box<dyn SegmentSource>,
    dir: Vec<SegmentMeta>,
    /// Prefix sums of block dimensions (`len = blocks + 1`).
    starts: Vec<usize>,
    state: Mutex<ResidentSet>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PagerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagerInner")
            .field("blocks", &self.dir.len())
            .field("dim", &self.starts.last().copied().unwrap_or(0))
            .finish()
    }
}

/// LRU-evicted lazy loader of spoke-block segments, shared (cheap
/// `Clone`, one underlying cache) by every worker of an engine.
#[derive(Debug, Clone)]
pub struct BlockPager {
    inner: Arc<PagerInner>,
}

impl BlockPager {
    /// Builds a pager over `source` described by `dir`. `block_sizes`
    /// must match the directory's block dimensions; `budget_bytes` caps
    /// the resident set (`None` = unlimited).
    pub fn new(
        source: Box<dyn SegmentSource>,
        dir: Vec<SegmentMeta>,
        block_sizes: &[usize],
        budget_bytes: Option<usize>,
    ) -> Result<Self> {
        if dir.len() != block_sizes.len() {
            return Err(Error::CorruptIndex {
                section: "segment_directory",
                detail: format!(
                    "directory holds {} segments for {} blocks",
                    dir.len(),
                    block_sizes.len()
                ),
            });
        }
        let mut starts = Vec::with_capacity(block_sizes.len() + 1);
        let mut acc = 0usize;
        starts.push(0);
        for (b, (&sz, meta)) in block_sizes.iter().zip(&dir).enumerate() {
            if meta.block_dim != sz as u64 {
                return Err(Error::CorruptIndex {
                    section: "segment_directory",
                    detail: format!(
                        "shard {b}: directory dimension {} does not match block size {sz}",
                        meta.block_dim
                    ),
                });
            }
            acc = acc.checked_add(sz).ok_or_else(|| {
                Error::CorruptIndex {
                    section: "segment_directory",
                    detail: "block sizes overflow".into(),
                }
            })?;
            starts.push(acc);
        }
        Ok(BlockPager {
            inner: Arc::new(PagerInner {
                source,
                dir,
                starts,
                state: Mutex::new(ResidentSet {
                    map: HashMap::new(),
                    bytes: 0,
                    tick: 0,
                    limit: budget_bytes,
                }),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        })
    }

    /// Spoke dimension `n₁` (sum of block sizes).
    pub fn dim(&self) -> usize {
        self.inner.starts.last().copied().unwrap_or(0)
    }

    /// Number of diagonal blocks.
    pub fn num_blocks(&self) -> usize {
        self.inner.dir.len()
    }

    /// `[bs, be)` range of block `b` in the permuted spoke space.
    pub fn block_range(&self, b: usize) -> Result<(usize, usize)> {
        match (self.inner.starts.get(b), self.inner.starts.get(b + 1)) {
            (Some(&bs), Some(&be)) => Ok((bs, be)),
            _ => Err(Error::IndexOutOfBounds { index: b, bound: self.num_blocks() }),
        }
    }

    /// The segment directory.
    pub fn directory(&self) -> &[SegmentMeta] {
        &self.inner.dir
    }

    fn lock(&self) -> Result<MutexGuard<'_, ResidentSet>> {
        self.inner
            .state
            .lock()
            .map_err(|_| Error::InvalidStructure("pager state lock poisoned".into()))
    }

    /// Re-caps the resident-set budget, evicting immediately if the new
    /// cap is tighter (`None` = unlimited).
    pub fn set_budget(&self, budget_bytes: Option<usize>) -> Result<()> {
        let mut st = self.lock()?;
        st.limit = budget_bytes;
        let evicted = evict_to_limit(&mut st);
        drop(st);
        self.inner.evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(())
    }

    /// Current counters and residency.
    pub fn stats(&self) -> PagerStats {
        let (bytes, blocks) = match self.inner.state.lock() {
            Ok(st) => (st.bytes as u64, st.map.len() as u64),
            Err(_) => (0, 0),
        };
        PagerStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            resident_bytes: bytes,
            resident_blocks: blocks,
        }
    }

    /// Fetches block `b`, reading and decoding its segment on a miss.
    /// The returned `Arc` stays valid across evictions.
    pub fn fetch(&self, b: usize) -> Result<Arc<FactorPair>> {
        {
            let mut st = self.lock()?;
            let tick = st.tick;
            st.tick += 1;
            if let Some(entry) = st.map.get_mut(&b) {
                entry.last_used = tick;
                let pair = entry.pair.clone();
                drop(st);
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(pair);
            }
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let pair = Arc::new(self.load_segment(b)?);
        let bytes = pair.memory_bytes();
        let mut st = self.lock()?;
        let tick = st.tick;
        st.tick += 1;
        let mut evicted = 0u64;
        if let Some(old) =
            st.map.insert(b, ResidentEntry { pair: pair.clone(), bytes, last_used: tick })
        {
            // A concurrent fetch of the same block won the race; its copy
            // (identical decoded content) is replaced by ours and counts
            // as an eviction so `misses - resident == evictions` stays
            // exact under contention.
            st.bytes = st.bytes.saturating_sub(old.bytes);
            evicted += 1;
        }
        st.bytes = st.bytes.saturating_add(bytes);
        evicted += evict_to_limit(&mut st);
        drop(st);
        self.inner.evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(pair)
    }

    /// Reads, CRC-verifies, and decodes segment `b` from the source.
    fn load_segment(&self, b: usize) -> Result<FactorPair> {
        let meta = *self
            .inner
            .dir
            .get(b)
            .ok_or(Error::IndexOutOfBounds { index: b, bound: self.inner.dir.len() })?;
        let frame_len = usize::try_from(meta.frame_len)
            .map_err(|_| corrupt_shard(b, format!("frame length {} overflows", meta.frame_len)))?;
        if frame_len < SEGMENT_FRAME_OVERHEAD {
            return Err(corrupt_shard(b, format!("frame length {frame_len} too short")));
        }
        let mut buf = vec![0u8; frame_len];
        self.inner.source.read_at(meta.offset, &mut buf).map_err(|e| match e {
            Error::CorruptIndex { detail, .. } => corrupt_shard(b, detail),
            other => other,
        })?;
        if buf.get(..4) != Some(SEGMENT_TAG.as_slice()) {
            return Err(corrupt_shard(b, "segment tag missing (directory points at garbage)"));
        }
        let len8: [u8; 8] = buf
            .get(4..12)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| corrupt_shard(b, "frame too short for its length field"))?;
        let payload_len = u64::from_le_bytes(len8);
        if payload_len != (frame_len - SEGMENT_FRAME_OVERHEAD) as u64 {
            return Err(corrupt_shard(
                b,
                format!(
                    "frame length {payload_len} disagrees with directory ({})",
                    frame_len - SEGMENT_FRAME_OVERHEAD
                ),
            ));
        }
        let payload = buf
            .get(12..frame_len - 4)
            .ok_or_else(|| corrupt_shard(b, "frame too short for its payload"))?;
        let crc4: [u8; 4] = buf
            .get(frame_len - 4..)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| corrupt_shard(b, "frame too short for its checksum"))?;
        let stored_crc = u32::from_le_bytes(crc4);
        let actual_crc = crate::crc32::crc32(payload);
        if stored_crc != actual_crc || stored_crc != meta.crc {
            return Err(corrupt_shard(
                b,
                format!(
                    "segment checksum mismatch: frame {stored_crc:#010x}, directory {:#010x}, computed {actual_crc:#010x}",
                    meta.crc
                ),
            ));
        }
        let dim = usize::try_from(meta.block_dim)
            .map_err(|_| corrupt_shard(b, format!("block dimension {} overflows", meta.block_dim)))?;
        decode_segment(payload, b, dim)
    }
}

/// Evicts least-recently-used blocks until the set fits its limit,
/// always keeping at least one block (a single block larger than the
/// budget must stay usable). Returns how many were evicted.
fn evict_to_limit(st: &mut ResidentSet) -> u64 {
    let Some(limit) = st.limit else { return 0 };
    let mut evicted = 0u64;
    while st.bytes > limit && st.map.len() > 1 {
        let victim = st
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(&k, _)| k);
        let Some(victim) = victim else { break };
        if let Some(e) = st.map.remove(&victim) {
            st.bytes = st.bytes.saturating_sub(e.bytes);
            evicted += 1;
        }
    }
    evicted
}

// ---------------------------------------------------------------------------
// SpokeFactors: the kernel dispatch point
// ---------------------------------------------------------------------------

/// The spoke factors `L₁⁻¹`/`U₁⁻¹` as the query kernels see them:
/// fully resident whole matrices, or paged per-block through a
/// [`BlockPager`]. Both variants produce bit-identical results (module
/// docs); they differ only in residency.
#[derive(Debug, Clone)]
pub(crate) enum SpokeFactors {
    /// Whole block-diagonal matrices in memory (the historical layout).
    Resident { l1_inv: CscMatrix, u1_inv: CscMatrix },
    /// Per-block segments paged on demand.
    Paged { pager: BlockPager },
}

impl SpokeFactors {
    /// Spoke dimension `n₁`.
    pub(crate) fn dim(&self) -> usize {
        match self {
            SpokeFactors::Resident { l1_inv, .. } => l1_inv.nrows(),
            SpokeFactors::Paged { pager } => pager.dim(),
        }
    }

    /// The pager, when paged.
    pub(crate) fn pager(&self) -> Option<&BlockPager> {
        match self {
            SpokeFactors::Resident { .. } => None,
            SpokeFactors::Paged { pager } => Some(pager),
        }
    }

    /// Stored nonzeros of one factor (from the directory when paged).
    pub(crate) fn nnz(&self, f: Factor) -> usize {
        match self {
            SpokeFactors::Resident { l1_inv, u1_inv } => match f {
                Factor::L1 => l1_inv.nnz(),
                Factor::U1 => u1_inv.nnz(),
            },
            SpokeFactors::Paged { pager } => pager
                .directory()
                .iter()
                .map(|m| match f {
                    Factor::L1 => m.l1_nnz as usize,
                    Factor::U1 => m.u1_nnz as usize,
                })
                .sum(),
        }
    }

    /// Logical byte footprint of both factors — what they cost fully
    /// materialized, independent of current residency (the paper's
    /// space-accounting convention; actual resident bytes are in
    /// [`PagerStats`]).
    pub(crate) fn memory_bytes(&self) -> usize {
        match self {
            SpokeFactors::Resident { l1_inv, u1_inv } => {
                l1_inv.memory_bytes() + u1_inv.memory_bytes()
            }
            SpokeFactors::Paged { pager } => {
                pager.directory().iter().map(|m| m.resident_bytes()).sum()
            }
        }
    }

    /// Materializes both whole matrices (fetching every block when
    /// paged) — used by the v1/v2 writers and format conversion, never
    /// by the query path.
    pub(crate) fn to_whole(&self) -> Result<(CscMatrix, CscMatrix)> {
        match self {
            SpokeFactors::Resident { l1_inv, u1_inv } => Ok((l1_inv.clone(), u1_inv.clone())),
            SpokeFactors::Paged { pager } => {
                let nb = pager.num_blocks();
                let mut l1s = Vec::with_capacity(nb);
                let mut u1s = Vec::with_capacity(nb);
                for b in 0..nb {
                    let pair = pager.fetch(b)?;
                    l1s.push(pair.l1.clone());
                    u1s.push(pair.u1.clone());
                }
                let dim = pager.dim();
                Ok((
                    bear_sparse::lu::block_diag_concat(&l1s, dim),
                    bear_sparse::lu::block_diag_concat(&u1s, dim),
                ))
            }
        }
    }

    /// Splits resident whole matrices into per-block pairs (the v3
    /// writer's segment source). Errors on cross-block entries.
    pub(crate) fn split_pairs(&self, block_sizes: &[usize]) -> Result<Vec<FactorPair>> {
        let (l1, u1) = self.to_whole()?;
        let mut pairs = Vec::with_capacity(block_sizes.len());
        let mut bs = 0usize;
        for &sz in block_sizes {
            let be = bs + sz;
            pairs.push(FactorPair::new(split_block(&l1, bs, be)?, split_block(&u1, bs, be)?)?);
            bs = be;
        }
        if bs != l1.ncols() {
            return Err(Error::InvalidStructure(format!(
                "block sizes sum to {bs}, expected {}",
                l1.ncols()
            )));
        }
        Ok(pairs)
    }

    /// `y = F x` — bit-identical to `CscMatrix::matvec_into` on the
    /// whole factor. The paged arm skips (never fetches) blocks whose
    /// input slice is entirely zero.
    pub(crate) fn matvec_into(&self, f: Factor, x: &[f64], y: &mut [f64]) -> Result<()> {
        match self {
            SpokeFactors::Resident { l1_inv, u1_inv } => match f {
                Factor::L1 => l1_inv.matvec_into(x, y),
                Factor::U1 => u1_inv.matvec_into(x, y),
            },
            SpokeFactors::Paged { pager } => {
                let n1 = pager.dim();
                if x.len() != n1 || y.len() != n1 {
                    return Err(Error::DimensionMismatch {
                        op: "paged spoke matvec",
                        lhs: (n1, n1),
                        rhs: (y.len(), x.len()),
                    });
                }
                y.fill(0.0);
                for b in 0..pager.num_blocks() {
                    let (bs, be) = pager.block_range(b)?;
                    let xb = x
                        .get(bs..be)
                        .ok_or_else(|| corrupt_shard(b, "block range beyond input vector"))?;
                    // An all-zero input slice contributes nothing in the
                    // whole-matrix kernel (per-column zero skip), so the
                    // block need not even be fetched.
                    if xb.iter().all(|&v| v == 0.0) {
                        continue;
                    }
                    let pair = pager.fetch(b)?;
                    let m = pair.factor(f);
                    if m.ncols() != be - bs {
                        return Err(corrupt_shard(b, "decoded dimension mismatch"));
                    }
                    for (off, &xc) in xb.iter().enumerate() {
                        if xc == 0.0 {
                            continue;
                        }
                        let (rows, vals) = m.col(off);
                        for (&r, &v) in rows.iter().zip(vals) {
                            if let Some(slot) = y.get_mut(bs + r) {
                                *slot += v * xc;
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Allocating form of [`SpokeFactors::matvec_into`].
    pub(crate) fn matvec(&self, f: Factor, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.dim()];
        self.matvec_into(f, x, &mut y)?;
        Ok(y)
    }

    /// `Y = F X` — bit-identical per column to
    /// `CscMatrix::spmm_into` on the whole factor (width-1 delegates to
    /// the vector kernel, exactly as the resident kernel does).
    pub(crate) fn spmm_into(&self, f: Factor, x: &DenseBlock, y: &mut DenseBlock) -> Result<()> {
        match self {
            SpokeFactors::Resident { l1_inv, u1_inv } => match f {
                Factor::L1 => l1_inv.spmm_into(x, y),
                Factor::U1 => u1_inv.spmm_into(x, y),
            },
            SpokeFactors::Paged { pager } => {
                let n1 = pager.dim();
                if x.nrows() != n1 || y.nrows() != n1 || x.ncols() != y.ncols() {
                    return Err(Error::DimensionMismatch {
                        op: "paged spoke spmm",
                        lhs: (n1, n1),
                        rhs: (x.nrows(), x.ncols()),
                    });
                }
                if x.ncols() == 1 {
                    return self.matvec_into(f, x.col(0), y.col_mut(0));
                }
                y.fill(0.0);
                let k = x.ncols();
                for b in 0..pager.num_blocks() {
                    let (bs, be) = pager.block_range(b)?;
                    // lint:allow(L1, c < be <= n1 == x.nrows() per the dimension check above)
                    let untouched = (bs..be).all(|c| (0..k).all(|j| x[(c, j)] == 0.0));
                    if untouched {
                        continue;
                    }
                    let pair = pager.fetch(b)?;
                    let m = pair.factor(f);
                    if m.ncols() != be - bs {
                        return Err(corrupt_shard(b, "decoded dimension mismatch"));
                    }
                    // Mirrors `spmm_acc_inner`: matrix columns outer (in
                    // ascending global order), right-hand sides inner.
                    for c in 0..(be - bs) {
                        let (rows, vals) = m.col(c);
                        if rows.is_empty() {
                            continue;
                        }
                        for j in 0..k {
                            // lint:allow(L1, bs + c < be <= n1 == x.nrows() per the dimension check above)
                            let xc = x[(bs + c, j)];
                            if xc == 0.0 {
                                continue;
                            }
                            let yj = y.col_mut(j);
                            for (&r, &v) in rows.iter().zip(vals) {
                                // lint:allow(L1, r < block dim per the decoded dimension check, so bs + r < be <= n1)
                                yj[bs + r] += v * xc;
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Column-range-restricted scatter for the pruned top-k path:
    /// `y[bs..be] = F[:, bs..be] · x[bs..be]` for block `b` spanning
    /// `[bs, be)`. Mirrors the resident `scatter_block` exactly — zero
    /// the destination, accumulate columns ascending, skip exact-zero
    /// inputs.
    pub(crate) fn scatter_block(
        &self,
        f: Factor,
        b: usize,
        bs: usize,
        be: usize,
        x: &[f64],
        y: &mut [f64],
    ) -> Result<()> {
        let range_err = || Error::InvalidStructure("top-k block range out of bounds".into());
        y.get_mut(bs..be).ok_or_else(range_err)?.fill(0.0);
        let xb = x.get(bs..be).ok_or_else(range_err)?;
        match self {
            SpokeFactors::Resident { l1_inv, u1_inv } => {
                let m = match f {
                    Factor::L1 => l1_inv,
                    Factor::U1 => u1_inv,
                };
                for (off, &xc) in xb.iter().enumerate() {
                    if xc == 0.0 {
                        continue;
                    }
                    let (rows, vals) = m.col(bs + off);
                    for (&r, &v) in rows.iter().zip(vals) {
                        if let Some(slot) = y.get_mut(r) {
                            *slot += v * xc;
                        }
                    }
                }
                Ok(())
            }
            SpokeFactors::Paged { pager } => {
                if xb.iter().all(|&v| v == 0.0) {
                    return Ok(());
                }
                let pair = pager.fetch(b)?;
                let m = pair.factor(f);
                if m.ncols() != be - bs {
                    return Err(corrupt_shard(b, "decoded dimension mismatch"));
                }
                for (off, &xc) in xb.iter().enumerate() {
                    if xc == 0.0 {
                        continue;
                    }
                    let (rows, vals) = m.col(off);
                    for (&r, &v) in rows.iter().zip(vals) {
                        if let Some(slot) = y.get_mut(bs + r) {
                            *slot += v * xc;
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_pair(dim: usize, seed: f64) -> FactorPair {
        // Lower-triangular L with unit diagonal, upper-triangular U.
        let mut lp = vec![0usize];
        let mut li = Vec::new();
        let mut lv = Vec::new();
        let mut up = vec![0usize];
        let mut ui = Vec::new();
        let mut uv = Vec::new();
        for c in 0..dim {
            li.push(c);
            lv.push(1.0);
            if c + 1 < dim {
                li.push(c + 1);
                lv.push(seed * 0.25 + c as f64 * 0.01);
            }
            lp.push(li.len());
            if c > 0 {
                ui.push(c - 1);
                uv.push(-seed * 0.5);
            }
            ui.push(c);
            uv.push(1.0 + seed);
            up.push(ui.len());
        }
        FactorPair::new(
            CscMatrix::try_from_parts(dim, dim, lp, li, lv).unwrap(),
            CscMatrix::try_from_parts(dim, dim, up, ui, uv).unwrap(),
        )
        .unwrap()
    }

    /// Builds an in-memory image of framed segments plus the directory.
    fn build_image(pairs: &[FactorPair]) -> (Vec<u8>, Vec<SegmentMeta>, Vec<usize>) {
        let mut image = vec![0u8; 8]; // pretend 8-byte header
        let mut dir = Vec::new();
        let mut sizes = Vec::new();
        for (b, pair) in pairs.iter().enumerate() {
            let payload = encode_segment(b, pair);
            let offset = image.len() as u64;
            image.extend_from_slice(SEGMENT_TAG);
            image.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            image.extend_from_slice(&payload);
            let crc = crate::crc32::crc32(&payload);
            image.extend_from_slice(&crc.to_le_bytes());
            dir.push(SegmentMeta {
                offset,
                frame_len: (payload.len() + SEGMENT_FRAME_OVERHEAD) as u64,
                crc,
                block_dim: pair.dim() as u64,
                l1_nnz: pair.l1.nnz() as u64,
                u1_nnz: pair.u1.nnz() as u64,
            });
            sizes.push(pair.dim());
        }
        (image, dir, sizes)
    }

    fn pager_over(pairs: &[FactorPair], budget: Option<usize>) -> BlockPager {
        let (image, dir, sizes) = build_image(pairs);
        BlockPager::new(Box::new(MemSource(image)), dir, &sizes, budget).unwrap()
    }

    #[test]
    fn codec_round_trip_is_exact() {
        let pair = toy_pair(5, 0.3);
        let bytes = encode_segment(2, &pair);
        let back = decode_segment(&bytes, 2, 5).unwrap();
        assert_eq!(back.l1, pair.l1);
        assert_eq!(back.u1, pair.u1);
        // Wrong expectations are typed shard corruption.
        assert!(matches!(
            decode_segment(&bytes, 3, 5),
            Err(Error::CorruptIndex { section: "spoke_segment", .. })
        ));
        assert!(matches!(
            decode_segment(&bytes, 2, 6),
            Err(Error::CorruptIndex { section: "spoke_segment", .. })
        ));
    }

    #[test]
    fn fetch_hits_after_miss_and_counters_add_up() {
        let pairs = [toy_pair(4, 0.1), toy_pair(3, 0.2)];
        let pager = pager_over(&pairs, None);
        for _ in 0..3 {
            pager.fetch(0).unwrap();
            pager.fetch(1).unwrap();
        }
        let st = pager.stats();
        assert_eq!(st.misses, 2);
        assert_eq!(st.hits, 4);
        assert_eq!(st.hits + st.misses, 6);
        assert_eq!(st.resident_blocks, 2);
        assert_eq!(st.evictions, 0);
    }

    #[test]
    fn tiny_budget_evicts_lru_but_keeps_one_block() {
        let pairs = [toy_pair(6, 0.1), toy_pair(6, 0.2), toy_pair(6, 0.3)];
        let pager = pager_over(&pairs, Some(1)); // smaller than any block
        let a = pager.fetch(0).unwrap();
        pager.fetch(1).unwrap();
        pager.fetch(2).unwrap();
        let st = pager.stats();
        assert_eq!(st.resident_blocks, 1, "budget of one byte keeps exactly one block");
        assert_eq!(st.evictions, 2);
        // The Arc handed out before eviction is still fully usable.
        assert_eq!(a.dim(), 6);
        assert_eq!(a.l1.nnz(), pairs[0].l1.nnz());
    }

    #[test]
    fn corrupt_segment_fails_typed_naming_the_shard() {
        let pairs = [toy_pair(4, 0.1), toy_pair(4, 0.2)];
        let (mut image, dir, sizes) = build_image(&pairs);
        // Flip a bit inside the second segment's payload.
        let off = dir[1].offset as usize + 20;
        image[off] ^= 0x40;
        let pager = BlockPager::new(Box::new(MemSource(image)), dir, &sizes, None).unwrap();
        pager.fetch(0).unwrap();
        let err = pager.fetch(1).unwrap_err();
        match err {
            Error::CorruptIndex { section, detail } => {
                assert_eq!(section, "spoke_segment");
                assert!(detail.contains("shard 1"), "detail lacks shard id: {detail}");
            }
            other => panic!("expected CorruptIndex, got {other}"),
        }
    }

    #[test]
    fn directory_dimension_mismatch_rejected() {
        let pairs = [toy_pair(4, 0.1)];
        let (image, dir, _) = build_image(&pairs);
        let err = BlockPager::new(Box::new(MemSource(image)), dir, &[5], None).unwrap_err();
        assert!(matches!(err, Error::CorruptIndex { section: "segment_directory", .. }));
    }

    #[test]
    fn split_block_rejects_cross_block_entries() {
        // A full 2x2 dense-ish matrix is not block diagonal for sizes [1, 1].
        let m = CscMatrix::try_from_parts(2, 2, vec![0, 2, 4], vec![0, 1, 0, 1], vec![1.0; 4])
            .unwrap();
        assert!(split_block(&m, 0, 1).is_err());
        assert!(split_block(&m, 0, 2).is_ok());
    }

    #[test]
    fn set_budget_recaps_and_evicts() {
        let pairs = [toy_pair(8, 0.1), toy_pair(8, 0.2), toy_pair(8, 0.3)];
        let pager = pager_over(&pairs, None);
        for b in 0..3 {
            pager.fetch(b).unwrap();
        }
        assert_eq!(pager.stats().resident_blocks, 3);
        pager.set_budget(Some(1)).unwrap();
        assert_eq!(pager.stats().resident_blocks, 1);
        // Unlimited again: blocks re-accumulate.
        pager.set_budget(None).unwrap();
        for b in 0..3 {
            pager.fetch(b).unwrap();
        }
        assert_eq!(pager.stats().resident_blocks, 3);
    }
}
