//! Property-based end-to-end tests: on arbitrary random graphs, BEAR
//! agrees with the iterative method and with a dense solve, respects
//! probability bounds, and is invariant under node relabelling.

use bear_baselines::{Iterative, IterativeConfig};
use bear_core::rwr::RwrConfig;
use bear_core::{Bear, BearConfig, RwrSolver};
use bear_graph::Graph;
use bear_sparse::Permutation;
use proptest::prelude::*;

/// Strategy: a random directed graph with `n ∈ [2, 40]` nodes and a
/// random edge set (kept connected enough to be interesting by always
/// including a cycle through all nodes).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 3));
        edges.prop_map(move |mut extra| {
            // Cycle backbone guarantees no dangling nodes and strong
            // connectivity of the base structure.
            for u in 0..n {
                extra.push((u, (u + 1) % n));
            }
            Graph::from_edges(n, &extra).unwrap()
        })
    })
}

/// The shrunken case from `proptest_end_to_end.proptest-regressions`,
/// pinned as a concrete test because the offline proptest stand-in does
/// not replay regression files: a 2-node graph whose node 0 carries a
/// weighted self-loop (edges 0→0 w=2, 0→1 w=1, 1→0 w=1), relabelled with
/// `perm_seed = 0`.
///
/// Diagnosis: neither `build_h` row-normalization nor SlashBurn's
/// tiny-graph ordering mishandles this input — the case agrees to ~1e-16
/// (tolerance is 1e-9), and an exhaustive sweep over every weighted
/// digraph on ≤ 3 nodes × every relabelling × every seed
/// (`examples/relabel_sweep.rs`, 27 774 checks) has worst deviation
/// 3.3e-16. The recorded failure came from the unbuildable dependency
/// set the seed shipped with, not from the numerics; this test keeps the
/// case pinned against actual regressions.
#[test]
fn pinned_regression_weighted_self_loop_relabelling() {
    let g = Graph::from_weighted_edges(2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0)]).unwrap();

    // Same pseudo-random permutation construction as the property below.
    let n = g.num_nodes();
    let perm_seed = 0u64;
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = perm_seed.wrapping_add(12345);
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let p = Permutation::from_new_to_old(order).unwrap();

    let relabelled_edges: Vec<(usize, usize, f64)> =
        g.edges().iter().map(|&(u, v, w)| (p.new_of(u), p.new_of(v), w)).collect();
    let g2 = Graph::from_weighted_edges(n, &relabelled_edges).unwrap();

    let bear1 = Bear::new(&g, &BearConfig::exact(0.15)).unwrap();
    let bear2 = Bear::new(&g2, &BearConfig::exact(0.15)).unwrap();
    let r1 = bear1.query(0).unwrap();
    let r2 = bear2.query(p.new_of(0)).unwrap();
    for u in 0..n {
        assert!(
            (r1[u] - r2[p.new_of(u)]).abs() < 1e-9,
            "node {u}: {} vs {}",
            r1[u],
            r2[p.new_of(u)]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bear_matches_iterative_on_random_graphs(g in arb_graph(), seed_frac in 0.0f64..1.0) {
        let n = g.num_nodes();
        let seed = ((seed_frac * n as f64) as usize).min(n - 1);
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let it = Iterative::new(
            &g,
            &IterativeConfig {
                rwr: RwrConfig { c: 0.1, ..RwrConfig::default() },
                epsilon: 1e-12,
                max_iterations: 100_000,
            },
        )
        .unwrap();
        let rb = bear.query(seed).unwrap();
        let ri = it.query(seed).unwrap();
        for (a, b) in rb.iter().zip(&ri) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn scores_form_a_subprobability_distribution(g in arb_graph()) {
        let bear = Bear::new(&g, &BearConfig::exact(0.2)).unwrap();
        let r = bear.query(0).unwrap();
        for &v in &r {
            prop_assert!(v >= -1e-12, "negative score {v}");
            prop_assert!(v <= 1.0 + 1e-9, "score {v} > 1");
        }
        let sum: f64 = r.iter().sum();
        prop_assert!(sum <= 1.0 + 1e-9, "mass {sum} > 1");
        // The cycle backbone means no dangling nodes => mass exactly 1.
        prop_assert!(sum > 1.0 - 1e-6, "mass {sum} leaked");
    }

    #[test]
    fn relabelling_nodes_permutes_scores(g in arb_graph(), perm_seed in 0u64..1000) {
        // Build a pseudo-random permutation of the nodes.
        let n = g.num_nodes();
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = perm_seed.wrapping_add(12345);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let p = Permutation::from_new_to_old(order).unwrap();

        // Relabelled graph: node u of g becomes p.new_of(u). Weights must
        // be preserved (duplicate input edges were merged by summing).
        let relabelled_edges: Vec<(usize, usize, f64)> = g
            .edges()
            .iter()
            .map(|&(u, v, w)| (p.new_of(u), p.new_of(v), w))
            .collect();
        let g2 = Graph::from_weighted_edges(n, &relabelled_edges).unwrap();

        let bear1 = Bear::new(&g, &BearConfig::exact(0.15)).unwrap();
        let bear2 = Bear::new(&g2, &BearConfig::exact(0.15)).unwrap();
        let seed = 0;
        let r1 = bear1.query(seed).unwrap();
        let r2 = bear2.query(p.new_of(seed)).unwrap();
        for u in 0..n {
            prop_assert!(
                (r1[u] - r2[p.new_of(u)]).abs() < 1e-9,
                "node {u}: {} vs {}",
                r1[u],
                r2[p.new_of(u)]
            );
        }
    }

    #[test]
    fn approx_error_bounded_by_tolerance_regime(g in arb_graph()) {
        let exact = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let approx = Bear::new(&g, &BearConfig::approx(0.1, 1e-6)).unwrap();
        let re = exact.query(1 % g.num_nodes()).unwrap();
        let ra = approx.query(1 % g.num_nodes()).unwrap();
        let l2 = bear_core::metrics::l2_error(&re, &ra);
        prop_assert!(l2 < 1e-2, "tiny tolerance produced error {l2}");
        prop_assert!(approx.memory_bytes() <= exact.memory_bytes());
    }

    #[test]
    fn query_engine_matches_bear_on_random_graphs(g in arb_graph(), threads in 1usize..4) {
        use bear_core::{EngineConfig, QueryEngine};
        use std::sync::Arc;

        let n = g.num_nodes();
        let bear = Arc::new(Bear::new(&g, &BearConfig::exact(0.15)).unwrap());
        let engine = QueryEngine::new(
            Arc::clone(&bear),
            EngineConfig { threads, cache_capacity: 8, ..EngineConfig::default() },
        )
        .unwrap();
        let seeds: Vec<usize> = (0..n.min(6)).collect();
        let batch = engine.query_batch(&seeds).unwrap();
        for (&seed, scores) in seeds.iter().zip(&batch) {
            let reference = bear.query(seed).unwrap();
            // Bit-identical: the engine runs the same FP ops in the same
            // order through the shared `query_into` implementation.
            prop_assert_eq!(scores.as_slice(), reference.as_slice());
            // Repeat goes through the cache and must stay identical.
            let again = engine.query(seed).unwrap();
            prop_assert_eq!(again.as_slice(), reference.as_slice());
        }
        let m = engine.metrics();
        prop_assert!(m.queries >= 2 * seeds.len() as u64);
        prop_assert!(m.cache_hits >= seeds.len() as u64);
    }

    #[test]
    fn pruned_top_k_bit_identical_on_random_graphs(
        g in arb_graph(),
        seed_frac in 0.0f64..1.0,
        k_frac in 0.0f64..1.2,
        xi_sel in 0usize..3,
    ) {
        let n = g.num_nodes();
        let seed = ((seed_frac * n as f64) as usize).min(n - 1);
        // k sweeps from 1 past n (k_frac up to 1.2 → k up to n + 2).
        let k = (((k_frac * (n + 2) as f64) as usize).max(1)).min(n + 2);
        // ξ = 0 (BEAR-Exact) plus two BEAR-Approx regimes.
        let xi = [0.0, 1e-5, 1e-3][xi_sel.min(2)];
        let bear = Bear::new(&g, &BearConfig::approx(0.15, xi)).unwrap();
        let full = bear.query(seed).unwrap();
        let want = bear_core::topk::top_k_excluding_seed(&full, seed, k);
        let got = bear.query_top_k_pruned(seed, k).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert_eq!(a.node, b.node, "node rank order differs");
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits(), "score bits differ");
        }
    }

    #[test]
    fn ppr_superposition_on_random_graphs(g in arb_graph()) {
        let n = g.num_nodes();
        let bear = Bear::new(&g, &BearConfig::exact(0.25)).unwrap();
        let a = 0;
        let b = n - 1;
        let mut q = vec![0.0; n];
        q[a] += 0.4;
        q[b] += 0.6;
        let mix = bear.query_distribution(&q).unwrap();
        let ra = bear.query(a).unwrap();
        let rb = bear.query(b).unwrap();
        for u in 0..n {
            let want = 0.4 * ra[u] + 0.6 * rb[u];
            prop_assert!((mix[u] - want).abs() < 1e-9);
        }
    }
}
