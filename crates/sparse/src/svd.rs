//! Randomized truncated SVD of a sparse matrix.
//!
//! Used by the B_LIN / NB_LIN baselines to build the rank-`t` approximation
//! `A ≈ U Σ V`. The algorithm is Halko–Martinsson–Tropp randomized
//! subspace iteration: sketch the range with a Gaussian test matrix,
//! orthonormalize, optionally run power iterations for spectral-decay
//! sharpening, then take an exact factorization of the small projected
//! matrix via the Jacobi eigensolver.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::eigen::symmetric_eigen;
use crate::error::{Error, Result};
use crate::qr::mgs_orthonormalize;
use rand::distributions::Distribution;
use rand::Rng;

/// Truncated SVD `A ≈ U diag(s) Vᵀ` with `U: n×t`, `Vᵀ: t×m`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors (columns).
    pub u: DenseMatrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors, stored transposed (rows).
    pub vt: DenseMatrix,
}

/// `C = A B` for sparse `A`, dense `B`.
pub fn csr_times_dense(a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.ncols() != b.nrows() {
        return Err(Error::DimensionMismatch {
            op: "csr_times_dense",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let mut out = DenseMatrix::zeros(a.nrows(), b.ncols());
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        let orow = out.row_mut(r);
        for (&k, &v) in cols.iter().zip(vals) {
            for (o, &bv) in orow.iter_mut().zip(b.row(k)) {
                *o += v * bv;
            }
        }
    }
    Ok(out)
}

/// `C = Aᵀ B` for sparse `A`, dense `B`, without materializing `Aᵀ`.
pub fn csr_transpose_times_dense(a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.nrows() != b.nrows() {
        return Err(Error::DimensionMismatch {
            op: "csr_transpose_times_dense",
            lhs: (a.ncols(), a.nrows()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let mut out = DenseMatrix::zeros(a.ncols(), b.ncols());
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        let brow = b.row(r);
        for (&k, &v) in cols.iter().zip(vals) {
            let orow = out.row_mut(k);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += v * bv;
            }
        }
    }
    Ok(out)
}

/// Computes a rank-`t` truncated SVD of `a` via randomized subspace
/// iteration with `oversample` extra sketch columns and `power_iters`
/// power iterations.
pub fn randomized_svd<R: Rng>(
    a: &CsrMatrix,
    t: usize,
    oversample: usize,
    power_iters: usize,
    rng: &mut R,
) -> Result<TruncatedSvd> {
    let (n, m) = (a.nrows(), a.ncols());
    let sketch = (t + oversample).min(m).min(n);
    if sketch == 0 {
        return Err(Error::InvalidStructure("rank-0 SVD requested".into()));
    }

    // Gaussian sketch of the range: Y = A Ω.
    let normal = rand::distributions::Uniform::new(-1.0f64, 1.0);
    let mut omega = DenseMatrix::zeros(m, sketch);
    for i in 0..m {
        for j in 0..sketch {
            omega[(i, j)] = normal.sample(rng);
        }
    }
    let mut y = csr_times_dense(a, &omega)?;
    mgs_orthonormalize(&mut y);

    // Power iterations sharpen the spectrum: Y <- A Aᵀ Y (re-orthonormalized).
    for _ in 0..power_iters {
        let z = csr_transpose_times_dense(a, &y)?;
        y = csr_times_dense(a, &z)?;
        mgs_orthonormalize(&mut y);
    }

    // Project: B = Qᵀ A, factor the small Gram matrix B Bᵀ (sketch × sketch).
    // Bᵀ = Aᵀ Q, so B = (Aᵀ Q)ᵀ.
    let bt = csr_transpose_times_dense(a, &y)?; // m × sketch
    let gram = bt.transpose().matmul(&bt)?; // sketch × sketch = B Bᵀ
    let eig = symmetric_eigen(&gram)?;

    let rank = t.min(sketch);
    let mut s = Vec::with_capacity(rank);
    let mut u = DenseMatrix::zeros(n, rank);
    let mut vt = DenseMatrix::zeros(rank, m);
    for j in 0..rank {
        let sigma = eig.values[j].max(0.0).sqrt();
        s.push(sigma);
        // u_j = Q w_j
        for i in 0..n {
            let mut acc = 0.0;
            for k in 0..y.ncols() {
                acc += y[(i, k)] * eig.vectors[(k, j)];
            }
            u[(i, j)] = acc;
        }
        // vᵀ_j = (1/σ) w_jᵀ B = (1/σ) (Bᵀ w_j)ᵀ
        if sigma > 1e-12 {
            for i in 0..m {
                let mut acc = 0.0;
                for k in 0..bt.ncols() {
                    acc += bt[(i, k)] * eig.vectors[(k, j)];
                }
                vt[(j, i)] = acc / sigma;
            }
        }
    }
    Ok(TruncatedSvd { u, s, vt })
}

impl TruncatedSvd {
    /// Reconstructs the dense approximation `U diag(s) Vᵀ` (test helper;
    /// only sensible for small matrices).
    pub fn reconstruct(&self) -> Result<DenseMatrix> {
        let mut us = self.u.clone();
        for j in 0..self.s.len() {
            for i in 0..us.nrows() {
                us[(i, j)] *= self.s[j];
            }
        }
        us.matmul(&self.vt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn csr_dense_products_match_dense_oracle() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 1, 2.0);
        coo.push(1, 3, -1.0);
        coo.push(2, 0, 0.5);
        let a = coo.to_csr();
        let b =
            DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0], &[1.0, -1.0]]).unwrap();
        let ad = a.to_dense();
        let want = ad.matmul(&b).unwrap();
        let got = csr_times_dense(&a, &b).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-12);

        let c = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let want_t = ad.transpose().matmul(&c).unwrap();
        let got_t = csr_transpose_times_dense(&a, &c).unwrap();
        assert!(got_t.max_abs_diff(&want_t) < 1e-12);
    }

    #[test]
    fn exact_recovery_of_low_rank_matrix() {
        // Build a rank-2 matrix and recover it exactly at t = 2.
        let u =
            DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, -1.0]]).unwrap();
        let v = DenseMatrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 1.0]]).unwrap();
        let dense = u.matmul(&v).unwrap();
        let sparse = dense.to_csr(0.0);
        let mut rng = StdRng::seed_from_u64(42);
        let svd = randomized_svd(&sparse, 2, 4, 2, &mut rng).unwrap();
        let back = svd.reconstruct().unwrap();
        assert!(back.max_abs_diff(&dense) < 1e-8);
    }

    #[test]
    fn singular_values_descend() {
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, (i + 1) as f64);
        }
        let a = coo.to_csr();
        let mut rng = StdRng::seed_from_u64(1);
        let svd = randomized_svd(&a, 4, 2, 2, &mut rng).unwrap();
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        // Largest singular value of the diagonal matrix is 6.
        assert!((svd.s[0] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn truncation_error_bounded_by_next_singular_value() {
        // Diagonal matrix: truncating at rank 2 leaves max error = 3rd value.
        let mut coo = CooMatrix::new(5, 5);
        let diag = [10.0, 8.0, 0.1, 0.05, 0.01];
        for (i, &d) in diag.iter().enumerate() {
            coo.push(i, i, d);
        }
        let a = coo.to_csr();
        let mut rng = StdRng::seed_from_u64(3);
        let svd = randomized_svd(&a, 2, 3, 3, &mut rng).unwrap();
        let back = svd.reconstruct().unwrap();
        let err = back.max_abs_diff(&a.to_dense());
        assert!(err < 0.2, "truncation error {err} too large");
    }
}
