//! Deterministic fault-injection sites (the `failpoints` feature).
//!
//! The fault-tolerance layer claims that every fault class — corrupt
//! index, queue overload, worker panic, slow worker — maps to a typed
//! error or a degraded answer, never a hang or abort. Those paths only
//! fire when something actually breaks, so this module makes breakage
//! *injectable*: named sites in the serving path consult a global
//! registry and, when armed, panic, sleep, or fail on command. The
//! deterministic suite in `crates/core/tests/fault_injection.rs` drives
//! them.
//!
//! With the `failpoints` cargo feature disabled (the default), every
//! site compiles to nothing — the registry, the sites, and this module's
//! locking are all absent from production builds.
//!
//! Sites currently wired:
//!
//! * `persist::load` — start of [`crate::Bear::load`];
//! * `persist::save::write` — before the temp file is created; also
//!   honors [`FailAction::TruncateAt`] (write only the first `k` bytes,
//!   then fail — a crash mid-write);
//! * `persist::save::sync` — after the payload write, before `fsync`;
//! * `persist::save::rename` — before the atomic rename into place;
//! * `persist::save::torn` — consulted via [`armed`], not [`eval`]:
//!   [`FailAction::TruncateAt`]/[`FailAction::BitFlip`] corrupt the
//!   synced temp file and then let the rename *succeed* (a lying disk —
//!   save reports Ok, load must catch the damage);
//! * `queue::push` — engine job admission ([`crate::engine::QueryEngine`]);
//! * `queue::pop` — worker dequeue, before deadline shedding;
//! * `engine::run_job` — inside the worker's `catch_unwind`, before the
//!   query computation.

use std::collections::HashMap;
// lint:allow(L4, compiled under cfg(loom) too, where loom primitives panic outside a model)
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when its site is reached.
#[derive(Debug, Clone, PartialEq)]
pub enum FailAction {
    /// Panic with a recognizable message (exercises `catch_unwind`
    /// containment and the `worker_panics` accounting).
    Panic,
    /// Sleep for the given duration (simulates a slow worker or a slow
    /// I/O path, exercising deadline enforcement).
    Delay(Duration),
    /// Return an injected `Error::InvalidStructure` from the site
    /// (simulates e.g. a corrupt payload detected mid-operation).
    Fail,
    /// First sleep, then fail — a slow path that ultimately errors.
    DelayThenFail(Duration),
    /// Torn-write injection for the persist path: the artifact is cut to
    /// the first `k` bytes at the armed site. Only the dedicated persist
    /// sites (`persist::save::write`, `persist::save::torn`) interpret
    /// this; [`eval`] treats it as a no-op.
    TruncateAt(u64),
    /// Bit-rot injection for the persist path: the bit at absolute bit
    /// offset `k` (byte `k / 8`, bit `k % 8`) is flipped at the armed
    /// site. Only `persist::save::torn` interprets this; [`eval`] treats
    /// it as a no-op.
    BitFlip(u64),
}

fn registry() -> &'static Mutex<HashMap<&'static str, FailAction>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, FailAction>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `site` with `action`. Replaces any previous arming.
pub fn configure(site: &'static str, action: FailAction) {
    registry().lock().expect("failpoint registry poisoned").insert(site, action);
}

/// Disarms `site`.
pub fn clear(site: &str) {
    registry().lock().expect("failpoint registry poisoned").remove(site);
}

/// Disarms every site. Test suites call this between cases.
pub fn clear_all() {
    registry().lock().expect("failpoint registry poisoned").clear();
}

/// The action currently armed at `site`, if any.
pub fn armed(site: &str) -> Option<FailAction> {
    registry().lock().expect("failpoint registry poisoned").get(site).cloned()
}

/// Evaluates the site: sleeps on `Delay`, panics on `Panic`, and returns
/// the injected error on `Fail`. Call via [`crate::fail_point!`] so the
/// site disappears entirely when the feature is off.
pub fn eval(site: &'static str) -> bear_sparse::Result<()> {
    let Some(action) = armed(site) else { return Ok(()) };
    let fail = || {
        Err(bear_sparse::Error::InvalidStructure(format!("failpoint '{site}' injected failure")))
    };
    match action {
        FailAction::Panic => panic!("failpoint '{site}' injected panic"),
        FailAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FailAction::Fail => fail(),
        FailAction::DelayThenFail(d) => {
            std::thread::sleep(d);
            fail()
        }
        // Byte-surgery actions are meaningful only at the persist sites,
        // which consult `armed` directly; at a generic site they do
        // nothing rather than silently failing an unrelated operation.
        FailAction::TruncateAt(_) | FailAction::BitFlip(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        configure("test::site", FailAction::Fail);
        assert_eq!(armed("test::site"), Some(FailAction::Fail));
        assert!(eval("test::site").is_err());
        clear("test::site");
        assert_eq!(armed("test::site"), None);
        assert!(eval("test::site").is_ok());
        configure("test::site", FailAction::Delay(Duration::from_millis(1)));
        configure("test::other", FailAction::Panic);
        clear_all();
        assert_eq!(armed("test::site"), None);
        assert_eq!(armed("test::other"), None);
    }
}
