//! SlashBurn node reordering (Kang & Faloutsos, ICDM 2011), as used by
//! BEAR's preprocessing (Algorithm 1, lines 2–3).
//!
//! Each iteration removes the `k` highest-degree nodes ("hubs") from the
//! current giant connected component (GCC); the removal detaches a set of
//! small components ("spokes"). Iteration continues on the new GCC until
//! it shrinks below `k`. BEAR then orders the matrix as
//!
//! ```text
//! [ spoke block 1 | spoke block 2 | ... | hubs (incl. final GCC) ]
//! ```
//!
//! where each spoke block is one detached component with its nodes sorted
//! in ascending order of degree within the component (the paper's
//! Observation 1), and the hub region collects the removed hubs plus the
//! final undersized GCC. Because every spoke component is disconnected
//! from every other one once the hubs are gone, the spoke–spoke region of
//! the reordered matrix is block diagonal — exactly the structure BEAR's
//! block elimination exploits.

use crate::components::{components_in_subset, largest_component};
use crate::graph::Graph;
use bear_sparse::{Permutation, Result};

/// Configuration for a SlashBurn run.
#[derive(Debug, Clone, Copy)]
pub struct SlashBurnConfig {
    /// Number of hubs removed per iteration. The paper uses
    /// `k = max(1, ⌈0.001 n⌉)`.
    pub k: usize,
    /// Upper bound on iterations (a safety valve; SlashBurn terminates on
    /// its own for any finite graph since each iteration removes `k`
    /// nodes from the GCC).
    pub max_iterations: usize,
    /// Sort each spoke block's nodes in ascending order of
    /// within-component degree (the paper's Observation 1). Disable only
    /// for ablation experiments.
    pub sort_blocks_by_degree: bool,
}

impl SlashBurnConfig {
    /// The paper's default: `k = max(1, ⌈0.001 n⌉)`.
    pub fn paper_default(n: usize) -> Self {
        SlashBurnConfig {
            k: ((n as f64 * 0.001).ceil() as usize).max(1),
            max_iterations: usize::MAX,
            sort_blocks_by_degree: true,
        }
    }

    /// Explicit `k`.
    pub fn with_k(k: usize) -> Self {
        SlashBurnConfig { k: k.max(1), max_iterations: usize::MAX, sort_blocks_by_degree: true }
    }
}

/// The ordering produced by SlashBurn, in BEAR's spokes-then-hubs layout.
#[derive(Debug, Clone)]
pub struct SlashBurnOrdering {
    /// Permutation with `new -> old` semantics: position `i` of the
    /// reordered matrix holds original node `perm.old_of(i)`. Spoke blocks
    /// come first, the hub region last.
    pub perm: Permutation,
    /// Number of spoke nodes (`n₁` in the paper).
    pub n_spokes: usize,
    /// Number of hub nodes (`n₂` in the paper), including the final
    /// undersized GCC.
    pub n_hubs: usize,
    /// Sizes of the diagonal blocks of the spoke region (`n_{1i}`), in
    /// ordering position.
    pub block_sizes: Vec<usize>,
    /// Iterations performed (`T`).
    pub iterations: usize,
}

impl SlashBurnOrdering {
    /// `Σᵢ n₁ᵢ²` — the paper's summary statistic for how finely the spoke
    /// region is divided (Table 4).
    pub fn sum_block_sq(&self) -> u128 {
        self.block_sizes.iter().map(|&b| (b as u128) * (b as u128)).sum()
    }
}

/// Runs SlashBurn on the undirected view of `g`.
///
/// ```
/// use bear_graph::{Graph, slashburn, SlashBurnConfig};
/// // A star: the center is the hub, leaves are spokes.
/// let edges: Vec<(usize, usize)> = (1..8).map(|v| (0, v)).collect();
/// let g = Graph::from_edges(8, &edges).unwrap();
/// let ord = slashburn(&g, &SlashBurnConfig::with_k(1)).unwrap();
/// assert!(ord.n_hubs <= 2);
/// assert_eq!(ord.n_spokes + ord.n_hubs, 8);
/// ```
pub fn slashburn(g: &Graph, config: &SlashBurnConfig) -> Result<SlashBurnOrdering> {
    let n = g.num_nodes();
    let k = config.k.max(1);
    let sym = g.symmetrized_pattern();

    let mut active = vec![true; n];
    // Degrees within the active subgraph, maintained incrementally.
    let mut degree: Vec<usize> = (0..n).map(|u| sym.row_nnz(u)).collect();

    // Spoke blocks in final order (each block = sorted-by-degree node list)
    // and hubs in removal order (iteration 1 hubs first).
    let mut spoke_blocks: Vec<Vec<usize>> = Vec::new();
    let mut hubs_by_iteration: Vec<Vec<usize>> = Vec::new();

    // The node set SlashBurn is currently burning: initially every node.
    // Nodes outside `current` but still `active` are spokes already carved
    // out in earlier iterations (they keep their `active` flag off).
    let mut current: Vec<usize> = (0..n).collect();
    let mut iterations = 0usize;

    while current.len() >= k && !current.is_empty() && iterations < config.max_iterations {
        iterations += 1;
        // Select the k highest-degree active nodes of the current set
        // (ties broken by smaller id for determinism).
        let mut order: Vec<usize> = current.clone();
        order.sort_unstable_by(|&a, &b| degree[b].cmp(&degree[a]).then(a.cmp(&b)));
        let hubs: Vec<usize> = order.into_iter().take(k).collect();
        for &h in &hubs {
            active[h] = false;
            // Keep neighbor degrees consistent for the next selection.
            let (nbrs, _) = sym.row(h);
            for &v in nbrs {
                if active[v] {
                    degree[v] -= 1;
                }
            }
        }
        hubs_by_iteration.push(hubs);

        // Components of the survivors of the current set.
        let mut mask = vec![false; n];
        for &u in &current {
            if active[u] {
                mask[u] = true;
            }
        }
        let comps = components_in_subset(&sym, &mask);
        if comps.is_empty() {
            current = Vec::new();
            break;
        }
        let gcc_idx = largest_component(&comps).expect("non-empty components");
        for (i, comp) in comps.iter().enumerate() {
            if i != gcc_idx {
                // Detached component: becomes a spoke block. Deactivate so
                // later degree bookkeeping ignores it.
                let mut block = comp.clone();
                // Ascending degree within the component (degree counted
                // inside the component only, per the paper).
                if config.sort_blocks_by_degree {
                    let local_deg = |u: usize| -> usize {
                        let (nbrs, _) = sym.row(u);
                        nbrs.iter().filter(|&&v| comp.binary_search(&v).is_ok()).count()
                    };
                    block.sort_by_key(|&u| (local_deg(u), u));
                }
                for &u in &block {
                    active[u] = false;
                    let (nbrs, _) = sym.row(u);
                    for &v in nbrs {
                        if active[v] {
                            degree[v] -= 1;
                        }
                    }
                }
                spoke_blocks.push(block);
            }
        }
        current = comps[gcc_idx].clone();
    }

    // The final GCC (size < k) joins the hub region, placed before the
    // removed hubs so the densest rows end at the matrix corner.
    let mut hub_region: Vec<usize> = Vec::new();
    hub_region.extend(current.iter().copied());
    // Later iterations' hubs first, first iteration's hubs last — matching
    // SlashBurn's "hubs get the highest ids, iteration 1 highest of all".
    for hubs in hubs_by_iteration.iter().rev() {
        hub_region.extend(hubs.iter().copied());
    }

    let mut forward: Vec<usize> = Vec::with_capacity(n);
    let mut block_sizes = Vec::with_capacity(spoke_blocks.len());
    for block in &spoke_blocks {
        block_sizes.push(block.len());
        forward.extend(block.iter().copied());
    }
    let n_spokes = forward.len();
    forward.extend(hub_region.iter().copied());
    let n_hubs = n - n_spokes;

    Ok(SlashBurnOrdering {
        perm: Permutation::from_new_to_old(forward)?,
        n_spokes,
        n_hubs,
        block_sizes,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A star graph: node 0 is the hub, 1..n are leaves.
    fn star(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn star_yields_hub_region_with_center() {
        let g = star(10);
        let ord = slashburn(&g, &SlashBurnConfig::with_k(1)).unwrap();
        // Iteration 1 removes center 0; the nine leaves become singleton
        // components, one of which is the (size-1) GCC that a second
        // iteration consumes ("repeat until GCC < k", and 1 >= k = 1).
        assert_eq!(ord.n_hubs, 2);
        assert_eq!(ord.n_spokes, 8);
        assert_eq!(ord.block_sizes, vec![1; 8]);
        // The star center must be in the hub region, at the very end
        // (iteration-1 hubs get the highest ids).
        assert_eq!(ord.perm.old_of(9), 0);
    }

    #[test]
    fn permutation_is_complete() {
        let g = star(7);
        let ord = slashburn(&g, &SlashBurnConfig::with_k(2)).unwrap();
        let mut seen = [false; 7];
        for i in 0..7 {
            seen[ord.perm.old_of(i)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(ord.n_spokes + ord.n_hubs, 7);
        assert_eq!(ord.block_sizes.iter().sum::<usize>(), ord.n_spokes);
    }

    #[test]
    fn two_stars_bridged() {
        // Two stars joined by a bridge between hubs: removing both hubs
        // (k=2) detaches all leaves as singleton spokes.
        let mut edges = Vec::new();
        for v in 2..7 {
            edges.push((0, v)); // star A: hub 0, leaves 2..7
        }
        for v in 7..12 {
            edges.push((1, v)); // star B: hub 1, leaves 7..12
        }
        edges.push((0, 1));
        let g = Graph::from_edges(12, &edges).unwrap();
        let ord = slashburn(&g, &SlashBurnConfig::with_k(2)).unwrap();
        // After removing hubs {0, 1}, ten singleton leaves remain; one of
        // them is the size-1 GCC (< k = 2), which stops iteration and
        // joins the hub region.
        assert_eq!(ord.n_hubs, 3);
        assert_eq!(ord.n_spokes, 9);
        let hub_olds: Vec<usize> = (9..12).map(|i| ord.perm.old_of(i)).collect();
        assert!(hub_olds.contains(&0));
        assert!(hub_olds.contains(&1));
    }

    #[test]
    fn spoke_blocks_are_disconnected_in_reordered_matrix() {
        // Verify the block-diagonal property: no symmetrized edge between
        // two different spoke blocks.
        let mut edges = Vec::new();
        // A chain of caves hanging off two hubs.
        for v in 2..5 {
            edges.push((0, v));
        }
        edges.push((3, 4)); // small cave {3,4} + leaf {2}
        for v in 5..8 {
            edges.push((1, v));
        }
        edges.push((0, 1));
        let g = Graph::from_edges(8, &edges).unwrap();
        let ord = slashburn(&g, &SlashBurnConfig::with_k(1)).unwrap();
        let sym = g.symmetrized_pattern();
        let reordered = ord.perm.permute_symmetric(&sym).unwrap();
        // Block id per new position, usize::MAX for hubs.
        let mut block_of = [usize::MAX; 8];
        let mut pos = 0;
        for (bid, &sz) in ord.block_sizes.iter().enumerate() {
            for _ in 0..sz {
                block_of[pos] = bid;
                pos += 1;
            }
        }
        for (r, c, _) in reordered.iter() {
            if r < ord.n_spokes && c < ord.n_spokes {
                assert_eq!(
                    block_of[r], block_of[c],
                    "spoke-spoke edge crosses blocks at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn blocks_sorted_by_ascending_degree() {
        // Cave of 3 nodes where one node has higher within-component degree.
        // Component {2,3,4}: 3-4 edge plus both connect to 2 => degrees
        // within component: 2: 2, 3: 2, 4: 2 -- make asymmetric instead:
        // edges 2-3, 2-4 => deg(2)=2, deg(3)=1, deg(4)=1.
        let edges = vec![(0, 2), (2, 3), (2, 4), (0, 5)];
        let g = Graph::from_edges(6, &edges).unwrap();
        let ord = slashburn(&g, &SlashBurnConfig::with_k(1)).unwrap();
        // Find the block of size 3 and check its last element is node 2.
        let mut pos = 0;
        for &sz in &ord.block_sizes {
            if sz == 3 {
                let members: Vec<usize> = (pos..pos + 3).map(|i| ord.perm.old_of(i)).collect();
                assert_eq!(*members.last().unwrap(), 2);
            }
            pos += sz;
        }
    }

    #[test]
    fn disconnected_input_handled() {
        // Two separate triangles.
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        let g = Graph::from_edges(6, &edges).unwrap();
        let ord = slashburn(&g, &SlashBurnConfig::with_k(1)).unwrap();
        assert_eq!(ord.n_spokes + ord.n_hubs, 6);
        assert!(ord.n_hubs >= 1);
    }

    #[test]
    fn k_larger_than_graph() {
        let g = star(4);
        let ord = slashburn(&g, &SlashBurnConfig::with_k(100)).unwrap();
        // Whole graph is smaller than k: zero iterations; everything is in
        // the "final GCC" hub region.
        assert_eq!(ord.iterations, 0);
        assert_eq!(ord.n_hubs, 4);
        assert_eq!(ord.n_spokes, 0);
    }

    #[test]
    fn empty_edge_graph() {
        let g = Graph::from_edges(5, &[]).unwrap();
        let ord = slashburn(&g, &SlashBurnConfig::with_k(1)).unwrap();
        assert_eq!(ord.n_spokes + ord.n_hubs, 5);
    }

    #[test]
    fn paper_default_k_scales_with_n() {
        let c = SlashBurnConfig::paper_default(10_000);
        assert_eq!(c.k, 10);
        let c = SlashBurnConfig::paper_default(50);
        assert_eq!(c.k, 1);
    }

    #[test]
    fn sum_block_sq_matches_blocks() {
        let ord = SlashBurnOrdering {
            perm: Permutation::identity(6),
            n_spokes: 5,
            n_hubs: 1,
            block_sizes: vec![3, 2],
            iterations: 1,
        };
        assert_eq!(ord.sum_block_sq(), 9 + 4);
    }
}
