//! Regression tests encoding the paper's headline *shape* claims as
//! assertions on small datasets, so the qualitative results of
//! EXPERIMENTS.md cannot silently rot.

use bear_baselines::{Iterative, IterativeConfig, LuDecomp};
use bear_core::rwr::RwrConfig;
use bear_core::{Bear, BearConfig, RwrSolver};
use bear_graph::generators::{rmat, RmatConfig};
use bear_graph::{slashburn, Graph, SlashBurnConfig};
use bear_sparse::mem::MemBudget;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_rmat(p_ul: f64) -> Graph {
    rmat(&RmatConfig { scale: 10, edges: 5_000, p_ul, noise: 0.0 }, &mut StdRng::seed_from_u64(500))
}

/// Figure 5's claim: BEAR-Exact needs less space than the LU baseline.
#[test]
fn bear_uses_less_space_than_lu_baseline() {
    for spec in bear_datasets::small_suite() {
        let g = spec.load();
        let bear = Bear::new(&g, &BearConfig::default()).unwrap();
        let lu = LuDecomp::new(&g, &RwrConfig::default(), &MemBudget::unlimited()).unwrap();
        assert!(
            bear.memory_bytes() < lu.memory_bytes(),
            "{}: BEAR {} !< LU {}",
            spec.name,
            bear.memory_bytes(),
            lu.memory_bytes()
        );
    }
}

/// Figure 1(b)'s claim: BEAR's query beats the iterative method, by a
/// growing margin on spoke-heavy graphs. Wall-clock comparisons are
/// noisy in CI, so the assertion uses a generous 1.5× requirement over
/// the mean of several queries.
#[test]
fn bear_query_faster_than_iterative() {
    let g = bear_datasets::dataset_by_name("small_routing").unwrap().load();
    let bear = Bear::new(&g, &BearConfig::default()).unwrap();
    let it = Iterative::new(&g, &IterativeConfig::default()).unwrap();
    let time = |solver: &dyn RwrSolver| {
        let start = std::time::Instant::now();
        for seed in 0..20 {
            solver.query(seed * 7 % solver.num_nodes()).unwrap();
        }
        start.elapsed().as_secs_f64()
    };
    // Warm up, then measure.
    let _ = time(&bear);
    let bear_t = time(&bear);
    let iter_t = time(&it);
    assert!(iter_t > 1.5 * bear_t, "iterative {iter_t:.6}s not >> BEAR {bear_t:.6}s");
}

/// Figure 7's claim: stronger hub-and-spoke structure (higher p_ul)
/// shrinks n₂, Σn₁ᵢ², and BEAR's space.
#[test]
fn stronger_hub_structure_shrinks_everything() {
    let weak = small_rmat(0.55);
    let strong = small_rmat(0.9);
    let ow = slashburn(&weak, &SlashBurnConfig::paper_default(weak.num_nodes())).unwrap();
    let os = slashburn(&strong, &SlashBurnConfig::paper_default(strong.num_nodes())).unwrap();
    assert!(os.n_hubs < ow.n_hubs, "{} !< {}", os.n_hubs, ow.n_hubs);
    assert!(os.sum_block_sq() < ow.sum_block_sq());
    let bw = Bear::new(&weak, &BearConfig::default()).unwrap();
    let bs = Bear::new(&strong, &BearConfig::default()).unwrap();
    assert!(bs.memory_bytes() < bw.memory_bytes());
}

/// Table 2's claim: the precomputed matrices respect their nnz bounds.
#[test]
fn precomputed_nnz_respects_table2_bounds() {
    for spec in bear_datasets::small_suite() {
        let g = spec.load();
        let bear = Bear::new(&g, &BearConfig::default()).unwrap();
        let st = bear.stats();
        let n1 = st.n1;
        let n2 = st.n2;
        let m = g.num_edges();
        // |H12| + |H21| <= min(2 n1 n2, |H|) (both blocks of H).
        assert!(st.nnz_cross() <= (2 * n1 * n2).min(m + g.num_nodes())); // H has <= m + n entries
                                                                         // |L1^-1| + |U1^-1| <= 2 * sum block^2 (Lemma 1 bound, both factors).
        assert!(
            (st.nnz_spoke_factors() as u128) <= 2 * st.sum_block_sq + 2 * n1 as u128,
            "{}: {} > 2*{}",
            spec.name,
            st.nnz_spoke_factors(),
            st.sum_block_sq
        );
        // |L2^-1| + |U2^-1| <= n2^2 + n2 (both triangles incl. diagonals).
        assert!(st.nnz_hub_factors() <= n2 * n2 + n2);
    }
}

/// Figure 6's claim: drop tolerance trades space monotonically and keeps
/// cosine accuracy ≥ 0.999 at ξ = n⁻¹.
#[test]
fn drop_tolerance_keeps_paper_accuracy_at_n_inverse() {
    for spec in bear_datasets::small_suite() {
        let g = spec.load();
        let exact = Bear::new(&g, &BearConfig::default()).unwrap();
        let xi = 1.0 / g.num_nodes() as f64;
        let approx = Bear::new(&g, &BearConfig::approx(0.05, xi)).unwrap();
        let re = exact.query(1).unwrap();
        let ra = approx.query(1).unwrap();
        let cos = bear_core::metrics::cosine_similarity(&re, &ra);
        assert!(cos > 0.999, "{}: cosine {cos} at xi=n^-1", spec.name);
    }
}

/// Theorem 1, end to end: BEAR-Exact equals a dense solve of Equation 2.
#[test]
fn theorem1_exactness_on_a_weighted_digraph() {
    // Directed, weighted, with a dangling node — the general case.
    let g = Graph::from_weighted_edges(
        6,
        &[
            (0, 1, 2.0),
            (1, 2, 1.0),
            (2, 0, 0.5),
            (2, 3, 3.0),
            (3, 4, 1.0),
            (4, 2, 1.0),
            (0, 5, 1.0), // 5 is dangling
        ],
    )
    .unwrap();
    let c = 0.13;
    let bear = Bear::new(&g, &BearConfig::exact(c)).unwrap();
    let h = bear_core::build_h(&g, &RwrConfig { c, ..RwrConfig::default() }).unwrap();
    let lu = bear_sparse::DenseLu::factor(&h.to_dense()).unwrap();
    for seed in 0..6 {
        let mut rhs = vec![0.0; 6];
        rhs[seed] = c;
        let want = lu.solve(&rhs).unwrap();
        let got = bear.query(seed).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "seed {seed}: {a} vs {b}");
        }
    }
}
