//! The HTTP front-end: accept loop, connection worker pool, request
//! routing, and the fault-to-status mapping.
//!
//! # Architecture
//!
//! ```text
//!            accept thread                 connection workers
//!  TcpListener ──────────▶ JobQueue<TcpStream> ──────────▶ handle_connection
//!  (nonblocking poll)      (bounded backlog;               (parse → route →
//!                           overflow ⇒ 503 + close)         QueryEngine → write)
//! ```
//!
//! The connection queue reuses [`bear_core::engine::queue::JobQueue`] —
//! the same bounded two-condvar queue the query engine itself runs on —
//! so admission control composes: a connection is shed with `503` when
//! the *connection* backlog is full, and an accepted request is shed
//! with `429` when the *query* queue is full.
//!
//! Per-request deadlines arrive as an `X-Deadline-Ms` header and map
//! onto [`QueryOptions::deadline`], which the engine enforces at
//! admission, dequeue, and reply-wait. An already-expired budget
//! (`X-Deadline-Ms: 0`) fails fast at admission with
//! [`Error::Timeout`] → `504` without ever occupying a queue slot.
//!
//! # Lifecycle
//!
//! `/healthz` is liveness (200 whenever the process can answer) while
//! `/readyz` is readiness: 503 during warm-up (no graph published) and
//! from the instant a graceful drain begins. [`ServerHandle::shutdown`]
//! drains: the listener stops, already-queued connections are still
//! served, and workers get [`ServerConfig::drain`] to finish before
//! being force-detached.

use crate::http::{read_request, HttpError, Request, Response};
use crate::registry::{Registry, Tenant};
use bear_core::engine::queue::JobQueue;
use bear_core::{Bear, DegradedInfo, EngineConfig, QueryEngine, QueryOptions};
use bear_sparse::{Error, Result};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` picks a free port).
    pub addr: String,
    /// Connection worker threads (each handles one connection at a
    /// time; keep-alive connections hold a worker between requests).
    pub http_threads: usize,
    /// Bound on accepted-but-unserviced connections; overflow is
    /// answered with a best-effort `503` and closed.
    pub conn_backlog: usize,
    /// Engine configuration used when `/admin/load` builds the engine
    /// for a newly published index version.
    pub engine_config: EngineConfig,
    /// Maximum seeds accepted by one `/v1/batch` request.
    pub max_batch: usize,
    /// Graceful-drain grace period for [`ServerHandle::shutdown`]: after
    /// draining begins, in-flight and already-admitted requests get this
    /// long to finish before still-busy workers are force-detached.
    pub drain: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            http_threads: 4,
            conn_backlog: 128,
            engine_config: EngineConfig::default(),
            max_batch: 1024,
            drain: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// Rejects configurations the server cannot honor.
    pub fn validate(&self) -> Result<()> {
        if self.http_threads == 0 {
            return Err(Error::InvalidConfig {
                param: "http_threads",
                reason: "the connection pool needs at least one thread".into(),
            });
        }
        if self.conn_backlog == 0 {
            return Err(Error::InvalidConfig {
                param: "conn_backlog",
                reason: "a backlog that admits nothing rejects every connection".into(),
            });
        }
        if self.max_batch == 0 {
            return Err(Error::InvalidConfig {
                param: "max_batch",
                reason: "a zero batch bound rejects every batch request".into(),
            });
        }
        self.engine_config.validate()
    }
}

/// Server-level counters, exposed through `/metrics` alongside each
/// tenant engine's [`bear_core::MetricsSnapshot`].
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests parsed off the wire.
    pub http_requests: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with a 4xx status (429 included).
    pub responses_4xx: AtomicU64,
    /// Responses with a 5xx status (503/504 included).
    pub responses_5xx: AtomicU64,
    /// Overloaded requests answered `429 Too Many Requests`.
    pub responses_429: AtomicU64,
    /// Deadline-exceeded requests answered `504 Gateway Timeout`.
    pub responses_504: AtomicU64,
    /// Connections shed because the connection backlog was full.
    pub rejected_connections: AtomicU64,
    /// Connections admitted into the connection queue. Together with
    /// the response counters this lets the drain test prove every
    /// admitted request was answered.
    pub accepted_connections: AtomicU64,
    /// Connections dropped because the wire tore mid-request or
    /// mid-response (read timeout after partial bytes, failed write).
    pub torn_connections: AtomicU64,
    /// Successful `/admin/load` publishes.
    pub hot_swaps: AtomicU64,
}

impl ServerMetrics {
    fn record_response(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.fetch_add(1, Ordering::Relaxed),
            429 => {
                self.responses_4xx.fetch_add(1, Ordering::Relaxed);
                self.responses_429.fetch_add(1, Ordering::Relaxed)
            }
            400..=499 => self.responses_4xx.fetch_add(1, Ordering::Relaxed),
            504 => {
                self.responses_5xx.fetch_add(1, Ordering::Relaxed);
                self.responses_504.fetch_add(1, Ordering::Relaxed)
            }
            _ => self.responses_5xx.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// Shared state every connection worker routes against.
struct ServerCtx {
    registry: Arc<Registry>,
    config: ServerConfig,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    /// Set when a graceful drain begins: `/readyz` flips to 503 (load
    /// balancers stop routing here) while `/healthz` stays 200 (the
    /// process is alive and finishing admitted work).
    draining: AtomicBool,
    /// Connection workers that have exited their pop loop. The drain
    /// waits on this (std threads cannot be joined with a timeout).
    workers_exited: AtomicU64,
}

/// A running server. Dropping the handle shuts it down; use
/// [`ServerHandle::shutdown`] for an explicit, joined stop.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerCtx>,
    conns: Arc<JobQueue<TcpStream>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server routes against — publish on it to
    /// hot-swap an index version while the server keeps answering.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.ctx.registry
    }

    /// Point-in-time server-level counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.ctx.metrics
    }

    /// Gracefully drains and stops the server with the configured
    /// [`ServerConfig::drain`] grace period. Returns `true` when every
    /// worker finished within the grace (a clean drain).
    ///
    /// Drain protocol: `/readyz` flips to 503 immediately, the listener
    /// stops accepting, already-queued connections are still dequeued
    /// and served, keep-alive connections are told `Connection: close`
    /// after their in-flight response, and idle ones close at their
    /// next read-timeout tick. Workers that are still busy when the
    /// grace expires are force-detached (their sockets die with the
    /// process), never blocking shutdown indefinitely.
    pub fn shutdown(mut self) -> bool {
        let grace = self.ctx.config.drain;
        self.stop(grace)
    }

    /// [`ServerHandle::shutdown`] with an explicit grace period.
    pub fn shutdown_within(mut self, grace: Duration) -> bool {
        self.stop(grace)
    }

    fn stop(&mut self, grace: Duration) -> bool {
        self.ctx.draining.store(true, Ordering::SeqCst);
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.conns.close();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let total = self.workers.len() as u64;
        let deadline = std::time::Instant::now() + grace;
        // Poll-with-sleep instead of a timed join: std threads offer no
        // join-with-timeout, and the workers' 200ms read timeout bounds
        // how long an *idle* worker can lag; only a genuinely stuck
        // in-flight request can exhaust the grace.
        while self.ctx.workers_exited.load(Ordering::SeqCst) < total
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        let clean = self.ctx.workers_exited.load(Ordering::SeqCst) >= total;
        if clean {
            for t in self.workers.drain(..) {
                let _ = t.join();
            }
        } else {
            // Force-close: detach the stragglers. They hold no lock the
            // process needs, and their connections are abandoned by
            // design once the grace is spent.
            self.workers.clear();
        }
        clean
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let grace = self.ctx.config.drain;
        self.stop(grace);
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("graphs", &self.ctx.registry.names())
            .finish()
    }
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `config.addr`, spawns the accept thread and
    /// `config.http_threads` connection workers, and returns a handle.
    /// The server answers queries for every graph in `registry`,
    /// including versions published after startup.
    pub fn start(registry: Arc<Registry>, config: ServerConfig) -> Result<ServerHandle> {
        config.validate()?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::InvalidStructure(format!("bind {}: {e}", config.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::InvalidStructure(format!("set_nonblocking: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::InvalidStructure(format!("local_addr: {e}")))?;

        let ctx = Arc::new(ServerCtx {
            registry,
            metrics: ServerMetrics::default(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            workers_exited: AtomicU64::new(0),
            config,
        });
        let conns = Arc::new(JobQueue::bounded(ctx.config.conn_backlog));

        let accept_thread = {
            let ctx = Arc::clone(&ctx);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("bear-http-accept".into())
                .spawn(move || accept_loop(&listener, &conns, &ctx))
                .map_err(|e| Error::InvalidStructure(format!("spawn accept thread: {e}")))?
        };
        let workers = (0..ctx.config.http_threads)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let conns = Arc::clone(&conns);
                std::thread::Builder::new()
                    .name(format!("bear-http-{i}"))
                    .spawn(move || {
                        // `pop` keeps returning already-queued
                        // connections after `close()`, so every admitted
                        // connection is served during a drain.
                        while let Some(stream) = conns.pop() {
                            handle_connection(stream, &ctx);
                        }
                        ctx.workers_exited.fetch_add(1, Ordering::SeqCst);
                    })
                    .map_err(|e| Error::InvalidStructure(format!("spawn http worker: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;

        Ok(ServerHandle { addr, ctx, conns, accept_thread: Some(accept_thread), workers })
    }
}

/// Polls the nonblocking listener so shutdown is observed within one
/// tick even when no connection ever arrives.
fn accept_loop(listener: &TcpListener, conns: &JobQueue<TcpStream>, ctx: &ServerCtx) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if conns.push(stream).is_ok() {
                    ctx.metrics.accepted_connections.fetch_add(1, Ordering::Relaxed);
                } else {
                    // Either backlog overflow (QueueFull) or shutdown
                    // racing the accept; the pushed stream was dropped
                    // (= connection reset), which is the correct signal
                    // for a client to back off and retry.
                    ctx.metrics.rejected_connections.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Serves one connection until the peer closes, a request asks for
/// `Connection: close`, the wire breaks, or shutdown begins.
fn handle_connection(stream: TcpStream, ctx: &ServerCtx) {
    // The read timeout doubles as the shutdown poll interval for idle
    // keep-alive connections.
    if stream.set_read_timeout(Some(Duration::from_millis(200))).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(req)) => {
                ctx.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                let resp = route(ctx, &req);
                ctx.metrics.record_response(resp.status);
                let keep = req.keep_alive && !ctx.shutdown.load(Ordering::SeqCst);
                if resp.write_to(&mut writer, keep).is_err() {
                    // The wire broke mid-response: the peer would see a
                    // truncated body, and any further response on this
                    // socket could be misattributed. Count it and tear
                    // the connection down both ways.
                    ctx.metrics.torn_connections.fetch_add(1, Ordering::Relaxed);
                    let _ = writer.shutdown(std::net::Shutdown::Both);
                    return;
                }
                if !keep {
                    return;
                }
            }
            // Idle timeout with *zero* request bytes consumed: safe to
            // keep waiting (this is also the shutdown poll tick).
            Err(HttpError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            // Timeout or failure *mid-request*: bytes were consumed and
            // lost, so looping back into the parser would read from the
            // middle of a torn request. Close, never retry.
            Err(HttpError::TornRead(_)) => {
                ctx.metrics.torn_connections.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(HttpError::Io(_)) => return,
            Err(err) => {
                let status = match err {
                    HttpError::TooLarge => 413,
                    _ => 400,
                };
                ctx.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                ctx.metrics.record_response(status);
                let _ = Response::json(status, error_body(&format!("{err}"), "bad_request"))
                    .write_to(&mut writer, false);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Routing and handlers
// ---------------------------------------------------------------------------

fn route(ctx: &ServerCtx, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(ctx),
        ("GET", "/readyz") => handle_readyz(ctx),
        ("GET", "/metrics") => handle_metrics(ctx),
        ("GET", "/v1/query") => handle_query(ctx, req),
        ("GET", "/v1/topk") => handle_topk(ctx, req),
        ("GET", "/v1/batch") => handle_batch(ctx, req),
        ("POST", "/admin/load") => handle_admin_load(ctx, req),
        (_, "/healthz" | "/readyz" | "/metrics" | "/v1/query" | "/v1/topk" | "/v1/batch") => {
            Response::json(405, error_body("use GET for this endpoint", "method_not_allowed"))
                .header("Allow", "GET")
        }
        (_, "/admin/load") => {
            Response::json(405, error_body("use POST for this endpoint", "method_not_allowed"))
                .header("Allow", "POST")
        }
        _ => Response::json(404, error_body(&format!("no route '{}'", req.path), "not_found")),
    }
}

/// Maps the engine/persistence error taxonomy onto HTTP statuses. The
/// overload and deadline faults get dedicated codes so clients can
/// implement retry policy without parsing bodies — the HTTP mirror of
/// the CLI's exit codes 3 and 4.
fn error_response(e: &Error) -> Response {
    // Every `Error` variant is named (no `_` arm) so adding a variant
    // forces a status decision here — the L5 lint checks exactly that.
    let (status, kind) = match e {
        Error::Timeout { .. } => (504, "timeout"),
        Error::QueueFull { .. } => (429, "overloaded"),
        Error::PoolShutDown => (503, "shutting_down"),
        Error::IndexOutOfBounds { .. } => (400, "bad_seed"),
        Error::InvalidConfig { .. } | Error::InvalidStructure(_) => (400, "bad_request"),
        // A corrupt on-disk artifact is a server-side data fault; the
        // admin-load handler downgrades it to a 400 operator error and
        // reports the quarantine.
        Error::CorruptIndex { .. } => (500, "corrupt_index"),
        Error::DimensionMismatch { .. }
        | Error::SingularMatrix { .. }
        | Error::OutOfBudget { .. }
        | Error::DidNotConverge { .. }
        | Error::NonFiniteValue { .. }
        | Error::WorkerPanicked { .. }
        | Error::Cancelled
        | Error::KernelPanicked { .. } => (500, "internal"),
    };
    let resp = Response::json(status, error_body(&format!("{e}"), kind));
    match status {
        429 | 503 => resp.header("Retry-After", "1"),
        _ => resp,
    }
}

fn error_body(message: &str, kind: &str) -> String {
    format!("{{\"error\":{},\"kind\":{}}}", json_string(message), json_string(kind))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` with Rust's shortest round-trip representation, so
/// a client that parses the JSON number back recovers the exact bits —
/// the property the save→load→serve differential test pins.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Resolves the tenant for a request: explicit `graph` parameter, or
/// the single registered graph when unambiguous.
fn resolve_tenant(ctx: &ServerCtx, req: &Request) -> std::result::Result<Arc<Tenant>, Response> {
    let names = ctx.registry.names();
    let name = match req.query_param("graph") {
        Some(name) => name.to_string(),
        None if names.len() == 1 => names[0].clone(),
        None => {
            return Err(Response::json(
                400,
                error_body(
                    &format!("graph parameter required (registered: {})", names.join(", ")),
                    "bad_request",
                ),
            ))
        }
    };
    ctx.registry.get(&name).ok_or_else(|| {
        Response::json(404, error_body(&format!("unknown graph '{name}'"), "not_found"))
    })
}

/// Parses the `X-Deadline-Ms` header into [`QueryOptions`].
fn query_options(req: &Request) -> std::result::Result<QueryOptions, Response> {
    let deadline = match req.header("x-deadline-ms") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => {
                return Err(Response::json(
                    400,
                    error_body(&format!("bad X-Deadline-Ms '{raw}'"), "bad_request"),
                ))
            }
        },
    };
    Ok(QueryOptions { deadline, cancel: None })
}

fn parse_usize(req: &Request, name: &str) -> std::result::Result<usize, Response> {
    match req.query_param(name) {
        Some(raw) => raw.parse().map_err(|_| {
            Response::json(
                400,
                error_body(&format!("parameter {name}='{raw}' is not a node count"), "bad_request"),
            )
        }),
        None => Err(Response::json(
            400,
            error_body(&format!("parameter {name} required"), "bad_request"),
        )),
    }
}

/// Tags a response with the serving version and, for degraded answers,
/// the full degradation ladder context (`X-Degraded` reason plus the
/// fallback's residual / error bound / iteration count).
fn tag(resp: Response, tenant: &Tenant, degraded: Option<&DegradedInfo>) -> Response {
    let resp = resp.header("X-Graph-Version", tenant.version.to_string());
    match degraded {
        None => resp,
        Some(info) => resp
            .header("X-Degraded", format!("{}", info.reason))
            .header("X-Residual", format!("{:e}", info.residual))
            .header("X-Error-Bound", format!("{:e}", info.error_bound))
            .header("X-Iterations", info.iterations.to_string()),
    }
}

fn handle_healthz(ctx: &ServerCtx) -> Response {
    Response::text(200, format!("ok {} graph(s)\n", ctx.registry.len()))
}

/// `GET /readyz`: readiness, distinct from liveness. 503 while the
/// server is draining (shutdown in progress: finish in-flight work but
/// route no new traffic here) or warming (no graph published yet), 200
/// once it can usefully answer queries. `/healthz` stays 200 through
/// both states — the process is alive; restarting it would not help.
fn handle_readyz(ctx: &ServerCtx) -> Response {
    if ctx.draining.load(Ordering::SeqCst) {
        return Response::text(503, "draining\n".to_string()).header("Retry-After", "1");
    }
    if ctx.registry.is_empty() {
        return Response::text(503, "warming: no graph published\n".to_string())
            .header("Retry-After", "1");
    }
    Response::text(200, format!("ready {} graph(s)\n", ctx.registry.len()))
}

fn handle_query(ctx: &ServerCtx, req: &Request) -> Response {
    let tenant = match resolve_tenant(ctx, req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let seed = match parse_usize(req, "seed") {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let opts = match query_options(req) {
        Ok(o) => o,
        Err(resp) => return resp,
    };
    match tenant.engine.serve(seed, &opts) {
        Ok(served) => {
            let mut body = format!("{{\"version\":{},\"seed\":{seed},\"scores\":[", tenant.version);
            push_scores(&mut body, &served.scores);
            body.push_str("]}");
            tag(Response::json(200, body), &tenant, served.degraded.as_ref())
        }
        Err(e) => tag(error_response(&e), &tenant, None),
    }
}

fn handle_topk(ctx: &ServerCtx, req: &Request) -> Response {
    let tenant = match resolve_tenant(ctx, req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let seed = match parse_usize(req, "seed") {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let k = match req.query_param("k") {
        None => 10,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) => k,
            Err(_) => {
                return Response::json(
                    400,
                    error_body(&format!("parameter k='{raw}' is not a count"), "bad_request"),
                )
            }
        },
    };
    // k = 0 used to be accepted and answered with an empty 200, which
    // hid typoed requests (`k=` → 0). An empty ranking is never what a
    // client meant, so it is a request error.
    if k == 0 {
        return Response::json(400, error_body("parameter k must be >= 1", "bad_request"));
    }
    let opts = match query_options(req) {
        Ok(o) => o,
        Err(resp) => return resp,
    };
    // Route through the engine's top-k path: same admission control,
    // deadline enforcement, and degradation ladder as `/v1/query`, plus
    // the pruned solver and the prefix-aware top-k cache.
    match tenant.engine.query_top_k(seed, k, &opts) {
        Ok(served) => {
            let mut body =
                format!("{{\"version\":{},\"seed\":{seed},\"k\":{k},\"nodes\":[", tenant.version);
            for (i, s) in served.nodes.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!("{{\"node\":{},\"score\":{}}}", s.node, json_f64(s.score)));
            }
            body.push_str("]}");
            tag(Response::json(200, body), &tenant, served.degraded.as_ref())
        }
        Err(e) => tag(error_response(&e), &tenant, None),
    }
}

fn handle_batch(ctx: &ServerCtx, req: &Request) -> Response {
    let tenant = match resolve_tenant(ctx, req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let raw = match req.query_param("seeds") {
        Some(raw) if !raw.is_empty() => raw,
        _ => {
            return Response::json(
                400,
                error_body("parameter seeds required, e.g. seeds=0,3,7", "bad_request"),
            )
        }
    };
    let mut seeds = Vec::new();
    for tok in raw.split(',') {
        match tok.trim().parse::<usize>() {
            Ok(s) => seeds.push(s),
            Err(_) => {
                return Response::json(
                    400,
                    error_body(&format!("seed '{tok}' is not a node id"), "bad_request"),
                )
            }
        }
    }
    if seeds.len() > ctx.config.max_batch {
        return Response::json(
            400,
            error_body(
                &format!("batch of {} exceeds the bound of {}", seeds.len(), ctx.config.max_batch),
                "bad_request",
            ),
        );
    }
    let opts = match query_options(req) {
        Ok(o) => o,
        Err(resp) => return resp,
    };
    match tenant.engine.serve_batch(&seeds, &opts) {
        Ok(answers) => {
            let degraded = answers.iter().filter(|s| !s.is_exact()).count();
            let mut body = format!(
                "{{\"version\":{},\"count\":{},\"degraded\":{degraded},\"results\":[",
                tenant.version,
                seeds.len()
            );
            for (i, served) in answers.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!("{{\"seed\":{},\"scores\":[", seeds[i]));
                push_scores(&mut body, &served.scores);
                body.push_str("]}");
            }
            body.push_str("]}");
            let first_degraded = answers.iter().find_map(|s| s.degraded.as_ref());
            tag(Response::json(200, body), &tenant, first_degraded)
                .header("X-Degraded-Count", degraded.to_string())
        }
        Err(e) => tag(error_response(&e), &tenant, None),
    }
}

fn push_scores(body: &mut String, scores: &[f64]) {
    for (i, v) in scores.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&json_f64(*v));
    }
}

/// `POST /admin/load?graph=NAME&index=PATH`: loads a persisted index
/// from the server's filesystem, builds a fresh engine with the
/// server's engine configuration, and atomically publishes it as the
/// graph's next version. Queries keep flowing on the previous version
/// for the whole load; in-flight queries finish on it even after the
/// swap.
fn handle_admin_load(ctx: &ServerCtx, req: &Request) -> Response {
    let Some(name) = req.query_param("graph") else {
        return Response::json(400, error_body("graph parameter required", "bad_request"));
    };
    let Some(index) = req.query_param("index") else {
        return Response::json(400, error_body("index parameter required", "bad_request"));
    };
    // `load_or_quarantine`: a checksum/structure failure renames the
    // artifact to `<path>.corrupt` so a crash-looping operator script
    // cannot keep re-publishing a damaged file.
    let engine = Bear::load_or_quarantine(Path::new(index))
        .and_then(|bear| QueryEngine::new(Arc::new(bear), ctx.config.engine_config.clone()));
    match engine {
        Ok(engine) => {
            let nodes = engine.bear().num_nodes();
            let version = ctx.registry.publish(name, Arc::new(engine));
            ctx.metrics.hot_swaps.fetch_add(1, Ordering::Relaxed);
            Response::json(
                200,
                format!(
                    "{{\"graph\":{},\"version\":{version},\"nodes\":{nodes}}}",
                    json_string(name)
                ),
            )
        }
        Err(e) => {
            // A bad path or corrupt index is an operator error; the
            // currently published version keeps serving untouched.
            let resp = error_response(&e);
            match resp.status {
                // Don't let persistence-layer taxonomy leak 5xx here.
                500 => Response::json(400, error_body(&format!("{e}"), "bad_index")),
                _ => resp,
            }
        }
    }
}

/// `GET /metrics`: a flat text exposition (Prometheus-style lines) of
/// the server counters plus every tenant engine's snapshot.
fn handle_metrics(ctx: &ServerCtx) -> Response {
    use std::fmt::Write as _;
    let m = &ctx.metrics;
    let mut out = String::new();
    let _ = writeln!(out, "bear_http_requests_total {}", m.http_requests.load(Ordering::Relaxed));
    for (class, v) in
        [("2xx", &m.responses_2xx), ("4xx", &m.responses_4xx), ("5xx", &m.responses_5xx)]
    {
        let _ = writeln!(
            out,
            "bear_http_responses_total{{class=\"{class}\"}} {}",
            v.load(Ordering::Relaxed)
        );
    }
    let _ =
        writeln!(out, "bear_http_responses_429_total {}", m.responses_429.load(Ordering::Relaxed));
    let _ =
        writeln!(out, "bear_http_responses_504_total {}", m.responses_504.load(Ordering::Relaxed));
    let _ = writeln!(
        out,
        "bear_http_rejected_connections_total {}",
        m.rejected_connections.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "bear_http_accepted_connections_total {}",
        m.accepted_connections.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "bear_http_torn_connections_total {}",
        m.torn_connections.load(Ordering::Relaxed)
    );
    let _ = writeln!(out, "bear_hot_swaps_total {}", m.hot_swaps.load(Ordering::Relaxed));
    for name in ctx.registry.names() {
        let Some(tenant) = ctx.registry.get(&name) else { continue };
        let s = tenant.engine.metrics();
        let label = format!("{{graph={}}}", json_string(&name));
        let _ = writeln!(out, "bear_graph_version{label} {}", tenant.version);
        for (metric, v) in [
            ("bear_queries_total", s.queries),
            ("bear_cache_hits_total", s.cache_hits),
            ("bear_timeouts_total", s.timeouts),
            ("bear_queue_rejections_total", s.queue_rejections),
            ("bear_shed_jobs_total", s.shed_jobs),
            ("bear_degraded_total", s.degraded),
            ("bear_worker_panics_total", s.worker_panics),
            ("bear_block_solves_total", s.block_solves),
            ("bear_topk_pruned_queries_total", s.topk_pruned_queries),
            ("bear_topk_certified_total", s.topk_certified),
            ("bear_topk_fallbacks_total", s.topk_fallbacks),
            ("bear_topk_candidates_total", s.topk_candidates),
            ("bear_topk_nodes_pruned_total", s.topk_nodes_pruned),
            ("bear_pager_hits_total", s.pager_hits),
            ("bear_pager_misses_total", s.pager_misses),
            ("bear_pager_evictions_total", s.pager_evictions),
            ("bear_pager_resident_bytes", s.pager_resident_bytes),
            ("bear_pager_resident_blocks", s.pager_resident_blocks),
        ] {
            let _ = writeln!(out, "{metric}{label} {v}");
        }
        let _ = writeln!(out, "bear_topk_prune_ratio{label} {}", s.topk_prune_ratio());
        for (metric, d) in [
            ("bear_latency_p50_seconds", s.p50),
            ("bear_latency_p99_seconds", s.p99),
            ("bear_latency_p50_amortized_seconds", s.p50_amortized),
        ] {
            let _ = writeln!(out, "{metric}{label} {}", d.as_secs_f64());
        }
        let _ = writeln!(out, "bear_cache_hit_rate{label} {}", s.cache_hit_rate());
        let _ = writeln!(out, "bear_avg_block_width{label} {}", s.avg_block_width());
    }
    Response::text(200, out)
}
