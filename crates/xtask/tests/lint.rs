//! Integration tests for the bear-lint engine (`xtask::lint`):
//! fixture-driven true-positive/true-negative checks per rule,
//! allow-directive semantics, ratchet behavior (new findings fail, stale
//! entries fail until `--update-baseline`, the baseline never grows),
//! and a clean-at-HEAD scan of the real workspace.

use std::path::{Path, PathBuf};
use xtask::lint::baseline::Baseline;
use xtask::lint::report::Finding;
use xtask::lint::{
    self, Format, LintConfig, LintOptions, RuleScope, EXIT_NEW_FINDINGS, EXIT_STALE_BASELINE,
};

/// The committed fixture tree (`crates/xtask/tests/fixtures`).
fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

/// A lint config mapping each rule onto its fixture directory.
fn fixture_config() -> LintConfig {
    LintConfig {
        root: fixture_root(),
        l1: RuleScope { include: vec!["hot".into()], exclude: Vec::new() },
        l2: RuleScope { include: vec!["kernels".into()], exclude: Vec::new() },
        l3: RuleScope { include: vec!["trust".into()], exclude: Vec::new() },
        l4: RuleScope { include: vec!["sync".into()], exclude: vec!["sync/sync.rs".into()] },
        l5_enum: Some(("errors/error.rs".into(), "Error".into())),
        l5_targets: vec![
            ("errors/map.rs".into(), "full_map".into()),
            ("errors/map.rs".into(), "partial_map".into()),
        ],
        baseline: PathBuf::from("no-such-baseline.toml"),
    }
}

/// Findings from the fixture tree, filtered to one file.
fn fixture_findings(file: &str) -> Vec<Finding> {
    lint::scan(&fixture_config())
        .expect("fixture scan")
        .into_iter()
        .filter(|f| f.file == file)
        .collect()
}

#[test]
fn l1_catches_hot_path_panics_and_spares_safe_forms() {
    let found = fixture_findings("hot/serving.rs");
    let count = |cat: &str| found.iter().filter(|f| f.category == cat).count();
    assert_eq!(count("unwrap"), 1, "{found:?}");
    assert_eq!(count("expect"), 1, "{found:?}");
    assert_eq!(count("panic-macro"), 1, "{found:?}");
    assert_eq!(count("slice-index"), 1, "{found:?}");
    // Nothing else: `get`, `debug_assert!`, slice types in signatures,
    // string/comment contents, and test-module code are all spared.
    assert_eq!(found.len(), 4, "{found:?}");
    assert!(found.iter().all(|f| f.rule == "L1"), "{found:?}");
}

#[test]
fn allow_with_reason_suppresses_but_reasonless_does_not() {
    let found = fixture_findings("hot/allow.rs");
    // The two documented directives suppress their unwraps; the
    // reason-less one leaves its finding AND reports the bad directive.
    assert_eq!(found.iter().filter(|f| f.category == "unwrap").count(), 1, "{found:?}");
    assert_eq!(found.iter().filter(|f| f.category == "malformed-allow").count(), 1, "{found:?}");
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn l2_catches_kernel_allocations_and_spares_helpers() {
    let found = fixture_findings("kernels/kernels.rs");
    // Vec::new + .collect() + vec![] in bad_axpy_into, .to_vec() in
    // bad_norm_acc; the clean kernel and the non-kernel helper are spared.
    assert_eq!(found.len(), 4, "{found:?}");
    assert!(found.iter().all(|f| f.rule == "L2" && f.category == "alloc"), "{found:?}");
    assert!(
        found
            .iter()
            .all(|f| f.message.contains("bad_axpy_into") || f.message.contains("bad_norm_acc")),
        "{found:?}"
    );
}

#[test]
fn l3_catches_raw_constructor_calls_only() {
    let found = fixture_findings("trust/consume.rs");
    // One call in tp_raw; the audited path, the local definition, and
    // the test-module call are spared.
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, "L3");
    assert!(found[0].message.contains("from_parts"), "{found:?}");
}

#[test]
fn l4_catches_std_sync_locks_and_respects_the_shim_exclude() {
    let found = fixture_findings("sync/locks.rs");
    // Condvar + Mutex in the brace import, RwLock twice in tp_inline;
    // atomics, Arc, and the crate::sync path are spared.
    assert_eq!(found.len(), 4, "{found:?}");
    assert!(found.iter().all(|f| f.rule == "L4" && f.category == "std-sync"), "{found:?}");
    // The shim file itself is carved out by the exclude list.
    assert!(fixture_findings("sync/sync.rs").is_empty());
}

#[test]
fn l5_flags_the_variant_hidden_under_a_catch_all() {
    let found = fixture_findings("errors/map.rs");
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, "L5");
    assert_eq!(found[0].fingerprint, "partial_map:missing-arm:Invalid");
    // full_map names every variant and produces nothing.
    assert!(found[0].message.contains("partial_map"), "{found:?}");
}

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("bear-lint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("hot")).expect("create temp fixture tree");
        TempDir(dir)
    }

    fn write_hot(&self, body: &str) {
        std::fs::write(self.0.join("hot").join("main.rs"), body).expect("write fixture");
    }

    fn config(&self) -> LintConfig {
        LintConfig {
            root: self.0.clone(),
            l1: RuleScope { include: vec!["hot".into()], exclude: Vec::new() },
            l2: RuleScope::default(),
            l3: RuleScope::default(),
            l4: RuleScope::default(),
            l5_enum: None,
            l5_targets: Vec::new(),
            baseline: PathBuf::from("baseline.toml"),
        }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn text_opts() -> LintOptions {
    LintOptions { update_baseline: false, format: Format::Text, output: None }
}

// One unwrap per line: the fingerprint is the trimmed line text, so
// removing the `+ b.unwrap()` line leaves the others' identities intact
// (stale-only), and repeating it exceeds the baselined count (new).
const TWO_UNWRAPS: &str =
    "pub fn f(a: Option<u8>, b: Option<u8>) -> u8 {\n    a.unwrap()\n        + b.unwrap()\n}\n";
const THREE_UNWRAPS: &str = "pub fn f(a: Option<u8>, b: Option<u8>) -> u8 {\n    a.unwrap()\n        + b.unwrap()\n        + b.unwrap()\n}\n";
const ONE_UNWRAP: &str = "pub fn f(a: Option<u8>, b: Option<u8>) -> u8 {\n    a.unwrap()\n}\n";

#[test]
fn ratchet_new_findings_fail_then_baseline_tolerates_them() {
    let dir = TempDir::new("ratchet-new");
    dir.write_hot(TWO_UNWRAPS);
    let config = dir.config();

    // No baseline yet: every finding is new.
    assert_eq!(lint::check(&config, &text_opts()).unwrap(), EXIT_NEW_FINDINGS);

    // Bootstrap, then the same debt is tolerated.
    let update = LintOptions { update_baseline: true, ..text_opts() };
    assert_eq!(lint::check(&config, &update).unwrap(), 0);
    assert_eq!(lint::check(&config, &text_opts()).unwrap(), 0);

    // A new finding (a repeated line whose count now exceeds its
    // baselined count) fails despite the baseline.
    dir.write_hot(THREE_UNWRAPS);
    assert_eq!(lint::check(&config, &text_opts()).unwrap(), EXIT_NEW_FINDINGS);

    // --update-baseline refuses to grow: still failing, file unchanged.
    let before = std::fs::read_to_string(config.baseline_path()).unwrap();
    assert_eq!(lint::check(&config, &update).unwrap(), EXIT_NEW_FINDINGS);
    let after = std::fs::read_to_string(config.baseline_path()).unwrap();
    assert_eq!(before, after, "a failing --update-baseline must not touch the file");
}

#[test]
fn ratchet_paid_down_debt_is_stale_until_updated() {
    let dir = TempDir::new("ratchet-stale");
    dir.write_hot(TWO_UNWRAPS);
    let config = dir.config();
    let update = LintOptions { update_baseline: true, ..text_opts() };
    assert_eq!(lint::check(&config, &update).unwrap(), 0);

    // Fix part of the debt: the leftover baseline entry is stale and
    // fails the gate so the recorded debt cannot silently regrow.
    dir.write_hot(ONE_UNWRAP);
    assert_eq!(lint::check(&config, &text_opts()).unwrap(), EXIT_STALE_BASELINE);

    // --update-baseline shrinks it; the gate is clean again and the
    // recorded total went down.
    let before = Baseline::load(&config.baseline_path()).unwrap().unwrap().total();
    assert_eq!(lint::check(&config, &update).unwrap(), 0);
    let after = Baseline::load(&config.baseline_path()).unwrap().unwrap().total();
    assert!(after < before, "baseline must shrink ({before} -> {after})");
    assert_eq!(lint::check(&config, &text_opts()).unwrap(), 0);
}

#[test]
fn json_report_carries_statuses_and_summary() {
    let dir = TempDir::new("json");
    dir.write_hot(ONE_UNWRAP);
    let config = dir.config();
    let out_path = dir.0.join("report.json");
    let opts = LintOptions {
        update_baseline: false,
        format: Format::Json,
        output: Some(out_path.clone()),
    };
    assert_eq!(lint::check(&config, &opts).unwrap(), EXIT_NEW_FINDINGS);
    let report = std::fs::read_to_string(&out_path).unwrap();
    assert!(report.contains("\"rule\": \"L1\""), "{report}");
    assert!(report.contains("\"status\": \"new\""), "{report}");
    assert!(report.contains("\"summary\""), "{report}");
}

#[test]
fn workspace_scan_is_clean_at_head() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let config = LintConfig::workspace(root);
    let findings = lint::scan(&config).expect("workspace scan");
    let baseline = Baseline::load(&config.baseline_path())
        .expect("read baseline")
        .expect("crates/xtask/lint-baseline.toml is committed");
    let cmp = baseline.compare(&findings);
    assert!(cmp.new.is_empty(), "unbaselined findings at HEAD: {:#?}", cmp.new);
    assert!(cmp.stale.is_empty(), "stale baseline entries at HEAD: {:?}", cmp.stale);
}
