//! Integration test: every *exact* method (BEAR-Exact, inversion, LU
//! decomposition, QR decomposition, and the iterative method at tight
//! tolerance) computes the same RWR scores on every small-suite dataset —
//! the paper's Theorem 1 checked end-to-end across the whole stack.

use bear_baselines::{Inversion, Iterative, IterativeConfig, LuDecomp, QrDecomp};
use bear_core::rwr::RwrConfig;
use bear_core::{Bear, BearConfig, RwrSolver};
use bear_datasets::small_suite;
use bear_sparse::mem::MemBudget;

fn solvers_for(g: &bear_graph::Graph) -> Vec<(&'static str, Box<dyn RwrSolver>)> {
    let rwr = RwrConfig::default();
    let budget = MemBudget::unlimited();
    vec![
        ("bear", Box::new(Bear::new(g, &BearConfig::exact(rwr.c)).unwrap()) as Box<dyn RwrSolver>),
        ("inversion", Box::new(Inversion::new(g, &rwr, &budget).unwrap())),
        ("lu", Box::new(LuDecomp::new(g, &rwr, &budget).unwrap())),
        ("qr", Box::new(QrDecomp::new(g, &rwr, &budget).unwrap())),
        (
            "iterative",
            Box::new(
                Iterative::new(g, &IterativeConfig { epsilon: 1e-12, ..Default::default() })
                    .unwrap(),
            ),
        ),
    ]
}

#[test]
fn all_exact_methods_agree_on_every_small_dataset() {
    for spec in small_suite() {
        let g = spec.load();
        let solvers = solvers_for(&g);
        let n = g.num_nodes();
        let seeds: Vec<usize> = (0..5).map(|i| (i * 977) % n).collect();
        for &seed in &seeds {
            let reference = solvers[0].1.query(seed).unwrap();
            for (name, solver) in &solvers[1..] {
                let r = solver.query(seed).unwrap();
                for (i, (a, b)) in r.iter().zip(&reference).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-6,
                        "{}: {name} disagrees with BEAR at node {i} for seed {seed}: {a} vs {b}",
                        spec.name
                    );
                }
            }
        }
    }
}

#[test]
fn exact_methods_agree_on_ppr_distributions() {
    let spec = &small_suite()[0];
    let g = spec.load();
    let n = g.num_nodes();
    let mut q = vec![0.0; n];
    for i in 0..10 {
        q[(i * 131) % n] += 0.1;
    }
    let solvers = solvers_for(&g);
    let reference = solvers[0].1.query_distribution(&q).unwrap();
    for (name, solver) in &solvers[1..] {
        let r = solver.query_distribution(&q).unwrap();
        for (a, b) in r.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-6, "{name} PPR disagrees: {a} vs {b}");
        }
    }
}

#[test]
fn scores_are_nonnegative_and_bounded() {
    for spec in small_suite() {
        let g = spec.load();
        let bear = Bear::new(&g, &BearConfig::default()).unwrap();
        let r = bear.query(0).unwrap();
        assert!(r.iter().all(|&v| v >= -1e-12), "{}: negative score", spec.name);
        let sum: f64 = r.iter().sum();
        assert!(sum <= 1.0 + 1e-9, "{}: total mass {sum} > 1", spec.name);
    }
}

#[test]
fn bear_is_deterministic() {
    let g = small_suite()[0].load();
    let b1 = Bear::new(&g, &BearConfig::default()).unwrap();
    let b2 = Bear::new(&g, &BearConfig::default()).unwrap();
    assert_eq!(b1.query(3).unwrap(), b2.query(3).unwrap());
    assert_eq!(b1.memory_bytes(), b2.memory_bytes());
}
