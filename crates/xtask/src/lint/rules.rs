//! The five repo-specific rules (L1–L5).
//!
//! Each rule is a pure function from a parsed [`SourceFile`] (plus rule
//! scope from [`LintConfig`](super::LintConfig)) to findings. Rules see
//! blanked code only — string contents and comments can never trip them —
//! and every finding carries a content fingerprint so the ratchet
//! baseline survives line drift.

use super::report::Finding;
use super::source::{enum_variants, FnSpan, SourceFile, Token};

/// Keywords that may directly precede `[` without forming an index
/// expression (`&mut [f64]`, `impl AsRef<[u8]>`, `return [a, b]`, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "dyn", "else", "fn", "for", "if", "impl", "in",
    "let", "loop", "match", "move", "mut", "pub", "ref", "return", "static", "type", "unsafe",
    "where", "while", "yield",
];

/// Panicking macros L1 rejects in hot paths. `debug_assert*` is allowed:
/// it compiles out of release serving builds.
const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Allocation constructors L2 rejects inside `*_into`/`*_acc` kernels
/// when invoked as `Type::method(...)`.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("HashMap", "new"),
    ("BTreeMap", "new"),
    ("VecDeque", "new"),
];

/// Allocating methods L2 rejects when invoked as `.method(...)`.
const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_vec", "to_owned", "to_string"];

/// Allocating macros L2 rejects.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Raw constructors L3 rejects outside `bear-sparse`: they skip (part of)
/// the invariant audit that `try_from_parts` performs.
const RAW_CONSTRUCTORS: &[&str] = &["from_raw", "from_raw_unchecked", "from_parts"];

/// `std::sync` primitives L4 requires to be imported through the
/// `crate::sync` shim, so loom model-checks every lock.
const SHIMMED_SYNC_TYPES: &[&str] = &["Mutex", "Condvar", "RwLock"];

/// L1 — panic-freedom in designated hot paths: no `.unwrap()`,
/// `.expect(...)`, panicking macros, or slice-index expressions.
pub fn l1_panic_freedom(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tokens = &file.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if file.line_in_test(tok.line) {
            continue;
        }
        let prev = previous_token(tokens, i);
        let next = tokens.get(i + 1);
        if tok.is_word {
            let method_call =
                prev.is_some_and(|p| p.text == ".") && next.is_some_and(|n| n.text == "(");
            if method_call && (tok.text == "unwrap" || tok.text == "expect") {
                findings.push(Finding::new(
                    "L1",
                    &tok.text,
                    file,
                    tok.line,
                    format!("`.{}()` in a hot path: return a typed `Error` instead", tok.text),
                ));
            } else if PANIC_MACROS.contains(&tok.text.as_str())
                && next.is_some_and(|n| n.text == "!")
            {
                findings.push(Finding::new(
                    "L1",
                    "panic-macro",
                    file,
                    tok.line,
                    format!(
                        "`{}!` in a hot path: panics must not cross the serving boundary",
                        tok.text
                    ),
                ));
            }
        } else if tok.text == "[" {
            // An index expression: `[` directly after an identifier (that
            // is not a keyword), a closing paren, or a closing bracket.
            let indexes = prev.is_some_and(|p| {
                (p.is_word && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                    || p.text == ")"
                    || p.text == "]"
            });
            if indexes {
                findings.push(Finding::new(
                    "L1",
                    "slice-index",
                    file,
                    tok.line,
                    "slice-index expression in a hot path can panic; prefer `get`/checked split"
                        .to_string(),
                ));
            }
        }
    }
    findings
}

/// L2 — allocation-freedom inside `*_into`/`*_acc` kernel bodies: the
/// steady-state serving path must not heap-allocate.
pub fn l2_alloc_freedom(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &file.fns {
        if f.in_test || !(f.name.ends_with("_into") || f.name.ends_with("_acc")) {
            continue;
        }
        let (start, end) = f.body_tokens;
        let tokens = &file.tokens;
        for i in start..end.min(tokens.len()) {
            let tok = &tokens[i];
            if !tok.is_word {
                continue;
            }
            let prev = previous_token(tokens, i);
            let next = tokens.get(i + 1);
            let word = tok.text.as_str();
            let mut hit: Option<String> = None;
            if ALLOC_MACROS.contains(&word) && next.is_some_and(|n| n.text == "!") {
                hit = Some(format!("`{word}!`"));
            } else if ALLOC_METHODS.contains(&word)
                && prev.is_some_and(|p| p.text == "." || p.text == ":")
                && next.is_some_and(|n| n.text == "(")
            {
                hit = Some(format!("`.{word}()`"));
            } else if prev.is_some_and(|p| p.text == ":") {
                // `Type::ctor(...)` — look two tokens of path back.
                let ty = path_head(tokens, i);
                if ALLOC_PATHS.iter().any(|(t, m)| *m == word && Some(*t) == ty.as_deref()) {
                    hit = Some(format!("`{}::{word}`", ty.unwrap_or_default()));
                }
            }
            if let Some(what) = hit {
                findings.push(Finding::new(
                    "L2",
                    "alloc",
                    file,
                    tok.line,
                    format!(
                        "{what} allocates inside kernel fn `{}`; use caller-owned buffers",
                        f.name
                    ),
                ));
            }
        }
    }
    findings
}

/// L3 — trust boundaries: raw sparse-matrix constructors must not be
/// called outside `bear-sparse`; external code goes through
/// `try_from_parts`, which runs the full invariant audit.
pub fn l3_trust_boundary(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tokens = &file.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_word
            || !RAW_CONSTRUCTORS.contains(&tok.text.as_str())
            || file.line_in_test(tok.line)
        {
            continue;
        }
        let prev = previous_token(tokens, i);
        let next = tokens.get(i + 1);
        // A call (`x.from_raw(...)` / `T::from_raw(...)`), not a definition.
        let is_call = next.is_some_and(|n| n.text == "(")
            && prev.is_some_and(|p| p.text == "." || p.text == ":");
        if is_call {
            findings.push(Finding::new(
                "L3",
                "raw-constructor",
                file,
                tok.line,
                format!(
                    "`{}` bypasses the invariant audit outside bear-sparse; use `try_from_parts`",
                    tok.text
                ),
            ));
        }
    }
    findings
}

/// L4 — sync-shim discipline: `std::sync::{Mutex, Condvar, RwLock}` may
/// only be named inside the `sync.rs` shim, so loom model-checks every
/// lock the engine takes. Applies to test code too (the shim is free
/// outside loom builds).
pub fn l4_sync_shim(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tokens = &file.tokens;
    let mut i = 0;
    while i < tokens.len() {
        // Match the path prefix `std :: sync ::`.
        if tokens[i].text == "std"
            && matches_punct(tokens, i + 1, "::")
            && tokens.get(i + 3).is_some_and(|t| t.text == "sync")
            && matches_punct(tokens, i + 4, "::")
        {
            let after = i + 6;
            if let Some(t) = tokens.get(after) {
                if t.text == "{" {
                    // `use std::sync::{...}` — inspect the whole group.
                    let mut j = after + 1;
                    let mut depth = 1;
                    while j < tokens.len() && depth > 0 {
                        match tokens[j].text.as_str() {
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            w if SHIMMED_SYNC_TYPES.contains(&w) => {
                                findings.push(std_sync_finding(file, &tokens[j]));
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j;
                    continue;
                } else if SHIMMED_SYNC_TYPES.contains(&t.text.as_str()) {
                    findings.push(std_sync_finding(file, t));
                }
            }
        }
        i += 1;
    }
    findings
}

/// Builds the L4 finding for one offending `Mutex`/`Condvar`/`RwLock`.
fn std_sync_finding(file: &SourceFile, tok: &Token) -> Finding {
    Finding::new(
        "L4",
        "std-sync",
        file,
        tok.line,
        format!("`std::sync::{}` outside the sync shim; import it via `crate::sync` so loom can model-check the lock", tok.text),
    )
}

/// L5 — error-taxonomy completeness: every variant of the shared `Error`
/// enum must be named in each designated mapping function (the HTTP
/// status map and the CLI exit-code map), so a newly added fault class
/// cannot silently fall through a `_` arm.
pub fn l5_taxonomy(
    enum_file: &SourceFile,
    enum_name: &str,
    target: &SourceFile,
    fn_name: &str,
) -> Vec<Finding> {
    let Some(variants) = enum_variants(enum_file, enum_name) else {
        return vec![Finding::with_fingerprint(
            "L5",
            "enum-not-found",
            &enum_file.rel_path,
            1,
            format!("enum `{enum_name}` not found in {}", enum_file.rel_path),
            format!("enum-not-found:{enum_name}"),
        )];
    };
    let Some(span) = target.fns.iter().find(|f| f.name == fn_name) else {
        return vec![Finding::with_fingerprint(
            "L5",
            "mapping-fn-not-found",
            &target.rel_path,
            1,
            format!("mapping fn `{fn_name}` not found in {}", target.rel_path),
            format!("mapping-fn-not-found:{fn_name}"),
        )];
    };
    let (start, end) = span.body_tokens;
    let mut findings = Vec::new();
    for variant in &variants {
        let named = target.tokens[start..end.min(target.tokens.len())]
            .iter()
            .any(|t| t.is_word && t.text == *variant);
        if !named {
            findings.push(Finding::with_fingerprint(
                "L5",
                "missing-arm",
                &target.rel_path,
                span.start_line,
                format!(
                    "`{fn_name}` has no explicit arm for `{enum_name}::{variant}`; map every fault class deliberately"
                ),
                format!("{fn_name}:missing-arm:{variant}"),
            ));
        }
    }
    findings
}

/// The nearest preceding token, if any.
fn previous_token(tokens: &[Token], i: usize) -> Option<&Token> {
    i.checked_sub(1).and_then(|j| tokens.get(j))
}

/// For a word at `i` preceded by `::`, the head of the two-segment path
/// (`Vec` in `Vec::new`), if the shape matches.
fn path_head(tokens: &[Token], i: usize) -> Option<String> {
    // tokens[i-2..i] should be `:` `:` and tokens[i-3] the head word.
    if i >= 3 && tokens[i - 1].text == ":" && tokens[i - 2].text == ":" && tokens[i - 3].is_word {
        Some(tokens[i - 3].text.clone())
    } else {
        None
    }
}

/// Whether `tokens[i]` and `tokens[i+1]` spell the two-char punct `::`.
fn matches_punct(tokens: &[Token], i: usize, two: &str) -> bool {
    let mut chars = two.chars();
    let (a, b) = (chars.next(), chars.next());
    tokens.get(i).map(|t| t.text.chars().next()) == Some(a)
        && tokens.get(i + 1).map(|t| t.text.chars().next()) == Some(b)
}

/// Hot-path helper shared by L1/L2 message text: the kernel-fn span a
/// token belongs to, if any (used by tests to assert scoping).
pub fn enclosing_fn(file: &SourceFile, token_index: usize) -> Option<&FnSpan> {
    file.fns
        .iter()
        .filter(|f| f.body_tokens.0 <= token_index && token_index < f.body_tokens.1)
        .min_by_key(|f| f.body_tokens.1 - f.body_tokens.0)
}
