//! The serving layer: persistent worker pool, result caches, admission
//! control, deadlines, and the public [`QueryEngine`] API.
//!
//! Everything here drives real OS threads and wall-clock timers, so the
//! whole module is compiled out under `cfg(loom)`; the synchronization
//! skeleton it is built on ([`JobQueue`], [`Metrics`]) lives in sibling
//! modules and *is* model-checked.
//!
//! # Fault tolerance
//!
//! The engine can say "no" and "slower" instead of hanging or growing
//! without bound (see DESIGN.md §11):
//!
//! * **Admission control** — the job queue is bounded
//!   ([`EngineConfig::queue_capacity`]); overload either sheds load with
//!   [`Error::QueueFull`] ([`OverloadPolicy::Reject`]) or backpressures
//!   the caller up to its deadline budget ([`OverloadPolicy::Block`]).
//! * **Deadlines** — a per-query budget ([`QueryOptions::deadline`], or
//!   the engine-wide [`EngineConfig::default_deadline`]) is enforced on
//!   the caller's wait *and* at dequeue: a worker popping a job whose
//!   deadline already passed shed it unanswered-by-computation, replying
//!   [`Error::Timeout`] instead of wasting pool time.
//! * **Cancellation** — every dispatched job carries a [`CancelToken`];
//!   a caller that gives up (or times out) cancels it so abandoned work
//!   stops consuming workers.
//! * **Degradation** — with a [`FallbackSolver`] attached
//!   ([`QueryEngine::with_fallback`]), [`QueryEngine::serve`] turns
//!   timeouts, overload rejections, and worker panics into a
//!   bounded-iteration power-method answer tagged with a
//!   [`DegradedReason`] and residual, instead of an error.
//!
//! # Blocked coalescing
//!
//! Under load, each worker coalesces up to [`EngineConfig::block_width`]
//! queued jobs into one blocked multi-RHS solve
//! ([`Bear::query_block_into`]): after a blocking pop it drains whatever
//! else is already queued, without waiting, so a lone query never idles
//! for company and a full queue is answered `block_width` seeds at a
//! time. Blocked answers are bit-identical to per-seed answers — the
//! block kernels replicate the scalar accumulation order column by
//! column — so coalescing is purely a throughput/latency trade-off (see
//! DESIGN.md §13). Dead jobs (expired deadline, cancelled caller) are
//! still shed individually before the batch is formed, and a panic
//! poisons only the batch that hit it. [`Metrics`] records the realized
//! block-width histogram and per-query amortized latency.

use super::metrics::Metrics;
use super::queue::JobQueue;
use super::{BlockWorkspace, MetricsSnapshot, QueryWorkspace};
use crate::fallback::{DegradedReason, FallbackSolver};
use crate::precompute::Bear;
use crate::topk::{top_k_excluding_seed, ScoredNode};
use crate::topk_pruned::TopKPruneOptions;
use bear_sparse::{DenseBlock, Error, Result};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
// Locks go through the `crate::sync` shim (L4): under `cfg(not(loom))` —
// the only configuration this module compiles in — it re-exports
// `std::sync::Mutex` unchanged, and keeping the import shim-shaped means
// any future move of this code into the loom-modeled core needs no
// rewrite.
use crate::sync::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Bounded LRU cache
// ---------------------------------------------------------------------------

/// Minimal bounded LRU: a `HashMap` with a monotonically increasing use
/// stamp per entry. Eviction scans for the stale entry — O(capacity), which
/// is fine for the small bounded capacities the engine uses and keeps the
/// implementation dependency-free.
struct LruCache<K, V> {
    capacity: usize,
    stamp: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    fn new(capacity: usize) -> Self {
        LruCache { capacity, stamp: 0, map: HashMap::with_capacity(capacity) }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get_mut(key).map(|(s, v)| {
            *s = stamp;
            v.clone()
        })
    }

    fn insert(&mut self, key: K, value: V) {
        // A zero-capacity cache stores nothing. Without this guard the
        // eviction scan below finds no victim on the empty map and the
        // insert proceeds anyway — growing the map without bound.
        if self.capacity == 0 {
            return;
        }
        self.stamp += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (s, _))| *s).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.stamp, value));
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// What [`QueryEngine`] does when a query arrives and the job queue is
/// already at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Shed load: fail the query immediately with [`Error::QueueFull`]
    /// (or degrade it, when a fallback is attached).
    #[default]
    Reject,
    /// Backpressure: block the submitting caller until space frees up or
    /// its deadline budget runs out ([`Error::Timeout`]).
    Block,
}

/// How [`QueryEngine::query_top_k`] computes its answer. Both strategies
/// return bit-identical rankings with exact scores; they differ only in
/// how much of the score vector they materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopKStrategy {
    /// Solve the full n-vector and select — [`Bear::query_top_k`].
    Full,
    /// Bound-and-prune exact path ([`Bear::query_top_k_pruned_in`]):
    /// resolve only the spoke blocks whose upper bound could reach the
    /// top k, falling back to the full solve when certification fails.
    #[default]
    Pruned,
}

/// Configuration for [`QueryEngine`]. Validated at engine construction
/// ([`EngineConfig::validate`]); build one with [`EngineConfig::builder`]
/// to validate eagerly.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads in the persistent pool. Must be ≥ 1; rejected with
    /// [`Error::InvalidConfig`] otherwise (no silent clamping).
    pub threads: usize,
    /// Capacity of each result cache (full-score and top-k); `0` disables
    /// caching entirely.
    pub cache_capacity: usize,
    /// Admission-control bound on queued jobs. Must be ≥ 1. Queue memory
    /// is proportional to this bound no matter how overloaded the engine
    /// gets.
    pub queue_capacity: usize,
    /// What to do when the queue is full; see [`OverloadPolicy`].
    pub overload: OverloadPolicy,
    /// Deadline budget applied to queries that do not carry their own
    /// ([`QueryOptions::deadline`]). `None` means no deadline.
    pub default_deadline: Option<Duration>,
    /// Maximum queued jobs a worker coalesces into one blocked
    /// multi-RHS solve ([`Bear::query_block_into`]). `1` disables
    /// coalescing; must be ≥ 1 ([`Error::InvalidConfig`] otherwise) and
    /// is capped at [`EngineConfig::queue_capacity`] — more jobs than the
    /// queue can hold can never be waiting. Blocked answers are
    /// bit-identical to per-seed ones, so this is purely a
    /// throughput/latency trade-off.
    pub block_width: usize,
    /// How top-k queries are computed; see [`TopKStrategy`].
    pub topk_strategy: TopKStrategy,
    /// Resident-set cap (bytes) applied to the index's block pager at
    /// engine construction, when the [`Bear`] was loaded from a v3
    /// (out-of-core) index. `None` leaves the budget from load time
    /// untouched; `Some(bytes)` re-caps the pager (shrinking evicts
    /// immediately). Ignored — not an error — for fully resident
    /// indexes, so one config serves both layouts.
    pub spoke_residency_bytes: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_capacity: 1024,
            queue_capacity: 1024,
            overload: OverloadPolicy::Reject,
            default_deadline: None,
            block_width: 8,
            topk_strategy: TopKStrategy::default(),
            spoke_residency_bytes: None,
        }
    }
}

impl EngineConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { config: EngineConfig::default() }
    }

    /// Rejects configurations the engine cannot honor.
    pub fn validate(&self) -> Result<()> {
        if self.threads == 0 {
            return Err(Error::InvalidConfig {
                param: "threads",
                reason: "worker pool needs at least one thread".into(),
            });
        }
        if self.queue_capacity == 0 {
            return Err(Error::InvalidConfig {
                param: "queue_capacity",
                reason: "a queue that admits nothing deadlocks every query".into(),
            });
        }
        if self.block_width == 0 {
            return Err(Error::InvalidConfig {
                param: "block_width",
                reason: "a zero-width block answers nothing; use 1 to disable coalescing".into(),
            });
        }
        Ok(())
    }

    /// The coalescing width the engine actually uses: `block_width`
    /// clamped to `[1, queue_capacity]` (a worker can never drain more
    /// jobs than the queue admits).
    pub fn effective_block_width(&self) -> usize {
        self.block_width.clamp(1, self.queue_capacity.max(1))
    }
}

/// Builder for [`EngineConfig`]; [`EngineConfigBuilder::build`] validates.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Worker threads in the persistent pool (must be ≥ 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Result-cache capacity (`0` disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Admission-control bound on queued jobs (must be ≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Overload policy when the queue is full.
    pub fn overload(mut self, policy: OverloadPolicy) -> Self {
        self.config.overload = policy;
        self
    }

    /// Default per-query deadline budget.
    pub fn default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.config.default_deadline = deadline;
        self
    }

    /// Maximum jobs a worker coalesces into one blocked solve (must be
    /// ≥ 1; `1` disables coalescing).
    pub fn block_width(mut self, width: usize) -> Self {
        self.config.block_width = width;
        self
    }

    /// How top-k queries are computed; see [`TopKStrategy`].
    pub fn topk_strategy(mut self, strategy: TopKStrategy) -> Self {
        self.config.topk_strategy = strategy;
        self
    }

    /// Resident-set cap for a paged (v3) index; ignored for resident
    /// indexes. See [`EngineConfig::spoke_residency_bytes`].
    pub fn spoke_residency_bytes(mut self, bytes: Option<u64>) -> Self {
        self.config.spoke_residency_bytes = bytes;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<EngineConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

// ---------------------------------------------------------------------------
// Per-query options, cancellation, degradation tags
// ---------------------------------------------------------------------------

/// Cooperative cancellation handle shared between a caller and its
/// dispatched jobs. Cloning shares the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every job holding a clone observes it at
    /// dequeue and is shed instead of computed.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Per-call options for [`QueryEngine::serve`] / [`QueryEngine::serve_batch`].
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Deadline budget for this call; `None` falls back to
    /// [`EngineConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// Cancellation token observed by the dispatched jobs. The engine
    /// creates an internal one when absent, so abandoning a timed-out
    /// query always stops its queued work.
    pub cancel: Option<CancelToken>,
}

/// How and why an answer was produced by the degraded path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedInfo {
    /// Which fault triggered the fallback.
    pub reason: DegradedReason,
    /// L1 change of the fallback's final power iteration.
    pub residual: f64,
    /// Upper bound on the L1 distance to the exact answer.
    pub error_bound: f64,
    /// Power iterations the fallback performed.
    pub iterations: usize,
}

/// One served answer: exact (from the BEAR index) when `degraded` is
/// `None`, otherwise a bounded-iteration approximation tagged with why.
#[derive(Debug, Clone)]
pub struct Served {
    /// RWR scores of every node w.r.t. the queried seed.
    pub scores: Arc<Vec<f64>>,
    /// Present iff the answer came from the degraded fallback path.
    pub degraded: Option<DegradedInfo>,
}

impl Served {
    /// Whether this is the exact BEAR answer.
    pub fn is_exact(&self) -> bool {
        self.degraded.is_none()
    }
}

/// One served top-k answer: exact ranks and scores when `degraded` is
/// `None` (whatever the [`TopKStrategy`]), otherwise the selection over
/// a degraded full vector, tagged with why.
#[derive(Debug, Clone)]
pub struct TopKServed {
    /// The best-scoring non-seed nodes, descending (ties by node id).
    pub nodes: Arc<Vec<ScoredNode>>,
    /// Present iff the answer came from the degraded fallback path.
    pub degraded: Option<DegradedInfo>,
}

impl TopKServed {
    /// Whether this is the exact BEAR answer.
    pub fn is_exact(&self) -> bool {
        self.degraded.is_none()
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// What a pool job computes.
#[derive(Debug, Clone, Copy)]
enum JobKind {
    /// The full n-vector of RWR scores.
    Full,
    /// The top `k` non-seed nodes (exact; strategy chosen per engine).
    TopK { k: usize },
}

/// What a pool job replies with; shape matches the [`JobKind`].
enum Answer {
    Full(Arc<Vec<f64>>),
    TopK(Arc<Vec<ScoredNode>>),
}

impl Answer {
    /// The full-vector payload; a shape mismatch is an internal bug
    /// surfaced as a typed error, never a panic on the serving path.
    fn into_full(self) -> Result<Arc<Vec<f64>>> {
        match self {
            Answer::Full(scores) => Ok(scores),
            Answer::TopK(_) => {
                Err(Error::InvalidStructure("internal: top-k reply to a full query".into()))
            }
        }
    }

    /// The top-k payload; same typed-error contract as [`Answer::into_full`].
    fn into_topk(self) -> Result<Arc<Vec<ScoredNode>>> {
        match self {
            Answer::TopK(nodes) => Ok(nodes),
            Answer::Full(_) => {
                Err(Error::InvalidStructure("internal: full reply to a top-k query".into()))
            }
        }
    }
}

/// One unit of work for the pool: answer `seed`, reply with `tag` so the
/// submitter can reassemble batch order.
struct Job {
    seed: usize,
    tag: usize,
    kind: JobKind,
    reply: Sender<(usize, Result<Answer>)>,
    /// Deadline after which the job is shed at dequeue.
    deadline: Option<Instant>,
    /// Original budget, for [`Error::Timeout`] reporting.
    budget: Option<Duration>,
    /// Cooperative cancellation; checked at dequeue.
    cancel: Option<CancelToken>,
}

/// Persistent concurrent query server over a preprocessed [`Bear`] index.
///
/// Workers are spawned once at construction and fed over a bounded job
/// queue; each owns a [`QueryWorkspace`], so steady-state queries
/// allocate only their result vector. Dropping the engine shuts the pool
/// down cleanly.
///
/// ```
/// use std::sync::Arc;
/// use bear_core::{Bear, BearConfig};
/// use bear_core::engine::{EngineConfig, QueryEngine};
/// use bear_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]).unwrap();
/// let bear = Arc::new(Bear::new(&g, &BearConfig::default()).unwrap());
/// let engine = QueryEngine::new(Arc::clone(&bear), EngineConfig::default()).unwrap();
/// let scores = engine.query(0).unwrap();
/// assert_eq!(*scores, bear.query(0).unwrap()); // bit-identical
/// ```
pub struct QueryEngine {
    bear: Arc<Bear>,
    queue: Arc<JobQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Spare workspace for caller-assist: the thread submitting a batch
    /// borrows this to drain the job queue itself while waiting.
    caller_ws: Mutex<QueryWorkspace>,
    full_cache: Option<Mutex<FullScoreCache>>,
    topk_cache: Option<Mutex<TopKCache>>,
    metrics: Arc<Metrics>,
    fallback: Option<Arc<FallbackSolver>>,
    overload: OverloadPolicy,
    default_deadline: Option<Duration>,
    topk_strategy: TopKStrategy,
}

/// Full score vectors keyed by seed.
type FullScoreCache = LruCache<usize, Arc<Vec<f64>>>;
/// Top-k answers keyed by seed, holding the *largest-k* entry computed
/// so far: any request for `k' ≤ len` is served by prefix truncation
/// (the selection order is a strict total order, so the k'-prefix of a
/// k-answer *is* the k'-answer). Keying by `(seed, k)` — the old scheme
/// — made a `(seed, 10)` entry useless for a later `(seed, 5)` request.
type TopKCache = LruCache<usize, Arc<Vec<ScoredNode>>>;

impl QueryEngine {
    /// Validates `config`, spawns the worker pool, and returns a
    /// ready-to-serve engine.
    pub fn new(bear: Arc<Bear>, config: EngineConfig) -> Result<Self> {
        Self::build(bear, config, None)
    }

    /// Like [`QueryEngine::new`], with a degraded-mode solver attached:
    /// [`QueryEngine::serve`] answers timeouts, overload rejections, and
    /// worker panics from `fallback` instead of failing.
    pub fn with_fallback(
        bear: Arc<Bear>,
        config: EngineConfig,
        fallback: Arc<FallbackSolver>,
    ) -> Result<Self> {
        if fallback.num_nodes() != bear.num_nodes() {
            return Err(Error::InvalidConfig {
                param: "fallback",
                reason: format!(
                    "fallback solver serves {} nodes but the index has {}",
                    fallback.num_nodes(),
                    bear.num_nodes()
                ),
            });
        }
        Self::build(bear, config, Some(fallback))
    }

    fn build(
        bear: Arc<Bear>,
        config: EngineConfig,
        fallback: Option<Arc<FallbackSolver>>,
    ) -> Result<Self> {
        config.validate()?;
        if let Some(bytes) = config.spoke_residency_bytes {
            if let Some(pager) = bear.spokes.pager() {
                let cap = usize::try_from(bytes).unwrap_or(usize::MAX);
                pager.set_budget(Some(cap))?;
            }
        }
        let queue = Arc::new(JobQueue::bounded(config.queue_capacity));
        let metrics = Arc::new(Metrics::new());
        let block_width = config.effective_block_width();
        let topk_strategy = config.topk_strategy;
        let mut workers = Vec::with_capacity(config.threads);
        for i in 0..config.threads {
            let bear = Arc::clone(&bear);
            let worker_queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let spawned = std::thread::Builder::new().name(format!("bear-query-{i}")).spawn(
                move || worker_loop(&bear, &worker_queue, &metrics, block_width, topk_strategy),
            );
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Typed error instead of a panic: close the queue so
                    // the workers already spawned exit their pop loops,
                    // join them, and report which spawn failed.
                    queue.close();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(Error::InvalidConfig {
                        param: "threads",
                        reason: format!("failed to spawn query worker {i}: {e}"),
                    });
                }
            }
        }
        let caches_on = config.cache_capacity > 0;
        Ok(QueryEngine {
            caller_ws: Mutex::new(QueryWorkspace::for_bear(&bear)),
            bear,
            queue,
            workers,
            full_cache: caches_on.then(|| Mutex::new(LruCache::new(config.cache_capacity))),
            topk_cache: caches_on.then(|| Mutex::new(LruCache::new(config.cache_capacity))),
            metrics,
            fallback,
            overload: config.overload,
            default_deadline: config.default_deadline,
            topk_strategy,
        })
    }

    /// The index this engine serves.
    pub fn bear(&self) -> &Bear {
        &self.bear
    }

    /// Point-in-time serving metrics. When the index is paged (v3),
    /// block-pager counters are merged into the snapshot here; the
    /// [`Metrics`] sink itself stays pager-unaware.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        if let Some(pager) = self.bear.spokes.pager() {
            let stats = pager.stats();
            snap.pager_hits = stats.hits;
            snap.pager_misses = stats.misses;
            snap.pager_evictions = stats.evictions;
            snap.pager_resident_bytes = stats.resident_bytes;
            snap.pager_resident_blocks = stats.resident_blocks;
        }
        snap
    }

    /// Entries currently held in the full-score cache.
    pub fn cached_results(&self) -> usize {
        self.full_cache.as_ref().map_or(0, |c| c.lock().map_or(0, |c| c.len()))
    }

    /// Jobs currently waiting in the (bounded) queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    fn check_seed(&self, seed: usize) -> Result<()> {
        let n = self.bear.num_nodes();
        if seed >= n {
            return Err(Error::IndexOutOfBounds { index: seed, bound: n });
        }
        Ok(())
    }

    /// Admission without metrics accounting: fail-fast deadline check,
    /// then push under the configured overload policy.
    ///
    /// A job whose deadline has already passed (including a zero budget)
    /// fails fast with [`Error::Timeout`] *before* it is enqueued: letting
    /// it through would occupy bounded queue capacity until the
    /// dequeue-side shed — capacity that still-viable queries could use.
    fn try_admit(&self, job: Job, deadline: Option<Instant>) -> Result<()> {
        crate::fail_point!("queue::push");
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(Error::Timeout { budget: job.budget.unwrap_or_default() });
        }
        match self.overload {
            OverloadPolicy::Reject => self.queue.push(job),
            OverloadPolicy::Block => {
                let remaining = deadline.map(|d| d.saturating_duration_since(Instant::now()));
                self.queue.push_blocking(job, remaining)
            }
        }
    }

    /// Admits one job to the pool under the configured overload policy,
    /// accounting rejections and admission timeouts (see
    /// [`QueryEngine::try_admit`]).
    fn admit(&self, job: Job, deadline: Option<Instant>) -> Result<()> {
        self.try_admit(job, deadline).inspect_err(|e| match e {
            Error::QueueFull { .. } => self.metrics.record_queue_rejection(),
            Error::Timeout { .. } => self.metrics.record_timeout(),
            _ => {}
        })
    }

    /// Batch-dispatch admission: like [`QueryEngine::admit`], except that
    /// when the caller's *own* dispatch loop has filled the queue
    /// ([`OverloadPolicy::Reject`], no deadline), the submitting thread
    /// assists — draining one queued job inline with the spare workspace —
    /// and retries. A batch larger than the queue therefore makes progress
    /// in bounded memory instead of being shed on its own backlog (each
    /// retry either admits the job or answers one queued job, so the loop
    /// terminates after at most the batch's own work). External overload
    /// while the spare workspace is busy still sheds with
    /// [`Error::QueueFull`], and deadline-carrying batches keep strict
    /// admission (inline work cannot be abandoned mid-compute, so
    /// assisting would run the caller past its budget).
    fn admit_assisting(&self, make_job: &dyn Fn() -> Job, deadline: Option<Instant>) -> Result<()> {
        loop {
            match self.try_admit(make_job(), deadline) {
                Err(Error::QueueFull { capacity }) if deadline.is_none() => {
                    let Ok(mut ws) = self.caller_ws.try_lock() else {
                        self.metrics.record_queue_rejection();
                        return Err(Error::QueueFull { capacity });
                    };
                    match self.queue.try_pop() {
                        Some(job) => {
                            run_job(&self.bear, &mut ws, job, &self.metrics, self.topk_strategy)
                        }
                        // A worker drained the queue between the rejection
                        // and our pop; the retry will find space.
                        None => std::thread::yield_now(),
                    }
                }
                Err(e) => {
                    match &e {
                        Error::QueueFull { .. } => self.metrics.record_queue_rejection(),
                        Error::Timeout { .. } => self.metrics.record_timeout(),
                        _ => {}
                    }
                    return Err(e);
                }
                Ok(()) => return Ok(()),
            }
        }
    }

    /// Computes (or fetches) the full score vector for `seed`, without
    /// touching the query/hit metrics. Returns `(scores, was_cache_hit)`.
    ///
    /// `deadline`/`budget` bound the wait; `cancel` (or an internal
    /// token) stops the queued job if the caller gives up.
    fn fetch_full(
        &self,
        seed: usize,
        deadline: Option<Instant>,
        budget: Option<Duration>,
        cancel: Option<&CancelToken>,
    ) -> Result<(Arc<Vec<f64>>, bool)> {
        if let Some(cache) = &self.full_cache {
            if let Some(hit) = cache.lock().ok().and_then(|mut c| c.get(&seed)) {
                return Ok((hit, true));
            }
        }
        // The token lets a timed-out caller stop the job it abandoned;
        // create one internally when the caller didn't supply any.
        let token = cancel.cloned().unwrap_or_default();
        let (reply_tx, reply_rx) = channel();
        self.admit(
            Job {
                seed,
                tag: 0,
                kind: JobKind::Full,
                reply: reply_tx,
                deadline,
                budget,
                cancel: Some(token.clone()),
            },
            deadline,
        )?;
        // Caller-assist: if the spare workspace is free, answer a pending
        // job (usually the one just pushed) on this thread instead of
        // round-tripping through a worker. Skipped when a deadline is
        // set — inline work cannot be abandoned mid-compute, so it would
        // silently run the caller past its own budget.
        if deadline.is_none() {
            if let Ok(mut ws) = self.caller_ws.try_lock() {
                if let Some(job) = self.queue.try_pop() {
                    run_job(&self.bear, &mut ws, job, &self.metrics, self.topk_strategy);
                }
            }
        }
        let scores = self.wait_reply(&reply_rx, deadline, budget, &token)?.into_full()?;
        if let Some(cache) = &self.full_cache {
            if let Ok(mut c) = cache.lock() {
                c.insert(seed, Arc::clone(&scores));
            }
        }
        Ok((scores, false))
    }

    /// Computes (or fetches) the top `effective_k` nodes for `seed`,
    /// without touching the query/hit metrics. Returns
    /// `(nodes, was_cache_hit)`. Same admission, deadline, caller-assist,
    /// and cancellation discipline as [`QueryEngine::fetch_full`] — the
    /// old top-k path bypassed all of it, so an `X-Deadline-Ms` on
    /// `/v1/topk` was silently ignored and could never 504 or degrade.
    ///
    /// The cache stores the largest-k answer per seed; a request for a
    /// smaller k is served by prefix truncation, and a longer fresh
    /// answer replaces the shorter cached one.
    fn fetch_topk(
        &self,
        seed: usize,
        effective_k: usize,
        deadline: Option<Instant>,
        budget: Option<Duration>,
        cancel: Option<&CancelToken>,
    ) -> Result<(Arc<Vec<ScoredNode>>, bool)> {
        if let Some(cache) = &self.topk_cache {
            if let Some(hit) = cache.lock().ok().and_then(|mut c| c.get(&seed)) {
                if hit.len() == effective_k {
                    return Ok((hit, true));
                }
                if hit.len() > effective_k {
                    let prefix: Vec<ScoredNode> =
                        hit.iter().take(effective_k).copied().collect();
                    return Ok((Arc::new(prefix), true));
                }
            }
        }
        let token = cancel.cloned().unwrap_or_default();
        let (reply_tx, reply_rx) = channel();
        self.admit(
            Job {
                seed,
                tag: 0,
                kind: JobKind::TopK { k: effective_k },
                reply: reply_tx,
                deadline,
                budget,
                cancel: Some(token.clone()),
            },
            deadline,
        )?;
        if deadline.is_none() {
            if let Ok(mut ws) = self.caller_ws.try_lock() {
                if let Some(job) = self.queue.try_pop() {
                    run_job(&self.bear, &mut ws, job, &self.metrics, self.topk_strategy);
                }
            }
        }
        let nodes = self.wait_reply(&reply_rx, deadline, budget, &token)?.into_topk()?;
        if let Some(cache) = &self.topk_cache {
            if let Ok(mut c) = cache.lock() {
                // Keep whichever answer covers more: replacing a longer
                // entry with a shorter one would throw away prefix hits.
                let longer_cached = c.get(&seed).is_some_and(|cur| cur.len() >= nodes.len());
                if !longer_cached {
                    c.insert(seed, Arc::clone(&nodes));
                }
            }
        }
        Ok((nodes, false))
    }

    /// Waits for one reply, bounded by `deadline`. On timeout the job is
    /// cancelled (so it stops consuming the pool) and [`Error::Timeout`]
    /// is returned.
    fn wait_reply(
        &self,
        rx: &Receiver<(usize, Result<Answer>)>,
        deadline: Option<Instant>,
        budget: Option<Duration>,
        token: &CancelToken,
    ) -> Result<Answer> {
        let reply = match deadline {
            None => rx.recv().map_err(|_| Error::PoolShutDown)?,
            Some(at) => {
                let remaining = at.saturating_duration_since(Instant::now());
                match rx.recv_timeout(remaining) {
                    Ok(reply) => reply,
                    Err(RecvTimeoutError::Disconnected) => return Err(Error::PoolShutDown),
                    Err(RecvTimeoutError::Timeout) => {
                        token.cancel();
                        self.metrics.record_timeout();
                        return Err(Error::Timeout { budget: budget.unwrap_or_default() });
                    }
                }
            }
        };
        reply.1
    }

    /// RWR scores of every node w.r.t. `seed` — bit-identical to
    /// [`Bear::query`], shared via `Arc` so cache hits allocate nothing.
    ///
    /// Always exact: deadline and overload faults surface as typed
    /// errors. Use [`QueryEngine::serve`] for the degrading path.
    pub fn query(&self, seed: usize) -> Result<Arc<Vec<f64>>> {
        let start = Instant::now();
        self.check_seed(seed)?;
        let budget = self.default_deadline;
        let deadline = budget.map(|b| start + b);
        let (scores, hit) = self.fetch_full(seed, deadline, budget, None)?;
        self.metrics.record(hit, start.elapsed());
        Ok(scores)
    }

    /// The `k` most relevant nodes w.r.t. `seed` (seed excluded) —
    /// ranks and scores identical to [`Bear::query_top_k`], computed by
    /// the configured [`TopKStrategy`] on the worker pool.
    ///
    /// Runs through the same admission, deadline, and degradation
    /// ladder as [`QueryEngine::serve`]: an expired deadline fails fast
    /// with [`Error::Timeout`], and with a fallback attached, faults
    /// produce a degraded selection tagged in [`TopKServed::degraded`]
    /// (never cached). `k = 0` returns an empty answer; HTTP callers
    /// reject it earlier with `400` (see the serve crate).
    pub fn query_top_k(&self, seed: usize, k: usize, opts: &QueryOptions) -> Result<TopKServed> {
        let start = Instant::now();
        self.check_seed(seed)?;
        let effective_k = k.min(self.bear.num_nodes().saturating_sub(1));
        if effective_k == 0 {
            return Ok(TopKServed { nodes: Arc::new(Vec::new()), degraded: None });
        }
        let budget = opts.deadline.or(self.default_deadline);
        let deadline = budget.map(|b| start + b);
        match self.fetch_topk(seed, effective_k, deadline, budget, opts.cancel.as_ref()) {
            Ok((nodes, hit)) => {
                self.metrics.record(hit, start.elapsed());
                Ok(TopKServed { nodes, degraded: None })
            }
            Err(e) => match (degraded_reason(&e), self.fallback.as_deref()) {
                (Some(reason), Some(fallback)) => {
                    let served = self.degrade(fallback, seed, reason)?;
                    self.metrics.record(false, start.elapsed());
                    Ok(TopKServed {
                        nodes: Arc::new(top_k_excluding_seed(&served.scores, seed, effective_k)),
                        degraded: served.degraded,
                    })
                }
                _ => Err(e),
            },
        }
    }

    /// Answers `seed` through the full fault-tolerance ladder: exact
    /// answer within the deadline budget when possible, otherwise — with
    /// a fallback attached — a bounded-iteration degraded answer tagged
    /// with the triggering fault. Without a fallback this behaves like
    /// [`QueryEngine::query`] plus per-call options.
    pub fn serve(&self, seed: usize, opts: &QueryOptions) -> Result<Served> {
        let start = Instant::now();
        self.check_seed(seed)?;
        let budget = opts.deadline.or(self.default_deadline);
        let deadline = budget.map(|b| start + b);
        match self.fetch_full(seed, deadline, budget, opts.cancel.as_ref()) {
            Ok((scores, hit)) => {
                self.metrics.record(hit, start.elapsed());
                Ok(Served { scores, degraded: None })
            }
            Err(e) => match (degraded_reason(&e), self.fallback.as_deref()) {
                (Some(reason), Some(fallback)) => {
                    let served = self.degrade(fallback, seed, reason)?;
                    self.metrics.record(false, start.elapsed());
                    Ok(served)
                }
                _ => Err(e),
            },
        }
    }

    /// [`QueryEngine::serve`] over many seeds, in seed order. Seeds are
    /// validated upfront; the deadline budget covers the whole batch and
    /// expired or abandoned jobs are shed at dequeue, so one slow seed
    /// degrades (or fails) without dragging the others past the budget.
    pub fn serve_batch(&self, seeds: &[usize], opts: &QueryOptions) -> Result<Vec<Served>> {
        for &seed in seeds {
            self.check_seed(seed)?;
        }
        let budget = opts.deadline.or(self.default_deadline);
        let deadline = budget.map(|b| Instant::now() + b);
        let token = opts.cancel.clone().unwrap_or_default();
        let mut out = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            let start = Instant::now();
            let result = self.fetch_full(seed, deadline, budget, Some(&token));
            match result {
                Ok((scores, hit)) => {
                    self.metrics.record(hit, start.elapsed());
                    out.push(Served { scores, degraded: None });
                }
                Err(e) => match (degraded_reason(&e), self.fallback.as_deref()) {
                    (Some(reason), Some(fallback)) => {
                        let served = self.degrade(fallback, seed, reason)?;
                        self.metrics.record(false, start.elapsed());
                        out.push(served);
                    }
                    _ => return Err(e),
                },
            }
        }
        Ok(out)
    }

    /// Answers one seed from `fallback`, tagged with `reason`. Callers
    /// hand the solver in (matched out of `self.fallback`), so "degrade
    /// without a fallback" is unrepresentable rather than a panic.
    fn degrade(
        &self,
        fallback: &FallbackSolver,
        seed: usize,
        reason: DegradedReason,
    ) -> Result<Served> {
        let answer = fallback.solve(seed)?;
        self.metrics.record_degraded();
        let info = DegradedInfo {
            reason,
            residual: answer.residual,
            error_bound: answer.error_bound(),
            iterations: answer.iterations,
        };
        Ok(Served { scores: Arc::new(answer.scores), degraded: Some(info) })
    }

    /// Answers many single-seed queries on the persistent pool. Results
    /// are in seed order and bit-identical to sequential [`Bear::query`].
    ///
    /// All seeds are validated before any work is dispatched, so an
    /// invalid seed fails fast and names the offender; a worker panic
    /// surfaces as [`Error::WorkerPanicked`] on the affected seed instead
    /// of aborting the process. Always exact — see
    /// [`QueryEngine::serve_batch`] for the degrading variant.
    pub fn query_batch(&self, seeds: &[usize]) -> Result<Vec<Arc<Vec<f64>>>> {
        for &seed in seeds {
            self.check_seed(seed)?;
        }
        // An empty batch has an obvious answer; don't touch the pool (or
        // its metrics) to produce it.
        if seeds.is_empty() {
            return Ok(Vec::new());
        }
        let budget = self.default_deadline;
        let deadline = budget.map(|b| Instant::now() + b);
        let token = CancelToken::new();
        let mut slots: Vec<Option<Arc<Vec<f64>>>> = vec![None; seeds.len()];
        // Dispatch timestamps, so each computed result's latency is
        // attributed from its own dispatch — not from the start of the
        // whole loop, which inflated cache-hit latencies before.
        let mut dispatched: Vec<Option<Instant>> = vec![None; seeds.len()];
        let (reply_tx, reply_rx) = channel();
        let mut outstanding = 0usize;
        for (tag, &seed) in seeds.iter().enumerate() {
            let probe_start = Instant::now();
            let cached = self
                .full_cache
                .as_ref()
                .and_then(|cache| cache.lock().ok().and_then(|mut c| c.get(&seed)));
            match cached {
                Some(hit) => {
                    slots[tag] = Some(hit);
                    self.metrics.record(true, probe_start.elapsed());
                }
                None => {
                    dispatched[tag] = Some(probe_start);
                    // Assisting admission: a batch bigger than the queue
                    // drains its own backlog instead of tripping QueueFull
                    // on it (self-inflicted overload is not overload).
                    let make_job = || Job {
                        seed,
                        tag,
                        kind: JobKind::Full,
                        reply: reply_tx.clone(),
                        deadline,
                        budget,
                        cancel: Some(token.clone()),
                    };
                    self.admit_assisting(&make_job, deadline)?;
                    outstanding += 1;
                }
            }
        }
        drop(reply_tx);
        // Caller-assist: while replies are pending, this thread drains the
        // job queue with the engine's spare workspace instead of blocking.
        // On a small pool (or single core) the whole batch runs inline
        // with no thread ping-pong; on a big pool it adds one worker.
        // Skipped under a deadline: inline work cannot be abandoned
        // mid-compute, so it would run the caller past its own budget.
        let mut caller_ws = if deadline.is_none() { self.caller_ws.try_lock().ok() } else { None };
        let mut collected = 0usize;
        let finish = |engine: &Self,
                      slots: &mut [Option<Arc<Vec<f64>>>],
                      dispatched: &[Option<Instant>],
                      seeds: &[usize],
                      tag: usize,
                      result: Result<Answer>|
         -> Result<()> {
            let scores =
                result.and_then(Answer::into_full).inspect_err(|_| token.cancel())?;
            if let Some(cache) = &engine.full_cache {
                if let Ok(mut c) = cache.lock() {
                    c.insert(seeds[tag], Arc::clone(&scores));
                }
            }
            slots[tag] = Some(scores);
            let elapsed = dispatched[tag].map_or(Duration::ZERO, |d| d.elapsed());
            engine.metrics.record(false, elapsed);
            Ok(())
        };
        while collected < outstanding {
            match reply_rx.try_recv() {
                Ok((tag, result)) => {
                    finish(self, &mut slots, &dispatched, seeds, tag, result)?;
                    collected += 1;
                    continue;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => return Err(Error::PoolShutDown),
            }
            if let Some(ws) = caller_ws.as_deref_mut() {
                if let Some(job) = self.queue.try_pop() {
                    run_job(&self.bear, ws, job, &self.metrics, self.topk_strategy);
                    continue;
                }
            }
            // Nothing left to steal: block until a worker finishes (the
            // deadline is enforced per job at dequeue, so a bounded wait
            // here would only duplicate that check).
            match deadline {
                None => {
                    let (tag, result) = reply_rx.recv().map_err(|_| Error::PoolShutDown)?;
                    finish(self, &mut slots, &dispatched, seeds, tag, result)?;
                    collected += 1;
                }
                Some(at) => {
                    let remaining = at.saturating_duration_since(Instant::now());
                    match reply_rx.recv_timeout(remaining) {
                        Ok((tag, result)) => {
                            finish(self, &mut slots, &dispatched, seeds, tag, result)?;
                            collected += 1;
                        }
                        Err(RecvTimeoutError::Disconnected) => return Err(Error::PoolShutDown),
                        Err(RecvTimeoutError::Timeout) => {
                            token.cancel();
                            self.metrics.record_timeout();
                            return Err(Error::Timeout { budget: budget.unwrap_or_default() });
                        }
                    }
                }
            }
        }
        // Every slot was filled either from cache at dispatch or by a
        // collected reply; an empty one means the tag bookkeeping above
        // is broken, which surfaces as a typed error, not a panic.
        slots
            .into_iter()
            .zip(seeds)
            .map(|(slot, seed)| {
                slot.ok_or_else(|| {
                    Error::InvalidStructure(format!("internal: no reply for batch seed {seed}"))
                })
            })
            .collect()
    }
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("nodes", &self.bear.num_nodes())
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.queue.capacity())
            .field("overload", &self.overload)
            .field("default_deadline", &self.default_deadline)
            .field("has_fallback", &self.fallback.is_some())
            .finish_non_exhaustive()
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        // Closing the queue ends every worker's pop loop.
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Which degraded-mode reason (if any) corresponds to a serving fault.
/// `None` means the error is not degradable (e.g. an invalid seed, or a
/// caller-requested cancellation).
fn degraded_reason(e: &Error) -> Option<DegradedReason> {
    match e {
        Error::Timeout { .. } => Some(DegradedReason::DeadlineExceeded),
        Error::QueueFull { .. } => Some(DegradedReason::QueueFull),
        Error::WorkerPanicked { .. } => Some(DegradedReason::WorkerPanicked),
        Error::PoolShutDown => Some(DegradedReason::IndexUnavailable),
        _ => None,
    }
}

/// Worker body: pull jobs until the queue closes. After each blocking
/// pop, the worker *opportunistically* drains up to `block_width - 1`
/// more jobs without waiting ([`JobQueue::try_pop`]) and answers the
/// whole batch with one blocked multi-RHS solve — a lone job therefore
/// never waits for company, and an idle queue degenerates to the plain
/// one-job-at-a-time loop (width-1 solves take the `matvec` fallback, so
/// coalescing costs nothing when there is nothing to coalesce).
fn worker_loop(
    bear: &Bear,
    queue: &JobQueue<Job>,
    metrics: &Metrics,
    block_width: usize,
    topk_strategy: TopKStrategy,
) {
    let mut ws = QueryWorkspace::for_bear(bear);
    let mut block_ws = BlockWorkspace::for_bear(bear);
    let mut jobs: Vec<Job> = Vec::with_capacity(block_width);
    let mut live: Vec<Job> = Vec::with_capacity(block_width);
    let mut seeds: Vec<usize> = Vec::with_capacity(block_width);
    let mut out = DenseBlock::zeros(bear.num_nodes(), 0);
    while let Some(job) = queue.pop() {
        jobs.push(job);
        while jobs.len() < block_width {
            match queue.try_pop() {
                Some(next) => jobs.push(next),
                None => break,
            }
        }
        // Top-k jobs answer solo — their pruned path is not block-shaped
        // — while full jobs keep coalescing. (Order within a coalesced
        // drain carries no ordering contract, so swap_remove is fine.)
        let mut i = 0;
        while i < jobs.len() {
            if matches!(jobs.get(i).map(|j| j.kind), Some(JobKind::TopK { .. })) {
                let job = jobs.swap_remove(i);
                run_job(bear, &mut ws, job, metrics, topk_strategy);
            } else {
                i += 1;
            }
        }
        // One job buffered: run it solo (pop cannot miss — the job was
        // pushed just above, and this `if let` keeps that a non-panic).
        if jobs.len() == 1 {
            if let Some(job) = jobs.pop() {
                run_job(bear, &mut ws, job, metrics, topk_strategy);
            }
        } else if !jobs.is_empty() {
            run_block(bear, &mut block_ws, &mut jobs, &mut live, &mut seeds, &mut out, metrics);
        }
        jobs.clear();
    }
}

/// Sheds `job` when its deadline already passed or its caller cancelled
/// (replying with the matching typed error); hands it back otherwise.
/// Computing an answer nobody can use anymore only starves the queries
/// still inside their budget.
fn shed_if_dead(job: Job, metrics: &Metrics) -> Option<Job> {
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        metrics.record_shed();
        metrics.record_timeout();
        let _ = job
            .reply
            .send((job.tag, Err(Error::Timeout { budget: job.budget.unwrap_or_default() })));
        return None;
    }
    if job.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
        metrics.record_shed();
        let _ = job.reply.send((job.tag, Err(Error::Cancelled)));
        return None;
    }
    Some(job)
}

/// Answers one job with the given workspace — the freshly allocated
/// result vector is the single allocation per query — converting panics
/// into [`Error::WorkerPanicked`] so the pool (and assisting callers)
/// survive poisoned inputs. Jobs whose deadline already passed, or whose
/// caller cancelled, are shed without computing. Shared by pool workers
/// and caller-assist.
fn run_job(
    bear: &Bear,
    ws: &mut QueryWorkspace,
    job: Job,
    metrics: &Metrics,
    topk_strategy: TopKStrategy,
) {
    // Failpoint `queue::pop`: simulate a slow dequeue path so jobs age
    // past their deadline. Only the Delay action makes sense here — pop
    // has no error channel — so that's all this site honors.
    #[cfg(feature = "failpoints")]
    if let Some(crate::failpoints::FailAction::Delay(d)) = crate::failpoints::armed("queue::pop") {
        std::thread::sleep(d);
    }
    let Some(job) = shed_if_dead(job, metrics) else { return };
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Answer> {
        crate::fail_point!("engine::run_job");
        match job.kind {
            JobKind::Full => {
                let mut result = vec![0.0; bear.num_nodes()];
                bear.query_into(job.seed, ws, &mut result)?;
                Ok(Answer::Full(Arc::new(result)))
            }
            JobKind::TopK { k } => match topk_strategy {
                TopKStrategy::Pruned => {
                    let (nodes, stats) = bear.query_top_k_pruned_in(
                        job.seed,
                        k,
                        &TopKPruneOptions::default(),
                        ws,
                    )?;
                    metrics.record_topk_pruned(
                        stats.certified,
                        stats.candidates as u64,
                        stats.nodes_pruned as u64,
                    );
                    Ok(Answer::TopK(Arc::new(nodes)))
                }
                TopKStrategy::Full => {
                    let mut result = vec![0.0; bear.num_nodes()];
                    bear.query_into(job.seed, ws, &mut result)?;
                    Ok(Answer::TopK(Arc::new(top_k_excluding_seed(&result, job.seed, k))))
                }
            },
        }
    }))
    .unwrap_or_else(|_| {
        metrics.record_worker_panic();
        Err(Error::WorkerPanicked { seed: job.seed })
    });
    metrics.record_block(1, start.elapsed());
    // A receiver that hung up no longer wants the answer; ignore.
    let _ = job.reply.send((job.tag, outcome));
}

/// Answers a coalesced batch of jobs with one blocked multi-RHS solve.
/// Dead jobs (expired deadline, cancelled caller) are shed individually
/// first, exactly as [`run_job`] would shed them; the survivors share
/// one [`Bear::query_block_into`] call and each gets its own column
/// copied out as its reply. A panic poisons only this batch: every
/// member is answered with [`Error::WorkerPanicked`] and the pool
/// survives. `jobs`, `live`, `seeds`, and `out` are worker-owned
/// scratch, reused across batches so steady-state coalescing allocates
/// only the per-query result vectors.
fn run_block(
    bear: &Bear,
    ws: &mut BlockWorkspace,
    jobs: &mut Vec<Job>,
    live: &mut Vec<Job>,
    seeds: &mut Vec<usize>,
    out: &mut DenseBlock,
    metrics: &Metrics,
) {
    #[cfg(feature = "failpoints")]
    if let Some(crate::failpoints::FailAction::Delay(d)) = crate::failpoints::armed("queue::pop") {
        std::thread::sleep(d);
    }
    live.clear();
    for job in jobs.drain(..) {
        if let Some(job) = shed_if_dead(job, metrics) {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    seeds.clear();
    seeds.extend(live.iter().map(|j| j.seed));
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        crate::fail_point!("engine::run_job");
        out.reset(bear.num_nodes(), seeds.len());
        bear.query_block_into(seeds, ws, out)
    }));
    metrics.record_block(live.len(), start.elapsed());
    match outcome {
        Ok(Ok(())) => {
            for (j, job) in live.drain(..).enumerate() {
                let _ =
                    job.reply.send((job.tag, Ok(Answer::Full(Arc::new(out.col(j).to_vec())))));
            }
        }
        // Seeds are validated at admission, so a typed error here is a
        // bug surfaced loudly to every member rather than swallowed.
        Ok(Err(e)) => {
            for job in live.drain(..) {
                let _ = job.reply.send((job.tag, Err(e.clone())));
            }
        }
        Err(_) => {
            metrics.record_worker_panic();
            for job in live.drain(..) {
                let _ = job.reply.send((job.tag, Err(Error::WorkerPanicked { seed: job.seed })));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::BearConfig;
    use crate::rwr::RwrConfig;
    use bear_graph::Graph;

    fn test_graph(n: usize) -> Graph {
        // Hub-spoke graph with a little extra structure.
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push((0, v));
            edges.push((v, 0));
        }
        for v in (1..n.saturating_sub(1)).step_by(3) {
            edges.push((v, v + 1));
            edges.push((v + 1, v));
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    fn test_bear(n: usize) -> Arc<Bear> {
        Arc::new(Bear::new(&test_graph(n), &BearConfig::exact(0.15)).unwrap())
    }

    fn config(threads: usize, cache_capacity: usize) -> EngineConfig {
        EngineConfig { threads, cache_capacity, ..EngineConfig::default() }
    }

    #[test]
    fn engine_matches_sequential_query_bitwise() {
        let bear = test_bear(30);
        let engine = QueryEngine::new(Arc::clone(&bear), config(4, 0)).unwrap();
        for seed in 0..30 {
            let want = bear.query(seed).unwrap();
            let got = engine.query(seed).unwrap();
            assert_eq!(*got, want, "seed {seed}");
        }
    }

    #[test]
    fn engine_batch_matches_sequential_in_order() {
        let bear = test_bear(25);
        let engine = QueryEngine::new(Arc::clone(&bear), config(3, 32)).unwrap();
        let seeds: Vec<usize> = (0..25).rev().collect();
        let want: Vec<Vec<f64>> = seeds.iter().map(|&s| bear.query(s).unwrap()).collect();
        let got = engine.query_batch(&seeds).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(**g, *w);
        }
        // Second pass is served from cache and stays bit-identical.
        let again = engine.query_batch(&seeds).unwrap();
        for (g, w) in again.iter().zip(&want) {
            assert_eq!(**g, *w);
        }
        assert!(engine.metrics().cache_hits >= seeds.len() as u64);
    }

    #[test]
    fn engine_validates_batch_seeds_upfront() {
        let bear = test_bear(10);
        let engine = QueryEngine::new(bear, config(2, 4)).unwrap();
        let before = engine.metrics().queries;
        let err = engine.query_batch(&[0, 3, 99, 5]).unwrap_err();
        assert_eq!(err, Error::IndexOutOfBounds { index: 99, bound: 10 });
        // Nothing was dispatched: no query was counted.
        assert_eq!(engine.metrics().queries, before);
    }

    #[test]
    fn cache_hit_returns_identical_scores_and_counts() {
        let bear = test_bear(12);
        let engine = QueryEngine::new(Arc::clone(&bear), config(2, 16)).unwrap();
        let first = engine.query(3).unwrap();
        let second = engine.query(3).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit shares the cached Arc");
        assert_eq!(*first, bear.query(3).unwrap());
        let m = engine.metrics();
        assert_eq!(m.queries, 2);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert!((m.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_k_matches_bear_and_caches() {
        let bear = test_bear(15);
        let engine = QueryEngine::new(Arc::clone(&bear), config(2, 16)).unwrap();
        let want = bear.query_top_k(2, 5).unwrap();
        let got = engine.query_top_k(2, 5, &QueryOptions::default()).unwrap();
        assert!(got.is_exact());
        assert_eq!(*got.nodes, want);
        let again = engine.query_top_k(2, 5, &QueryOptions::default()).unwrap();
        assert!(Arc::ptr_eq(&got.nodes, &again.nodes));
    }

    #[test]
    fn top_k_smaller_k_hits_cache_with_exact_prefix() {
        let bear = test_bear(15);
        let engine = QueryEngine::new(Arc::clone(&bear), config(2, 16)).unwrap();
        let full = engine.query_top_k(2, 8, &QueryOptions::default()).unwrap();
        let before = engine.metrics();
        let small = engine.query_top_k(2, 3, &QueryOptions::default()).unwrap();
        let after = engine.metrics();
        assert_eq!(after.cache_hits, before.cache_hits + 1, "k' <= cached k is a hit");
        assert_eq!(small.nodes.len(), 3);
        // The prefix must be the cached answer's prefix, bit for bit.
        for (a, b) in small.nodes.iter().zip(full.nodes.iter()) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // A larger k than cached is a miss and replaces the entry.
        let bigger = engine.query_top_k(2, 10, &QueryOptions::default()).unwrap();
        assert_eq!(bigger.nodes.len(), 10);
        let m2 = engine.metrics();
        assert_eq!(m2.cache_misses, after.cache_misses + 1);
    }

    #[test]
    fn top_k_full_strategy_matches_pruned() {
        let bear = test_bear(15);
        let pruned = QueryEngine::new(Arc::clone(&bear), config(2, 0)).unwrap();
        let full_cfg = EngineConfig::builder()
            .threads(2)
            .cache_capacity(0)
            .topk_strategy(TopKStrategy::Full)
            .build()
            .unwrap();
        let full = QueryEngine::new(Arc::clone(&bear), full_cfg).unwrap();
        for seed in 0..15 {
            for k in [1, 4, 14, 20] {
                let a = pruned.query_top_k(seed, k, &QueryOptions::default()).unwrap();
                let b = full.query_top_k(seed, k, &QueryOptions::default()).unwrap();
                assert_eq!(a.nodes.len(), b.nodes.len());
                for (x, y) in a.nodes.iter().zip(b.nodes.iter()) {
                    assert_eq!(x.node, y.node);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
        let m = pruned.metrics();
        assert!(m.topk_pruned_queries > 0, "pruned engine records pruning stats");
    }

    #[test]
    fn top_k_zero_k_is_empty_and_uncached() {
        let bear = test_bear(10);
        let engine = QueryEngine::new(bear, config(1, 16)).unwrap();
        let served = engine.query_top_k(4, 0, &QueryOptions::default()).unwrap();
        assert!(served.nodes.is_empty());
        assert!(served.is_exact());
        let m = engine.metrics();
        assert_eq!(m.cache_hits + m.cache_misses, 0, "k = 0 never touches cache or pool");
    }

    #[test]
    fn metrics_percentiles_populate() {
        let bear = test_bear(10);
        let engine = QueryEngine::new(bear, config(2, 0)).unwrap();
        for seed in 0..10 {
            engine.query(seed).unwrap();
        }
        let m = engine.metrics();
        assert_eq!(m.queries, 10);
        assert_eq!(m.cache_misses, 10);
        assert!(m.p50 > Duration::ZERO);
        assert!(m.p95 >= m.p50);
        assert!(m.p99 >= m.p95);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let bear = test_bear(8);
        let engine = QueryEngine::new(bear, config(1, 0)).unwrap();
        engine.query(1).unwrap();
        engine.query(1).unwrap();
        assert_eq!(engine.metrics().cache_hits, 0);
        assert_eq!(engine.cached_results(), 0);
    }

    #[test]
    fn lru_cache_evicts_least_recently_used() {
        let mut cache: LruCache<usize, usize> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10)); // refresh 1
        cache.insert(3, 30); // evicts 2
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.len(), 2);
    }

    /// Satellite regression: a zero-capacity cache must store nothing.
    /// Before the guard, the eviction scan found no victim on the empty
    /// map and inserts grew it without bound.
    #[test]
    fn lru_cache_zero_capacity_is_a_hard_noop() {
        let mut cache: LruCache<usize, usize> = LruCache::new(0);
        for i in 0..1000 {
            cache.insert(i, i);
        }
        assert_eq!(cache.len(), 0, "zero-capacity cache must stay empty");
        assert_eq!(cache.get(&0), None);
        assert_eq!(cache.get(&999), None);
    }

    /// Satellite regression: cache hits must be attributed their own
    /// (tiny) latency, not the whole batch dispatch loop's.
    #[test]
    fn batch_metrics_attribute_hit_latency_per_result() {
        let bear = test_bear(20);
        let engine = QueryEngine::new(bear, config(2, 64)).unwrap();
        let seeds: Vec<usize> = (0..20).collect();
        engine.query_batch(&seeds).unwrap(); // all misses
        engine.query_batch(&seeds).unwrap(); // all cache hits
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 20);
        assert_eq!(m.cache_misses, 20);
        assert!(
            m.p50_hit <= m.p50_miss,
            "hit p50 {:?} must not exceed miss p50 {:?}",
            m.p50_hit,
            m.p50_miss
        );
    }

    #[test]
    fn config_rejects_zero_threads_and_zero_queue() {
        let bear = test_bear(6);
        let err = QueryEngine::new(
            Arc::clone(&bear),
            EngineConfig { threads: 0, ..EngineConfig::default() },
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { param: "threads", .. }), "{err}");
        let err =
            QueryEngine::new(bear, EngineConfig { queue_capacity: 0, ..EngineConfig::default() })
                .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { param: "queue_capacity", .. }), "{err}");
    }

    #[test]
    fn config_rejects_zero_block_width_and_clamps_overlarge() {
        let bear = test_bear(6);
        let err = QueryEngine::new(
            Arc::clone(&bear),
            EngineConfig { block_width: 0, ..EngineConfig::default() },
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { param: "block_width", .. }), "{err}");
        // Overlarge widths are clamped to the queue capacity, not rejected
        // — a worker can never coalesce more jobs than the queue holds.
        let cfg = EngineConfig {
            threads: 2,
            queue_capacity: 4,
            block_width: 1_000_000,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.effective_block_width(), 4);
        let engine = QueryEngine::new(Arc::clone(&bear), cfg).unwrap();
        let want = bear.query(2).unwrap();
        assert_eq!(*engine.query(2).unwrap(), want);
    }

    #[test]
    fn config_builder_validates() {
        let cfg = EngineConfig::builder()
            .threads(2)
            .cache_capacity(8)
            .queue_capacity(16)
            .overload(OverloadPolicy::Block)
            .default_deadline(Some(Duration::from_millis(500)))
            .block_width(4)
            .build()
            .unwrap();
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.queue_capacity, 16);
        assert_eq!(cfg.overload, OverloadPolicy::Block);
        assert_eq!(cfg.default_deadline, Some(Duration::from_millis(500)));
        assert_eq!(cfg.block_width, 4);
        assert!(EngineConfig::builder().threads(0).build().is_err());
        assert!(EngineConfig::builder().queue_capacity(0).build().is_err());
        assert!(EngineConfig::builder().block_width(0).build().is_err());
    }

    #[test]
    fn coalesced_batch_is_bitwise_identical_and_counted() {
        let bear = test_bear(40);
        // One worker and a deep queue: the batch below queues up faster
        // than the single worker drains it, so the worker finds company
        // on its try_pop drain and coalesces (caller-assist still answers
        // some jobs at width 1; both paths go through record_block).
        let engine = QueryEngine::new(
            Arc::clone(&bear),
            EngineConfig {
                threads: 1,
                cache_capacity: 0,
                queue_capacity: 64,
                block_width: 8,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let seeds: Vec<usize> = (0..40).chain(0..40).collect();
        let want: Vec<Vec<f64>> = seeds.iter().map(|&s| bear.query(s).unwrap()).collect();
        let got = engine.query_batch(&seeds).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(**g, *w);
        }
        let m = engine.metrics();
        // Every answered query passed through record_block (width ≥ 1).
        assert_eq!(m.block_queries, seeds.len() as u64);
        assert!(m.block_solves >= 1 && m.block_solves <= seeds.len() as u64);
        assert!(m.avg_block_width() >= 1.0);
        let widths: u64 = m.block_width_histogram.iter().sum();
        assert_eq!(widths, m.block_solves);
    }

    #[test]
    fn empty_batch_returns_empty_without_dispatch() {
        let bear = test_bear(8);
        let engine = QueryEngine::new(bear, config(2, 4)).unwrap();
        let got = engine.query_batch(&[]).unwrap();
        assert!(got.is_empty());
        let m = engine.metrics();
        assert_eq!(m.queries, 0);
        assert_eq!(m.block_solves, 0);
    }

    #[test]
    fn serve_returns_exact_answers_when_healthy() {
        let bear = test_bear(12);
        let engine = QueryEngine::new(Arc::clone(&bear), config(2, 8)).unwrap();
        let served = engine.serve(3, &QueryOptions::default()).unwrap();
        assert!(served.is_exact());
        assert_eq!(*served.scores, bear.query(3).unwrap());
        let batch = engine.serve_batch(&[1, 2, 3], &QueryOptions::default()).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(Served::is_exact));
    }

    #[test]
    fn serve_degrades_on_pool_shutdown() {
        let g = test_graph(16);
        let bear = Arc::new(Bear::new(&g, &BearConfig::exact(0.15)).unwrap());
        let fallback = Arc::new(
            FallbackSolver::new(&g, &RwrConfig { c: 0.15, ..RwrConfig::default() }, 200).unwrap(),
        );
        let engine = QueryEngine::with_fallback(Arc::clone(&bear), config(1, 0), fallback).unwrap();
        // Sabotage: close the queue out from under the engine, as if the
        // pool died. Every exact path now fails...
        engine.queue.close();
        assert_eq!(engine.query(2).unwrap_err(), Error::PoolShutDown);
        // ...but serve() still answers, tagged degraded.
        let served = engine.serve(2, &QueryOptions::default()).unwrap();
        let info = served.degraded.expect("must be degraded");
        assert_eq!(info.reason, DegradedReason::IndexUnavailable);
        assert!(info.residual >= 0.0);
        assert!(info.error_bound >= info.residual);
        let exact = bear.query(2).unwrap();
        let l1: f64 = exact.iter().zip(served.scores.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 1e-6, "degraded answer far from exact: {l1}");
        assert_eq!(engine.metrics().degraded, 1);
    }

    #[test]
    fn with_fallback_rejects_mismatched_solver() {
        let bear = test_bear(10);
        let other = test_graph(11);
        let fallback = Arc::new(FallbackSolver::new(&other, &RwrConfig::default(), 10).unwrap());
        let err = QueryEngine::with_fallback(bear, config(1, 0), fallback).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { param: "fallback", .. }));
    }

    #[test]
    fn cancelled_query_is_shed_not_computed() {
        let bear = test_bear(10);
        let engine = QueryEngine::new(bear, config(1, 0)).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let opts = QueryOptions { deadline: None, cancel: Some(token) };
        // The job is dequeued already-cancelled: shed with Error::Cancelled.
        // (Caller-assist may also shed it inline; either way, no compute.)
        let err = engine.serve(1, &opts).unwrap_err();
        assert_eq!(err, Error::Cancelled);
        assert!(engine.metrics().shed_jobs >= 1);
    }

    /// Satellite regression: an already-expired (zero-budget) deadline
    /// fails fast with the typed `Timeout` at *admission* — the job is
    /// never enqueued, so nothing is shed at dequeue and no queue
    /// capacity is occupied by work nobody can use.
    #[test]
    fn already_expired_deadline_times_out_with_typed_error() {
        let bear = test_bear(10);
        let engine = QueryEngine::new(bear, config(1, 0)).unwrap();
        let opts = QueryOptions { deadline: Some(Duration::ZERO), cancel: None };
        let err = engine.serve(2, &opts).unwrap_err();
        assert!(matches!(err, Error::Timeout { .. }), "{err}");
        let m = engine.metrics();
        assert!(m.timeouts >= 1, "fail-fast timeout must be counted");
        assert_eq!(m.shed_jobs, 0, "dead job must not be enqueued then shed at dequeue");
        assert_eq!(engine.queue_depth(), 0);
    }

    /// Regression for a seed flake: a batch larger than the queue
    /// capacity must not trip `QueueFull` on its *own* backlog — the
    /// dispatching caller assists (drains queued jobs inline) when the
    /// queue fills, so the batch completes in bounded memory with answers
    /// still bit-identical and in order.
    #[test]
    fn batch_larger_than_queue_capacity_completes_exactly() {
        let bear = test_bear(30);
        let engine = QueryEngine::new(
            Arc::clone(&bear),
            EngineConfig {
                threads: 1,
                cache_capacity: 0,
                queue_capacity: 4,
                block_width: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let seeds: Vec<usize> = (0..30).chain(0..30).collect();
        let want: Vec<Vec<f64>> = seeds.iter().map(|&s| bear.query(s).unwrap()).collect();
        let got = engine.query_batch(&seeds).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(**g, *w);
        }
        // Self-inflicted overload is not overload: no rejections counted.
        assert_eq!(engine.metrics().queue_rejections, 0);
    }

    #[test]
    fn queue_depth_is_bounded_and_observable() {
        let bear = test_bear(8);
        let engine = QueryEngine::new(
            bear,
            EngineConfig { threads: 1, cache_capacity: 0, queue_capacity: 2, ..Default::default() },
        )
        .unwrap();
        assert_eq!(engine.queue_depth(), 0);
        engine.query(1).unwrap();
        assert_eq!(engine.queue_depth(), 0, "drained after answering");
    }
}
