//! Serving-lifecycle integration tests: readiness vs liveness, graceful
//! drain under load (every admitted request answered, zero drops),
//! quarantine of corrupt indexes published through `/admin/load`, and
//! the torn-read connection-poisoning regression.

use bear_core::{Bear, BearConfig, EngineConfig, QueryEngine};
use bear_graph::Graph;
use bear_serve::{client, Registry, Server, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn test_graph() -> Graph {
    let mut edges = Vec::new();
    for v in 1..12 {
        edges.push((0, v));
        edges.push((v, 0));
    }
    edges.push((5, 6));
    edges.push((6, 5));
    Graph::from_edges(12, &edges).unwrap()
}

fn engine_config() -> EngineConfig {
    EngineConfig::builder().threads(2).queue_capacity(64).build().unwrap()
}

/// Builds, saves, reloads, and serves the test graph as tenant `g`.
fn test_server(tag: &str, http_threads: usize) -> (ServerHandle, Bear, PathBuf) {
    let reference = Bear::new(&test_graph(), &BearConfig::exact(0.15)).unwrap();
    let path = std::env::temp_dir().join(format!("bear_lifecycle_{tag}.idx"));
    reference.save(&path).unwrap();
    let loaded = Arc::new(Bear::load(&path).unwrap());
    let engine = QueryEngine::new(loaded, engine_config()).unwrap();
    let registry = Arc::new(Registry::new());
    registry.publish("g", Arc::new(engine));
    let config =
        ServerConfig { http_threads, engine_config: engine_config(), ..ServerConfig::default() };
    let handle = Server::start(registry, config).unwrap();
    (handle, reference, path)
}

/// Reads exactly one HTTP response off `reader`, honoring
/// `Content-Length`. Returns `(status, connection_header, body)`.
fn read_one_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String, String)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if status_line.is_empty() {
        return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "connection closed"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line '{status_line}'")))?;
    let mut connection = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().unwrap_or(0),
                "connection" => connection = value.trim().to_ascii_lowercase(),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, connection, String::from_utf8_lossy(&body).into_owned()))
}

fn write_request(stream: &mut TcpStream, target: &str) -> std::io::Result<()> {
    write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n")?;
    stream.flush()
}

/// `/readyz` is 503 while no graph is published (warming) and flips to
/// 200 on the first publish; `/healthz` is 200 throughout.
#[test]
fn readyz_reports_warming_until_first_publish() {
    let registry = Arc::new(Registry::new());
    let config = ServerConfig { engine_config: engine_config(), ..ServerConfig::default() };
    let server = Server::start(Arc::clone(&registry), config).unwrap();
    let addr = server.addr();

    let resp = client::get(addr, "/healthz", &[]).unwrap();
    assert_eq!(resp.status, 200, "liveness must not depend on published graphs");
    let resp = client::get(addr, "/readyz", &[]).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    assert!(resp.body_str().contains("warming"), "{}", resp.body_str());
    assert_eq!(resp.header("retry-after"), Some("1"));

    let bear = Bear::new(&test_graph(), &BearConfig::exact(0.15)).unwrap();
    let engine = QueryEngine::new(Arc::new(bear), engine_config()).unwrap();
    registry.publish("g", Arc::new(engine));

    let resp = client::get(addr, "/readyz", &[]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert!(resp.body_str().contains("ready 1 graph(s)"));

    assert!(server.shutdown(), "drain of an idle server must be clean");
}

/// The S3 satellite: a graceful drain completes every admitted request.
///
/// With a single worker held hostage by an idle keep-alive connection,
/// several fully-written requests are parked in the connection queue —
/// so they can only be served *after* the drain begins (the worker
/// re-checks the queue once shutdown wakes it from the keep-alive
/// read). Every one of them must still get a complete response: the
/// queued `/readyz` sees 503 (draining), the queued `/healthz` sees 200
/// (alive until exit), and the queued queries are answered in full.
#[test]
fn graceful_drain_answers_every_admitted_request() {
    let (server, reference, path) = test_server("drain", 1);
    let addr = server.addr();
    let expected = reference.query(3).unwrap();

    // Hold the single worker on an idle keep-alive connection.
    let mut held = TcpStream::connect(addr).unwrap();
    held.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut held_reader = BufReader::new(held.try_clone().unwrap());
    write_request(&mut held, "/v1/query?graph=g&seed=3").unwrap();
    let (status, connection, _) = read_one_response(&mut held_reader).unwrap();
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive", "worker must stay parked on this connection");
    // Pre-drain readiness, checked on the held connection itself (a
    // fresh connection would queue behind the single busy worker).
    write_request(&mut held, "/readyz").unwrap();
    let (status, _, body) = read_one_response(&mut held_reader).unwrap();
    assert_eq!(status, 200, "ready before the drain begins: {body}");

    // Park fully-written requests in the connection queue. None can be
    // served until the drain frees the worker.
    let targets =
        ["/readyz", "/healthz", "/v1/query?graph=g&seed=3", "/v1/query?graph=g&seed=0", "/metrics"];
    let parked: Vec<(BufReader<TcpStream>, &str)> = targets
        .iter()
        .map(|target| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            write_request(&mut stream, target).unwrap();
            // The write half stays open via try_clone inside the reader.
            (reader, *target)
        })
        .collect();
    // Wait until the accept thread has admitted every parked connection
    // into the queue — a drain only owes answers to *admitted* work, and
    // connections still in the kernel backlog die with the listener.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.metrics().accepted_connections.load(std::sync::atomic::Ordering::Relaxed)
        < 1 + targets.len() as u64
    {
        assert!(std::time::Instant::now() < deadline, "accept thread never admitted the backlog");
        std::thread::sleep(Duration::from_millis(5));
    }

    let drainer = std::thread::spawn(move || server.shutdown());

    let mut drain_readyz = None;
    let mut drain_healthz = None;
    for (mut reader, target) in parked {
        let (status, connection, body) = read_one_response(&mut reader)
            .unwrap_or_else(|e| panic!("admitted request {target} was dropped: {e}"));
        assert_eq!(connection, "close", "{target}: drain must not keep connections alive");
        match target {
            "/readyz" => drain_readyz = Some((status, body)),
            "/healthz" => drain_healthz = Some((status, body)),
            t if t.starts_with("/v1/query") => {
                assert_eq!(status, 200, "{target}: {body}");
                let scores = client::json_number_array(&body, "scores").unwrap();
                let want =
                    if t.contains("seed=3") { &expected } else { &reference.query(0).unwrap() };
                assert_eq!(scores.len(), want.len());
                for (got, want) in scores.iter().zip(want) {
                    assert_eq!(got.to_bits(), want.to_bits(), "{target} served wrong bits");
                }
            }
            _ => assert_eq!(status, 200, "{target}: {body}"),
        }
        // Drained responses are final: the server closes after each.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "{target}: trailing bytes after close");
    }
    let (status, body) = drain_readyz.expect("queued /readyz must be answered");
    assert_eq!(status, 503, "readyz during drain: {body}");
    assert!(body.contains("draining"), "readyz during drain: {body}");
    let (status, body) = drain_healthz.expect("queued /healthz must be answered");
    assert_eq!(status, 200, "healthz must stay live through the drain: {body}");

    // The held keep-alive connection is closed by the drain (EOF), not
    // reset, once the worker's read-timeout tick observes shutdown.
    let mut rest = Vec::new();
    held_reader.read_to_end(&mut rest).unwrap();

    assert!(drainer.join().unwrap(), "drain must finish inside the grace period");
    std::fs::remove_file(&path).ok();
}

/// A corrupt index published through `/admin/load` is rejected as an
/// operator error (400), the damaged artifact is quarantined to
/// `<path>.corrupt`, and the previous version keeps answering.
#[test]
fn admin_load_quarantines_corrupt_index_and_keeps_serving() {
    let (server, reference, path) = test_server("quarantine", 2);
    let addr = server.addr();

    // A single flipped bit deep in the payload: undetectable without
    // checksums, caught by the section CRC.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    let bad = std::env::temp_dir().join("bear_lifecycle_quarantine_bad.idx");
    let bad_quarantined = std::env::temp_dir().join("bear_lifecycle_quarantine_bad.idx.corrupt");
    std::fs::remove_file(&bad_quarantined).ok();
    std::fs::write(&bad, &bytes).unwrap();

    let resp =
        client::post(addr, &format!("/admin/load?graph=g&index={}", bad.display()), &[]).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    assert!(resp.body_str().contains("bad_index"), "{}", resp.body_str());
    assert!(resp.body_str().contains("quarantined"), "{}", resp.body_str());

    assert!(!bad.exists(), "corrupt artifact must be moved out of the publish path");
    assert!(bad_quarantined.exists(), "quarantine file missing");

    // A retry of the same operator script now fails on a missing file —
    // it cannot loop on re-publishing the damaged artifact.
    let resp =
        client::post(addr, &format!("/admin/load?graph=g&index={}", bad.display()), &[]).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body_str());

    // The old version never stopped answering, bit-identically.
    let resp = client::get(addr, "/v1/query?graph=g&seed=1", &[]).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-graph-version"), Some("1"), "failed publish must not bump");
    let scores = client::json_number_array(&resp.body_str(), "scores").unwrap();
    for (got, want) in scores.iter().zip(&reference.query(1).unwrap()) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
    let metrics = client::get(addr, "/metrics", &[]).unwrap().body_str();
    assert!(metrics.contains("bear_hot_swaps_total 0"), "{metrics}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&bad_quarantined).ok();
}

/// The S1 regression: a connection that times out *mid-request* has
/// lost bytes off the wire, so the server must close it rather than
/// retry the parse and serve a garbled pipeline. The next full request
/// on a fresh connection works, and the tear is counted.
#[test]
fn torn_mid_request_closes_the_connection_instead_of_poisoning_it() {
    let (server, _, path) = test_server("torn", 2);
    let addr = server.addr();

    let torn_before = {
        let body = client::get(addr, "/metrics", &[]).unwrap().body_str();
        metric(&body, "bear_http_torn_connections_total")
    };

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Half a request line, then silence: longer than the server's 200ms
    // read-timeout tick, so the read escalates to a torn-read close.
    stream.write_all(b"GET /v1/que").unwrap();
    stream.flush().unwrap();

    let mut buf = Vec::new();
    let n = stream.read_to_end(&mut buf).unwrap();
    assert_eq!(n, 0, "server must close a torn connection without writing: {buf:?}");

    // Completing the request after the tear is meaningless — the
    // connection is gone; a write eventually surfaces a broken pipe.
    // (Not asserted: loopback may buffer the first write.)
    let _ = stream.write_all(b"ry?graph=g&seed=1 HTTP/1.1\r\n\r\n");

    // A fresh connection is unaffected and the tear was counted.
    let resp = client::get(addr, "/v1/query?graph=g&seed=1", &[]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let body = client::get(addr, "/metrics", &[]).unwrap().body_str();
    assert_eq!(
        metric(&body, "bear_http_torn_connections_total"),
        torn_before + 1,
        "torn connection must be counted: {body}"
    );

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Extracts a `name value` line from the `/metrics` exposition.
fn metric(body: &str, name: &str) -> u64 {
    body.lines()
        .find(|l| l.starts_with(name))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from {body}"))
}
