//! Property-based tests of the graph substrate: SlashBurn invariants,
//! component correctness, partitioning, and normalization.

use bear_graph::components::{components_in_subset, connected_components};
use bear_graph::partition::{partition_bfs, split_by_partition};
use bear_graph::{slashburn, Graph, SlashBurnConfig};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 2))
            .prop_map(move |edges| Graph::from_edges(n, &edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn components_partition_the_nodes(g in arb_graph()) {
        let sym = g.symmetrized_pattern();
        let comps = connected_components(&sym);
        let mut seen = vec![false; g.num_nodes()];
        for comp in &comps {
            for &u in comp {
                prop_assert!(!seen[u], "node {u} in two components");
                seen[u] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn components_are_internally_connected_and_mutually_disconnected(g in arb_graph()) {
        let sym = g.symmetrized_pattern();
        let comps = connected_components(&sym);
        // No edge may join two different components.
        let mut comp_of = vec![usize::MAX; g.num_nodes()];
        for (ci, comp) in comps.iter().enumerate() {
            for &u in comp {
                comp_of[u] = ci;
            }
        }
        for (u, v, _) in sym.iter() {
            prop_assert_eq!(comp_of[u], comp_of[v]);
        }
    }

    #[test]
    fn slashburn_permutation_is_a_bijection(g in arb_graph(), k in 1usize..5) {
        let ord = slashburn(&g, &SlashBurnConfig::with_k(k)).unwrap();
        let n = g.num_nodes();
        prop_assert_eq!(ord.n_spokes + ord.n_hubs, n);
        prop_assert_eq!(ord.block_sizes.iter().sum::<usize>(), ord.n_spokes);
        let mut seen = vec![false; n];
        for i in 0..n {
            let old = ord.perm.old_of(i);
            prop_assert!(!seen[old]);
            seen[old] = true;
        }
    }

    #[test]
    fn slashburn_spoke_blocks_are_block_diagonal(g in arb_graph(), k in 1usize..4) {
        let ord = slashburn(&g, &SlashBurnConfig::with_k(k)).unwrap();
        let sym = g.symmetrized_pattern();
        let reordered = ord.perm.permute_symmetric(&sym).unwrap();
        let mut block_of = vec![usize::MAX; g.num_nodes()];
        let mut pos = 0;
        for (bid, &sz) in ord.block_sizes.iter().enumerate() {
            for _ in 0..sz {
                block_of[pos] = bid;
                pos += 1;
            }
        }
        for (r, c, _) in reordered.iter() {
            if r < ord.n_spokes && c < ord.n_spokes {
                prop_assert_eq!(block_of[r], block_of[c], "edge ({}, {}) crosses blocks", r, c);
            }
        }
    }

    #[test]
    fn subset_components_respect_the_mask(g in arb_graph(), mask_seed in 0u64..50) {
        let n = g.num_nodes();
        let sym = g.symmetrized_pattern();
        let mut s = mask_seed.wrapping_add(7);
        let active: Vec<bool> = (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 40) % 3 != 0
            })
            .collect();
        let comps = components_in_subset(&sym, &active);
        for comp in &comps {
            for &u in comp {
                prop_assert!(active[u], "inactive node {u} in a component");
            }
        }
        let covered: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(covered, active.iter().filter(|&&a| a).count());
    }

    #[test]
    fn partition_split_preserves_edges(g in arb_graph(), parts in 1usize..6) {
        let labels = partition_bfs(&g, parts);
        prop_assert_eq!(labels.len(), g.num_nodes());
        let (within, cross) = split_by_partition(g.adjacency(), &labels);
        let sum = bear_sparse::ops::add(&within, &cross).unwrap();
        prop_assert_eq!(sum, g.adjacency().clone());
        for (u, v, _) in within.iter() {
            prop_assert_eq!(labels[u], labels[v]);
        }
        for (u, v, _) in cross.iter() {
            prop_assert!(labels[u] != labels[v]);
        }
    }

    #[test]
    fn row_normalized_rows_sum_to_one_or_zero(g in arb_graph()) {
        let a = g.row_normalized();
        for r in 0..a.nrows() {
            let (_, vals) = a.row(r);
            let sum: f64 = vals.iter().sum();
            if vals.is_empty() {
                prop_assert_eq!(sum, 0.0);
            } else {
                prop_assert!((sum - 1.0).abs() < 1e-12, "row {r} sums to {sum}");
            }
        }
    }

    #[test]
    fn symmetrized_pattern_is_symmetric(g in arb_graph()) {
        let sym = g.symmetrized_pattern();
        for (u, v, _) in sym.iter() {
            prop_assert!(sym.get(v, u) != 0.0, "({u},{v}) present but ({v},{u}) missing");
            prop_assert!(u != v, "self-loop survived symmetrization");
        }
    }
}
