//! Allow-directive fixture: a well-formed directive with a reason
//! suppresses its finding; a reason-less one suppresses nothing and is
//! itself reported. Never compiled — parsed by the lint tests only.

/// Suppressed: same-line directive with a reason.
pub fn allowed_same_line(v: Option<usize>) -> usize {
    v.unwrap() // lint:allow(L1, fixture: invariant documented here)
}

/// Suppressed: directive on the directly preceding comment-only line.
pub fn allowed_prev_line(v: Option<usize>) -> usize {
    // lint:allow(L1, fixture: invariant documented here)
    v.unwrap()
}

/// NOT suppressed: the directive below names no reason, so it is
/// ignored for suppression and reported as malformed.
pub fn not_allowed(v: Option<usize>) -> usize {
    v.unwrap() // lint:allow(L1)
}
