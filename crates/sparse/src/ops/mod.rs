//! Sparse matrix kernels: SpGEMM, element-wise combination, stacking.

mod add;
mod spgemm;
mod stack;

pub use add::{add, axpby, sub};
pub use spgemm::spgemm;
pub use stack::{block2x2, hstack, vstack};
