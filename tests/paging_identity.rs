//! The out-of-core proof battery: on random graphs, every query path
//! driven through the block pager — `query`, `query_block`,
//! `query_top_k_pruned` — is **bit-identical** (f64 bits and node
//! order) to the fully resident in-memory index, for every residency
//! budget from everything-resident down to at most one block, and even
//! while another thread forces evictions mid-query.
//!
//! This is the contract that makes the v3 format safe to serve: paging
//! is a pure space/time trade — it may never perturb a single bit of
//! an answer.

use bear_core::{Bear, BearConfig, LoadOptions};
use bear_graph::Graph;
use bear_sparse::mem::MemBudget;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp path per case so concurrent test threads never collide.
fn scratch_index() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bear_paging_identity_{}_{id}.idx", std::process::id()))
}

/// Random directed graph with a cycle backbone (no dangling nodes).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..36).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 3));
        edges.prop_map(move |mut extra| {
            for u in 0..n {
                extra.push((u, (u + 1) % n));
            }
            Graph::from_edges(n, &extra).unwrap()
        })
    })
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length drift");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: node {i}: {a:?} != {b:?}");
    }
}

/// The residency ladder for one paged index: unlimited, the full spoke
/// footprint, half, a single largest block, and one byte (at most one
/// block ever resident, evictions on every switch).
fn budget_ladder(paged: &Bear) -> Vec<Option<usize>> {
    let dir = paged.pager().expect("v3 load is paged").directory();
    let total: usize = dir.iter().map(|m| m.resident_bytes()).sum();
    let largest = dir.iter().map(|m| m.resident_bytes()).max().unwrap_or(1);
    let mut ladder = vec![None, Some(total), Some(total / 2), Some(largest), Some(1)];
    ladder.dedup();
    ladder
}

/// Every query path, every budget on the ladder, bit-identical.
fn check_paging_identity(g: &Graph, config: &BearConfig, seeds: &[usize]) {
    let reference = Bear::new(g, config).unwrap();
    let path = scratch_index();
    reference.save_v3(&path).unwrap();
    let paged = Bear::load(&path).unwrap();
    let pager = paged.pager().expect("v3 load is paged");

    let k = 5.min(g.num_nodes().saturating_sub(1)).max(1);
    for budget in budget_ladder(&paged) {
        pager.set_budget(budget).unwrap();
        for &seed in seeds {
            let want = reference.query(seed).unwrap();
            let got = paged.query(seed).unwrap();
            assert_bits_eq(&got, &want, &format!("query seed {seed} budget {budget:?}"));

            let want_k = reference.query_top_k_pruned(seed, k).unwrap();
            let got_k = paged.query_top_k_pruned(seed, k).unwrap();
            assert_eq!(got_k.len(), want_k.len(), "top-k length (budget {budget:?})");
            for (a, b) in got_k.iter().zip(&want_k) {
                assert_eq!(a.node, b.node, "top-k node order (budget {budget:?})");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "top-k score bits (budget {budget:?})"
                );
            }
        }
        let want_block = reference.query_block(seeds).unwrap();
        let got_block = paged.query_block(seeds).unwrap();
        for (i, (gb, wb)) in got_block.iter().zip(&want_block).enumerate() {
            assert_bits_eq(gb, wb, &format!("query_block column {i} budget {budget:?}"));
        }
    }
    let stats = pager.stats();
    // A graph that SlashBurn classifies as all-hub has no spoke blocks
    // to page; everywhere else the one-byte rung must have faulted.
    assert!(
        stats.misses > 0 || pager.num_blocks() == 0,
        "the one-byte rung must fault blocks in"
    );

    drop(paged);
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact BEAR: random graph x random seed set x the whole budget
    /// ladder, all three query paths bit-identical through the pager.
    #[test]
    fn paged_answers_are_bit_identical_exact(g in arb_graph(), seed_picks in proptest::collection::vec(0usize..1000, 1..4)) {
        let n = g.num_nodes();
        let seeds: Vec<usize> = seed_picks.iter().map(|s| s % n).collect();
        check_paging_identity(&g, &BearConfig::exact(0.1), &seeds);
    }

    /// Approximate BEAR (drop tolerance): the dropped factors shard and
    /// page identically too.
    #[test]
    fn paged_answers_are_bit_identical_approx(g in arb_graph(), seed_picks in proptest::collection::vec(0usize..1000, 1..3)) {
        let n = g.num_nodes();
        let seeds: Vec<usize> = seed_picks.iter().map(|s| s % n).collect();
        check_paging_identity(&g, &BearConfig::approx(0.1, 1e-3), &seeds);
    }
}

/// A deterministic multi-block graph: one hub chain bridging several
/// dense caves, so SlashBurn produces multiple spoke blocks.
fn blocky_graph() -> Graph {
    let caves: &[&[usize]] = &[&[3, 4, 5, 6], &[7, 8, 9], &[10, 11, 12, 13], &[14, 15]];
    let mut edges = Vec::new();
    for hub in 0..3 {
        edges.push((hub, (hub + 1) % 3));
        edges.push(((hub + 1) % 3, hub));
    }
    for cave in caves {
        for &u in *cave {
            for &v in *cave {
                if u != v {
                    edges.push((u, v));
                }
            }
            edges.push((u, u % 3));
            edges.push((u % 3, u));
        }
    }
    Graph::from_edges(16, &edges).unwrap()
}

/// Mid-query evictions, forced two ways at once: the querying thread
/// runs under a one-byte budget (so its own block sweep evicts as it
/// advances), while a saboteur thread loops over all blocks fetching
/// them out of order — every block the query is about to use may have
/// just been evicted and must be transparently re-faulted, with the
/// answer still exact to the bit.
#[test]
fn forced_mid_query_evictions_stay_bit_identical() {
    let g = blocky_graph();
    let reference = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
    let path = scratch_index();
    reference.save_v3(&path).unwrap();
    let paged = std::sync::Arc::new(Bear::load(&path).unwrap());
    let pager = paged.pager().expect("v3 load is paged").clone();
    assert!(pager.num_blocks() >= 2, "test graph must shard into multiple blocks");
    pager.set_budget(Some(1)).unwrap();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let saboteur = {
        let pager = pager.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let blocks = pager.num_blocks();
            let mut b = 0;
            while !stop.load(Ordering::Relaxed) {
                // Descending order to maximally disagree with the
                // ascending block sweep of the query path.
                b = (b + blocks - 1) % blocks;
                pager.fetch(b).expect("saboteur fetch");
            }
        })
    };

    for round in 0..20 {
        for seed in 0..g.num_nodes() {
            let want = reference.query(seed).unwrap();
            let got = paged.query(seed).unwrap();
            assert_bits_eq(&got, &want, &format!("round {round} seed {seed}"));
        }
    }
    stop.store(true, Ordering::Relaxed);
    saboteur.join().expect("saboteur thread");

    let stats = pager.stats();
    assert!(stats.evictions > 0, "contended one-byte budget must evict");
    assert_eq!(
        stats.misses - stats.resident_blocks,
        stats.evictions,
        "pager counters must reconcile under contention"
    );

    drop(paged);
    std::fs::remove_file(&path).ok();
}

/// The `resident: true` load option is the pager's bypass: answers are
/// the same bits, and no pager exists to count anything.
#[test]
fn resident_load_option_matches_paged_and_in_memory() {
    let g = blocky_graph();
    let reference = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
    let path = scratch_index();
    reference.save_v3(&path).unwrap();

    let resident = Bear::load_with(
        &path,
        &LoadOptions { budget: MemBudget::unlimited(), resident: true },
    )
    .unwrap();
    assert!(resident.pager().is_none(), "resident load must not keep a pager");
    let paged = Bear::load(&path).unwrap();
    paged.pager().unwrap().set_budget(Some(1)).unwrap();

    for seed in 0..g.num_nodes() {
        let want = reference.query(seed).unwrap();
        assert_bits_eq(&resident.query(seed).unwrap(), &want, "resident load");
        assert_bits_eq(&paged.query(seed).unwrap(), &want, "paged load");
    }

    std::fs::remove_file(&path).ok();
}
