//! Top-k convenience queries.
//!
//! The paper contrasts BEAR with top-k-only systems (K-dash, FLoS): BEAR
//! computes the scores of *all* nodes, so top-k extraction is a cheap
//! post-processing step rather than a restriction of the method. These
//! helpers package that step.

use crate::precompute::Bear;
use bear_sparse::Result;

/// A node with its relevance score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredNode {
    /// Node id.
    pub node: usize,
    /// RWR score.
    pub score: f64,
}

/// Extracts the `k` best-scoring nodes (descending; ties by node id) from
/// a full score vector using a partial selection — O(n + k log k), not a
/// full sort.
pub fn top_k_of(scores: &[f64], k: usize) -> Vec<ScoredNode> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut items: Vec<ScoredNode> = scores
        .iter()
        .enumerate()
        .map(|(node, &score)| ScoredNode { node, score })
        .collect();
    let cmp = |a: &ScoredNode, b: &ScoredNode| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    };
    items.select_nth_unstable_by(k - 1, cmp);
    items.truncate(k);
    items.sort_by(cmp);
    items
}

impl Bear {
    /// The `k` most relevant nodes w.r.t. `seed`, excluding the seed
    /// itself, in descending score order.
    pub fn query_top_k(&self, seed: usize, k: usize) -> Result<Vec<ScoredNode>> {
        let mut scores = self.query(seed)?;
        // Exclude the seed by zeroing it out before selection (its score
        // is by construction among the largest and rarely wanted).
        scores[seed] = f64::NEG_INFINITY;
        let mut out = top_k_of(&scores, k);
        out.retain(|s| s.score.is_finite());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::{Bear, BearConfig};
    use bear_graph::Graph;

    #[test]
    fn top_k_of_selects_and_orders() {
        let scores = vec![0.1, 0.5, 0.3, 0.5, 0.0];
        let top = top_k_of(&scores, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].node, 1); // tie with 3 broken by id
        assert_eq!(top[1].node, 3);
        assert_eq!(top[2].node, 2);
    }

    #[test]
    fn top_k_handles_degenerate_k() {
        let scores = vec![1.0, 2.0];
        assert!(top_k_of(&scores, 0).is_empty());
        assert_eq!(top_k_of(&scores, 10).len(), 2);
    }

    #[test]
    fn query_top_k_matches_full_sort() {
        let mut edges = Vec::new();
        for v in 1..8 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        edges.push((1, 2));
        edges.push((2, 1));
        let g = Graph::from_edges(8, &edges).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.2)).unwrap();
        let seed = 1;
        let top = bear.query_top_k(seed, 3).unwrap();
        // Oracle: full sort of the query result.
        let scores = bear.query(seed).unwrap();
        let mut oracle: Vec<usize> = (0..8).filter(|&u| u != seed).collect();
        oracle.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b))
        });
        let got: Vec<usize> = top.iter().map(|s| s.node).collect();
        assert_eq!(got, oracle[..3].to_vec());
        assert!(!got.contains(&seed));
    }
}
