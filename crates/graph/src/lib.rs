//! Graph substrate for the BEAR reproduction.
//!
//! Everything the BEAR algorithm and its baselines need from a graph
//! library, built from scratch on top of [`bear_sparse`]:
//!
//! * [`Graph`]: a directed, weighted graph stored as a CSR adjacency
//!   matrix, with row-normalization (the `Ã` of the paper) and
//!   symmetrization helpers;
//! * [`mod@slashburn`]: the SlashBurn hub-and-spoke node-reordering algorithm
//!   (Kang & Faloutsos, ICDM 2011) that BEAR's preprocessing builds on;
//! * [`components`]: connected components over node subsets;
//! * [`partition`]: BFS region-growing balanced partitioner (used by the
//!   B_LIN baseline);
//! * [`community`]: label-propagation community detection (used by the LU
//!   decomposition baseline's reordering rule);
//! * [`generators`]: R-MAT (with the `p_ul` knob of Section 4.4),
//!   Erdős–Rényi, preferential attachment, and an explicit hub-and-spoke
//!   synthesizer;
//! * [`io`]: whitespace edge-list parsing and writing.

pub mod community;
pub mod components;
pub mod conductance;
pub mod generators;
pub mod graph;
pub mod io;
pub mod partition;
pub mod rcm;
pub mod slashburn;

pub use graph::Graph;
pub use slashburn::{slashburn, SlashBurnConfig, SlashBurnOrdering};
